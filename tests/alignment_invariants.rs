//! Integration invariants of the aligned-active transform across the
//! library, layout and core crates.

use cnfet::celllib::cell::TechParams;
use cnfet::celllib::commercial65::commercial65_like;
use cnfet::celllib::nangate45::nangate45_like;
use cnfet::device::FetType;
use cnfet::layout::{align_cell, align_library, AlignmentGrid, AlignmentOptions, GridPolicy};

#[test]
fn aligned_strips_always_land_on_grid_rows() {
    let lib = nangate45_like();
    let tech = TechParams::nangate45();
    let opts = AlignmentOptions::default();
    let grid = AlignmentGrid::from_tech(&tech, GridPolicy::Single).expect("valid grid");
    for cell in lib.cells() {
        let a = align_cell(cell, &tech, &opts).expect("alignable");
        for s in &a.new_strips {
            let rows = match s.fet_type {
                FetType::NType => grid.n_rows(),
                FetType::PType => grid.p_rows(),
            };
            assert!(
                rows.iter().any(|&r| (s.rect.y0() - r).abs() < 1e-9),
                "{}: strip at y={} not on a grid row",
                cell.name(),
                s.rect.y0()
            );
        }
    }
}

#[test]
fn aligned_strips_never_overlap_in_x_within_a_row() {
    for lib in [nangate45_like(), commercial65_like()] {
        let opts = AlignmentOptions::default();
        for cell in lib.cells() {
            let a = align_cell(cell, lib.tech(), &opts).expect("alignable");
            for fet_type in [FetType::NType, FetType::PType] {
                let strips: Vec<_> = a
                    .new_strips
                    .iter()
                    .filter(|s| s.fet_type == fet_type)
                    .collect();
                for i in 0..strips.len() {
                    for j in i + 1..strips.len() {
                        let same_row = (strips[i].rect.y0() - strips[j].rect.y0()).abs() < 1e-9;
                        if same_row {
                            let (a, b) = (strips[i].rect, strips[j].rect);
                            assert!(
                                a.x1() <= b.x0() + 1e-9 || b.x1() <= a.x0() + 1e-9,
                                "{}: strips overlap after alignment",
                                cell.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn alignment_never_shrinks_a_cell() {
    for lib in [nangate45_like(), commercial65_like()] {
        for opts in [
            AlignmentOptions::default(),
            AlignmentOptions {
                policy: GridPolicy::Dual,
                ..AlignmentOptions::default()
            },
        ] {
            let a = align_library(&lib, &opts).expect("alignable");
            for c in &a.cells {
                assert!(
                    c.new_width >= c.old_width - 1e-9,
                    "{}: shrank from {} to {}",
                    c.cell_name,
                    c.old_width,
                    c.new_width
                );
            }
        }
    }
}

#[test]
fn dual_grid_dominates_single_grid() {
    // Two rows can always do at least as well as one.
    for lib in [nangate45_like(), commercial65_like()] {
        let single = align_library(&lib, &AlignmentOptions::default()).expect("alignable");
        let dual = align_library(
            &lib,
            &AlignmentOptions {
                policy: GridPolicy::Dual,
                ..AlignmentOptions::default()
            },
        )
        .expect("alignable");
        for (s, d) in single.cells.iter().zip(&dual.cells) {
            assert_eq!(s.cell_name, d.cell_name);
            assert!(
                d.new_width <= s.new_width + 1e-9,
                "{}: dual {} > single {}",
                s.cell_name,
                d.new_width,
                s.new_width
            );
        }
    }
}

#[test]
fn critical_width_filter_is_monotone() {
    // A lower criticality threshold can only reduce the number of moved
    // strips and the penalty.
    let lib = nangate45_like();
    let tech = TechParams::nangate45();
    let all = AlignmentOptions::default();
    let some = AlignmentOptions {
        critical_width: Some(150.0),
        ..AlignmentOptions::default()
    };
    let none = AlignmentOptions {
        critical_width: Some(10.0),
        ..AlignmentOptions::default()
    };
    for cell in lib.cells() {
        let a_all = align_cell(cell, &tech, &all).expect("alignable");
        let a_some = align_cell(cell, &tech, &some).expect("alignable");
        let a_none = align_cell(cell, &tech, &none).expect("alignable");
        assert!(a_some.moved_strips <= a_all.moved_strips, "{}", cell.name());
        assert_eq!(a_none.moved_strips, 0, "{}", cell.name());
        assert!(
            a_some.penalty() <= a_all.penalty() + 1e-9,
            "{}",
            cell.name()
        );
        assert_eq!(a_none.penalty(), 0.0, "{}", cell.name());
    }
}
