//! Cross-validation: the analytic yield models against brute-force
//! geometric simulation of grown CNT populations.
//!
//! The analytic chain (renewal counts → PGF → row DP) and the geometric
//! chain (grow CNTs → apply VMR → count channels) are implemented in
//! different crates with no shared code path; agreement here validates
//! both.

use cnfet::core::corner::ProcessCorner;
use cnfet::core::failure::FailureModel;
use cnfet::device::fet::{Cnfet, FetType};
use cnfet::growth::{DirectionalGrowth, Growth, GrowthParams, Rect};
use cnfet::sim::rundp::row_failure_probability;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Geometric failure-rate estimate for a W-nm device at moderate widths
/// where naive MC is feasible.
fn geometric_failure_rate(width: f64, trials: u32, seed: u64) -> f64 {
    let params = GrowthParams::paper_defaults().expect("paper defaults valid");
    let growth = DirectionalGrowth::new(params);
    let vmr = ProcessCorner::aggressive().expect("valid").vmr();
    let fet = Cnfet::new("probe", FetType::NType, width, 32.0)
        .expect("valid device")
        .at(0.0, 0.0);
    let region = Rect::new(-64.0, -40.0, 160.0, width + 80.0).expect("valid region");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0u32;
    for _ in 0..trials {
        let mut pop = growth.grow(region, &mut rng);
        vmr.apply(&mut pop, &mut rng);
        failures += fet.fails(&pop) as u32;
    }
    failures as f64 / trials as f64
}

#[test]
fn analytic_pf_matches_geometric_simulation() {
    let model = FailureModel::paper_default(ProcessCorner::aggressive().expect("valid"))
        .expect("valid model");
    // Widths where pF is large enough for counting statistics (1e-2..1e-3).
    for (width, trials) in [(20.0, 20_000u32), (32.0, 40_000)] {
        let analytic = model.p_failure(width).expect("computable");
        let geometric = geometric_failure_rate(width, trials, width as u64);
        let ratio = geometric / analytic;
        assert!(
            (0.7..1.4).contains(&ratio),
            "W={width}: geometric {geometric:.4e} vs analytic {analytic:.4e} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn run_dp_matches_geometric_row_simulation() {
    // A small row: 8 FETs at staggered offsets over a 250-nm band, wide
    // enough pf for direct MC. Geometric: grow tracks, type them, check
    // each FET. Analytic per layout: run DP. Compare the averaged rates.
    let params = GrowthParams::paper_defaults().expect("valid");
    let growth = DirectionalGrowth::new(params);
    let vmr = ProcessCorner::aggressive().expect("valid").vmr();
    let pf = ProcessCorner::aggressive().expect("valid").pf();

    let spans: Vec<(f64, f64)> = (0..8)
        .map(|i| {
            let y0 = (i % 4) as f64 * 50.0;
            (y0, y0 + 40.0)
        })
        .collect();
    let region = Rect::new(-10.0, -10.0, 200.0, 300.0).expect("valid region");

    let trials = 25_000;
    let mut rng = StdRng::seed_from_u64(99);
    let mut geometric_failures = 0u32;
    let mut dp_sum = 0.0_f64;
    for _ in 0..trials {
        let mut pop = growth.grow(region, &mut rng);

        // Analytic-conditional: intervals from the actual track layout.
        let tracks: Vec<f64> = pop.tracks().to_vec();
        let mut intervals = Vec::new();
        let mut certain = false;
        for &(y0, y1) in &spans {
            let lo = tracks.partition_point(|&t| t < y0);
            let hi = tracks.partition_point(|&t| t <= y1);
            if hi == lo {
                certain = true;
                break;
            }
            intervals.push((lo, hi - 1));
        }
        dp_sum += if certain {
            1.0
        } else {
            row_failure_probability(tracks.len(), &intervals, pf).expect("valid DP input")
        };

        // Geometric: apply VMR and test every FET's channel count.
        vmr.apply(&mut pop, &mut rng);
        let any_fail = spans.iter().any(|&(y0, y1)| {
            let ar = Rect::new(0.0, y0, 32.0, (y1 - y0).max(1e-9)).expect("valid");
            pop.useful_count_in(&ar) == 0
        });
        geometric_failures += any_fail as u32;
    }
    let geometric = geometric_failures as f64 / trials as f64;
    let dp = dp_sum / trials as f64;
    let ratio = geometric / dp;
    assert!(
        (0.85..1.18).contains(&ratio),
        "geometric {geometric:.4} vs DP {dp:.4} (ratio {ratio:.3})"
    );
}

#[test]
fn count_distribution_matches_population_counts() {
    // The renewal count model and the geometric track generator must agree
    // on the distribution of CNTs under a gate.
    let params = GrowthParams::paper_defaults().expect("valid");
    let growth = DirectionalGrowth::new(params.clone());
    let region = Rect::new(0.0, 0.0, 100.0, 200.0).expect("valid region");
    let mut rng = StdRng::seed_from_u64(5);
    let mut sum = 0usize;
    let mut sum2 = 0usize;
    let trials = 4000;
    let gate = Rect::new(10.0, 50.0, 32.0, 64.0).expect("valid gate");
    for _ in 0..trials {
        let pop = growth.grow(region, &mut rng);
        let n = pop.count_in(&gate);
        sum += n;
        sum2 += n * n;
    }
    let mean = sum as f64 / trials as f64;
    let var = sum2 as f64 / trials as f64 - mean * mean;

    let analytic = FailureModel::paper_default(ProcessCorner::aggressive().expect("valid"))
        .expect("valid")
        .count_distribution(64.0)
        .expect("computable");
    assert!(
        (mean - analytic.mean()).abs() < 0.5,
        "mean {mean} vs analytic {}",
        analytic.mean()
    );
    assert!(
        (var - analytic.variance()).abs() / analytic.variance() < 0.25,
        "var {var} vs analytic {}",
        analytic.variance()
    );
}
