//! End-to-end integration: the full paper pipeline across every crate.
//!
//! netlist generation → technology mapping → placement → yield analysis →
//! correlation-aware optimization, checked against the paper's case-study
//! numbers.

use cnfet::celllib::nangate45::nangate45_like;
use cnfet::core::corner::ProcessCorner;
use cnfet::core::failure::FailureModel;
use cnfet::core::optimizer::YieldOptimizer;
use cnfet::core::paper;
use cnfet::core::rowmodel::RowModel;
use cnfet::layout::{place_cells, PlacementOptions};
use cnfet::netlist::mapping::MappedDesign;
use cnfet::netlist::synth::{openrisc_class, DesignSpec};

/// Width pairs of the mapped design (0.1 nm quantized).
fn width_pairs(mapped: &MappedDesign) -> Vec<(f64, u64)> {
    let mut counts: std::collections::BTreeMap<i64, u64> = std::collections::BTreeMap::new();
    for w in mapped.transistor_widths() {
        *counts.entry((w * 10.0).round() as i64).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(k, n)| (k as f64 / 10.0, n))
        .collect()
}

#[test]
fn openrisc_case_study_reproduces_paper_numbers() {
    // 1. Design: OpenRISC-class netlist on the Nangate-45-class library.
    let lib = nangate45_like();
    let netlist = openrisc_class(&DesignSpec::small(), 42);
    let mapped = MappedDesign::map(&netlist, &lib).expect("all cells mappable");

    // 2. Fig 2.2a calibration: ≈ 1/3 of transistors below 160 nm.
    let frac = mapped.fraction_below(160.0);
    assert!((0.26..0.40).contains(&frac), "small fraction {frac}");

    // 3. Placement: the critical-FET density feeds Eq. (3.2).
    let placed = place_cells(mapped.cells(), PlacementOptions::default()).expect("placeable");
    let rho = placed
        .min_fet_density_per_um(paper::WMIN_UNCORRELATED_NM)
        .expect("non-empty design");
    assert!((0.8..3.0).contains(&rho), "rho = {rho} FET/um (paper 1.8)");

    // 4. Yield optimization with the measured distribution and density.
    let model = FailureModel::paper_default(ProcessCorner::aggressive().expect("valid corner"))
        .expect("valid model");
    let row = RowModel::from_design(paper::L_CNT_UM, rho).expect("valid row model");
    let optimizer = YieldOptimizer::new(model, width_pairs(&mapped), paper::M_TRANSISTORS, row)
        .expect("valid optimizer");
    let report = optimizer.optimize(paper::YIELD_TARGET).expect("solvable");

    // The paper's W_min pair, within model tolerance.
    assert!(
        (report.w_min_plain - paper::WMIN_UNCORRELATED_NM).abs() < 12.0,
        "plain W_min {:.1}",
        report.w_min_plain
    );
    assert!(
        (report.w_min_corr - paper::WMIN_CORRELATED_NM).abs() < 12.0,
        "correlated W_min {:.1}",
        report.w_min_corr
    );
    // Penalty nearly eliminated at 45 nm (Fig 3.3).
    assert!(
        report.penalty_corr < 0.05,
        "correlated penalty {:.3}",
        report.penalty_corr
    );
    assert!(report.penalty_plain > report.penalty_corr);
}

#[test]
fn relaxation_factor_tracks_density_times_length() {
    let row =
        RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).expect("valid row model");
    assert!((row.relaxation() - paper::M_R_MIN).abs() < 1e-9);
    // Halving the CNT length halves the benefit.
    let short = RowModel::from_design(paper::L_CNT_UM / 2.0, paper::RHO_MIN_FET_PER_UM)
        .expect("valid row model");
    assert!((short.relaxation() * 2.0 - row.relaxation()).abs() < 1e-9);
}

#[test]
fn mapping_is_portable_across_libraries() {
    // The same netlist maps onto both libraries; widths scale by 65/45.
    let netlist = openrisc_class(&DesignSpec::small(), 7);
    let lib45 = nangate45_like();
    let lib65 = cnfet::celllib::commercial65::commercial65_like();
    let m45 = MappedDesign::map(&netlist, &lib45).expect("45 nm mapping");
    let m65 = MappedDesign::map(&netlist, &lib65).expect("65 nm mapping");
    assert_eq!(m45.cells().len(), m65.cells().len());
    let w45: f64 = m45.transistor_widths().iter().sum();
    let w65: f64 = m65.transistor_widths().iter().sum();
    assert!(((w65 / w45) - 65.0 / 45.0).abs() < 0.01);
}
