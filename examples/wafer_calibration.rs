//! Wafer characterization → yield prediction, end to end.
//!
//! A fab does not know `σ_S/S` a priori: it measures inter-CNT pitches on
//! test structures and fits a model. This example simulates that loop:
//! "measure" pitches from a grown wafer, fit the pitch distribution,
//! verify the fit, and feed it into the `W_min` analysis — then compares
//! against the ground truth the wafer was grown with.
//!
//! Run with `cargo run --release --example wafer_calibration`.

use cnfet::core::corner::ProcessCorner;
use cnfet::core::wmin::WminSolver;
use cnfet::growth::{DirectionalGrowth, Growth, GrowthParams, LengthModel, Rect};
use cnfet::stats::fit::fit_pitch;
use cnfet::stats::renewal::CountModel;
use cnfet_core::failure::FailureModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. grow a wafer patch with known (hidden) statistics ----------
    let truth_cov = 0.8;
    let params = GrowthParams::new(4.0, truth_cov, 0.33, LengthModel::Fixed(50_000.0))?;
    let growth = DirectionalGrowth::new(params);
    let mut rng = StdRng::seed_from_u64(808);
    let patch = Rect::new(0.0, 0.0, 1000.0, 40_000.0)?; // 1 µm × 40 µm scan
    let pop = growth.grow(patch, &mut rng);

    // --- 2. "measure" inter-CNT pitches along the scan line -------------
    let mut tracks = pop.tracks().to_vec();
    tracks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pitches: Vec<f64> = tracks.windows(2).map(|w| w[1] - w[0]).collect();
    println!("measured {} inter-CNT pitches from the scan", pitches.len());

    // --- 3. fit the pitch model -----------------------------------------
    let fit = fit_pitch(&pitches)?;
    println!(
        "fit: mean = {:.3} nm, sd = {:.3} nm, CoV = {:.3} (truth 0.800)",
        fit.sample_mean,
        fit.sample_sd,
        fit.cov()
    );
    println!(
        "KS statistic {:.4} -> fit {}",
        fit.ks_statistic,
        if fit.acceptable() {
            "accepted"
        } else {
            "REJECTED"
        }
    );

    // --- 4. yield analysis with the fitted statistics -------------------
    let corner = ProcessCorner::aggressive()?;
    let fitted_model = FailureModel::new(fit.sample_mean, fit.cov(), corner)?
        .with_backend(CountModel::GaussianSum);
    let truth_model =
        FailureModel::new(4.0, truth_cov, corner)?.with_backend(CountModel::GaussianSum);

    let m_min = 0.33 * 1e8;
    let w_fit = WminSolver::new(fitted_model).solve(0.90, m_min)?.w_min;
    let w_truth = WminSolver::new(truth_model).solve(0.90, m_min)?.w_min;
    println!("\nW_min from fitted wafer statistics: {w_fit:.1} nm");
    println!("W_min from ground-truth statistics: {w_truth:.1} nm");
    println!(
        "calibration error: {:.1} % — wafer characterization closes the loop",
        (w_fit / w_truth - 1.0).abs() * 100.0
    );
    Ok(())
}
