//! Library re-design walkthrough: apply the aligned-active restriction to
//! both standard-cell libraries and inspect the cost the way a library
//! team would (Sec 3.2/3.3 of the paper).
//!
//! Run with `cargo run --release --example aligned_cell_design`.

use cnfet::celllib::commercial65::commercial65_like;
use cnfet::celllib::nangate45::nangate45_like;
use cnfet::layout::{align_library, AlignmentOptions, GridPolicy};
use cnfet::plot::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let single = AlignmentOptions::default();
    let dual = AlignmentOptions {
        policy: GridPolicy::Dual,
        ..AlignmentOptions::default()
    };

    for lib in [nangate45_like(), commercial65_like()] {
        println!("== {} ({} cells) ==\n", lib.name(), lib.cells().len());

        let a1 = align_library(&lib, &single)?;
        let a2 = align_library(&lib, &dual)?;

        let mut t = Table::new(
            "alignment cost",
            &["policy", "cells widened", "min penalty", "max penalty"],
        );
        for (name, a) in [("one grid row", &a1), ("two grid rows", &a2)] {
            t.add_row(&[
                name.to_string(),
                format!(
                    "{} ({:.1} %)",
                    a.penalized().len(),
                    a.penalized_fraction() * 100.0
                ),
                a.min_penalty()
                    .map_or("-".into(), |p| format!("{:.1} %", p * 100.0)),
                a.max_penalty()
                    .map_or("-".into(), |p| format!("{:.1} %", p * 100.0)),
            ])?;
        }
        println!("{}", t.to_markdown());

        // The worst offenders, as a library team would triage them.
        let mut worst: Vec<_> = a1.penalized().into_iter().collect();
        worst.sort_by(|a, b| {
            b.penalty()
                .partial_cmp(&a.penalty())
                .expect("penalties are finite")
        });
        if worst.is_empty() {
            println!("no cell pays any area penalty.\n");
        } else {
            println!("worst cells under the single-grid restriction:");
            for c in worst.iter().take(8) {
                println!(
                    "  {:<22} {:>7.0} nm -> {:>7.0} nm  (+{:.1} %)",
                    c.cell_name,
                    c.old_width,
                    c.new_width,
                    c.penalty() * 100.0
                );
            }
            println!();
        }
    }

    println!(
        "take-away: one grid row penalizes a handful of high-fan-in cells\n\
         (and many flops in compact commercial libraries); a second grid row\n\
         absorbs every conflict at a 2x cost in correlation benefit."
    );
    Ok(())
}
