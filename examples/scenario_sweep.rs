//! Scenario sweep: the yield service as a library, end to end.
//!
//! Builds a processing/circuit co-optimization grid *declaratively* — the
//! way `cnfet-repro sweep <file>` consumes grid files — and streams it
//! through a [`cnfet::pipeline::YieldService`]: bounded shared caches,
//! deterministic index-order delivery, live progress. The grid crosses
//! two processing corners with the three growth/layout correlation
//! scenarios at two nodes: 12 scenarios, 4 distinct curves, one service.
//!
//! Run with `cargo run --release --example scenario_sweep`.

use cnfet::pipeline::{ScenarioGrid, YieldService};
use cnfet::plot::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = ScenarioGrid::parse(
        r#"{
            "name": "co-opt",
            "defaults": {
                "library": "nangate45",
                "backend": "gaussian-sum",
                "m_min": "self-consistent",
                "rho": "paper",
                "fast_design": true
            },
            "axes": {
                "corner": ["aggressive", "ideal-removal"],
                "node_nm": [45, 22],
                "correlation": ["none", "growth", "growth+aligned-layout"]
            }
        }"#,
    )?;
    println!("expanded {} scenarios", grid.scenarios.len());

    // Stream the sweep: reports arrive in index order while later
    // scenarios are still evaluating on the shared bounded caches.
    let service = YieldService::new();
    let mut handle = service.sweep(grid.scenarios, 20100613);
    let mut reports = Vec::new();
    while let Some(item) = handle.next() {
        let progress = handle.progress();
        reports.push(item.report?);
        println!(
            "  [{}/{}] {}",
            progress.delivered,
            progress.total,
            reports.last().expect("just pushed").name
        );
    }
    let stats = service.pipeline().cache_stats();
    println!(
        "cache residency: {}/{} curves ({} exact knots), {} designs",
        stats.curves, stats.curve_capacity, stats.curve_knots, stats.designs
    );

    let mut table = Table::new(
        "process/circuit co-optimization grid",
        &["corner", "node", "correlation", "W_min (nm)", "penalty"],
    );
    for r in &reports {
        table.add_row(&[
            r.corner.clone(),
            format!("{:.0}", r.node_nm),
            r.correlation.clone(),
            format!("{:.1}", r.w_min_nm),
            format!("{:.1} %", r.upsizing_penalty * 100.0),
        ])?;
    }
    println!("{}", table.to_markdown());

    // The paper's message, read straight off the grid: at every (corner,
    // node), more correlation means a smaller W_min.
    for chunk in reports.chunks(3) {
        assert!(chunk[2].w_min_nm <= chunk[1].w_min_nm);
        assert!(chunk[1].w_min_nm <= chunk[0].w_min_nm);
    }
    println!("correlation shrinks W_min at every corner and node — Sec 3's claim, swept.");
    Ok(())
}
