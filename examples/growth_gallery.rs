//! Growth gallery: simulate CNT populations, apply VMR, and verify the
//! statistical-averaging law (`σ/µ(Ion) ∝ 1/√N`) that motivates the whole
//! upsizing problem.
//!
//! Run with `cargo run --release --example growth_gallery`.

use cnfet::device::averaging::averaging_sweep;
use cnfet::device::IonModel;
use cnfet::growth::{
    DirectionalGrowth, Growth, GrowthParams, LengthModel, Rect, UncorrelatedGrowth, Vmr,
};
use cnfet::plot::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2010);

    // --- grow a patch both ways and count what survives VMR -------------
    let region = Rect::new(0.0, 0.0, 4000.0, 2000.0)?; // 4 µm × 2 µm
    let vmr = Vmr::paper_aggressive();

    let directional = DirectionalGrowth::new(GrowthParams::new(
        4.0,
        0.8,
        0.33,
        LengthModel::Fixed(200_000.0),
    )?);
    let mut pop = directional.grow(region, &mut rng);
    vmr.apply(&mut pop, &mut rng);
    println!(
        "directional growth: {} tracks, {} CNTs, {} useful after VMR",
        pop.track_count(),
        pop.cnts().len(),
        pop.cnts().iter().filter(|c| c.is_useful()).count()
    );

    let uncorr = UncorrelatedGrowth::density_matched(GrowthParams::new(
        8.0,
        0.8,
        0.33,
        LengthModel::Exponential { mean: 800.0 },
    )?)?;
    let mut pop_u = uncorr.grow(region, &mut rng);
    vmr.apply(&mut pop_u, &mut rng);
    println!(
        "uncorrelated growth: {} CNTs, {} useful after VMR\n",
        pop_u.cnts().len(),
        pop_u.cnts().iter().filter(|c| c.is_useful()).count()
    );

    // --- statistical averaging: σ/µ(Ion) vs width -----------------------
    let params = GrowthParams::new(4.0, 0.8, 0.33, LengthModel::Fixed(2000.0))?;
    let growth = DirectionalGrowth::new(params);
    let ion = IonModel::typical();
    let widths = [16.0, 32.0, 64.0, 128.0, 256.0];
    let pts = averaging_sweep(&growth, &vmr, &ion, &widths, 1500, &mut rng)?;

    let mut t = Table::new(
        "statistical averaging (1500 trials per width)",
        &[
            "W (nm)",
            "mean useful CNTs",
            "mean Ion (uA)",
            "sigma/mu Ion",
            "sqrt(N) * sigma/mu",
            "count-failure rate",
        ],
    );
    for p in &pts {
        t.add_row(&[
            format!("{:.0}", p.width),
            format!("{:.1}", p.mean_count),
            format!("{:.0}", p.mean_ion),
            format!("{:.3}", p.ion_cov),
            format!("{:.2}", p.ion_cov * p.mean_count.sqrt()),
            format!("{:.4}", p.failure_fraction),
        ])?;
    }
    println!("{}", t.to_markdown());
    println!(
        "the right-hand column is ~constant: σ/µ(Ion) falls as 1/√N —\n\
         wide CNFETs average their imperfections away, narrow ones fail;\n\
         that asymmetry is why W_min (and this paper) exists."
    );
    Ok(())
}
