//! Process exploration: how `W_min` and the upsizing penalty respond to
//! the processing knobs (`pm`, `pRs`) and the CNT length.
//!
//! The scenario a fab team faces: VMR selectivity trades metallic removal
//! against collateral damage, and growth recipes trade CNT length against
//! density. This example sweeps both and prints the resulting design cost.
//!
//! Run with `cargo run --release --example process_explorer`.

use cnfet::core::corner::ProcessCorner;
use cnfet::core::curve::FailureCurve;
use cnfet::core::failure::FailureModel;
use cnfet::core::paper;
use cnfet::core::rowmodel::RowModel;
use cnfet::core::wmin::WminSolver;
use cnfet::plot::Table;
use cnt_stats::renewal::CountModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m_min = paper::MMIN_FRACTION * paper::M_TRANSISTORS;

    // --- Sweep 1: VMR collateral damage (pRs) at pm = 33 % --------------
    let mut t = Table::new(
        "W_min vs VMR collateral damage (pm = 33 %, yield 90 %, M = 1e8)",
        &["pRs", "pf", "W_min plain (nm)", "W_min corr (nm)"],
    );
    let row = RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM)?;
    for p_rs in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let corner = ProcessCorner::new(0.33, p_rs, 1.0)?;
        // The CLT back-end keeps the sweep fast; anchors elsewhere use the
        // exact convolution.
        let model = FailureModel::paper_default(corner)?.with_backend(CountModel::GaussianSum);
        let solver = WminSolver::new(model);
        let plain = solver.solve(paper::YIELD_TARGET, m_min)?;
        let corr = solver.solve_relaxed(paper::YIELD_TARGET, m_min, row.relaxation())?;
        t.add_row(&[
            format!("{:.0} %", p_rs * 100.0),
            format!("{:.3}", corner.pf()),
            format!("{:.1}", plain.w_min),
            format!("{:.1}", corr.w_min),
        ])?;
    }
    println!("{}", t.to_markdown());

    // --- Sweep 2: metallic fraction (pm) at pRs = 30 % ------------------
    let mut t = Table::new(
        "W_min vs metallic fraction (pRs = 30 %)",
        &["pm", "pf", "W_min plain (nm)", "W_min corr (nm)"],
    );
    for pm in [0.0, 0.1, 0.2, 0.33, 0.45] {
        let corner = ProcessCorner::new(pm, 0.30, 1.0)?;
        let model = FailureModel::paper_default(corner)?.with_backend(CountModel::GaussianSum);
        let solver = WminSolver::new(model);
        let plain = solver.solve(paper::YIELD_TARGET, m_min)?;
        let corr = solver.solve_relaxed(paper::YIELD_TARGET, m_min, row.relaxation())?;
        t.add_row(&[
            format!("{:.0} %", pm * 100.0),
            format!("{:.3}", corner.pf()),
            format!("{:.1}", plain.w_min),
            format!("{:.1}", corr.w_min),
        ])?;
    }
    println!("{}", t.to_markdown());

    // --- Sweep 3: CNT length (the growth-recipe knob of Eq. 3.2) --------
    let mut t = Table::new(
        "Correlated W_min vs CNT length (rho = 1.8 FET/um)",
        &["L_CNT (um)", "M_Rmin", "relaxation", "W_min corr (nm)"],
    );
    // All five solves hit the same corner, so share one memoized curve —
    // the bisections after the first are pure cache lookups.
    let corner = ProcessCorner::aggressive()?;
    let curve = FailureCurve::new(
        FailureModel::paper_default(corner)?.with_backend(CountModel::GaussianSum),
    );
    let solver = WminSolver::new(&curve);
    for l_cnt in [10.0, 50.0, 100.0, 200.0, 400.0] {
        let row = RowModel::from_design(l_cnt, paper::RHO_MIN_FET_PER_UM)?;
        let corr = solver.solve_relaxed(paper::YIELD_TARGET, m_min, row.relaxation())?;
        t.add_row(&[
            format!("{l_cnt:.0}"),
            format!("{:.0}", row.m_r_min()),
            format!("{:.0}x", row.relaxation()),
            format!("{:.1}", corr.w_min),
        ])?;
    }
    println!("{}", t.to_markdown());
    println!("longer CNTs buy more correlation: the knob the paper asks growers for.");
    Ok(())
}
