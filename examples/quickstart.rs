//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Computes the minimum CNFET width (`W_min`) a 100-million-transistor
//! chip needs for 90 % yield — first assuming independent CNFET failures,
//! then exploiting the CNT correlation of directional growth with
//! aligned-active cells.
//!
//! Run with `cargo run --release --example quickstart`.

use cnfet::core::corner::ProcessCorner;
use cnfet::core::failure::FailureModel;
use cnfet::core::paper;
use cnfet::core::rowmodel::RowModel;
use cnfet::core::wmin::WminSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Processing: 33 % metallic CNTs; VMR removes them all but also 30 %
    // of the good ones. Pitch: 4 nm mean, Zhang-09a variation.
    let corner = ProcessCorner::aggressive()?;
    let model = FailureModel::paper_default(corner)?;
    println!("per-CNT failure probability pf = {:.3}", model.pf());

    // Device level: failure probability falls exponentially with width.
    for w in [40.0, 80.0, 120.0, 160.0] {
        println!("  pF({w:>3} nm) = {:.3e}", model.p_failure(w)?);
    }

    // Chip level: 33 % of 1e8 transistors are minimum-sized.
    let m_min = paper::MMIN_FRACTION * paper::M_TRANSISTORS;
    let solver = WminSolver::new(model);
    let plain = solver.solve(paper::YIELD_TARGET, m_min)?;
    println!(
        "\nwithout correlation:  W_min = {:.1} nm (pF requirement {:.1e})",
        plain.w_min, plain.p_req
    );

    // Correlation: 200-µm CNTs × 1.8 critical FETs/µm → rows of ~360
    // devices that fail together instead of independently.
    let row = RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM)?;
    let relaxed = solver.solve_relaxed(paper::YIELD_TARGET, m_min, row.relaxation())?;
    println!(
        "with correlation:     W_min = {:.1} nm ({}x relaxation)",
        relaxed.w_min,
        row.relaxation() as u64
    );
    println!("\npaper: 155 nm -> 103 nm at the 45 nm node (350x relaxation)");
    Ok(())
}
