//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access and an
//! empty cargo registry, so the subset of the `rand 0.8` API that the
//! workspace actually uses is reimplemented here, API-compatibly:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! * [`rngs::StdRng`], a deterministic seedable generator.
//!
//! `StdRng` here is **xoshiro256\*\*** seeded through SplitMix64 — not the
//! ChaCha12 generator of the real crate — so absolute sample streams differ
//! from upstream `rand`, but all determinism guarantees (same seed ⇒ same
//! stream, portable across platforms) hold identically. No `thread_rng` or
//! OS entropy source is provided on purpose: every generator in this
//! workspace must be explicitly seeded.

/// The core of a random number generator: a source of random words.
///
/// Object-safe, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material, e.g. `[u8; 32]`.
    type Seed: AsMut<[u8]> + Default;

    /// Build the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with SplitMix64
    /// (same construction as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Sample one value uniformly from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Rejection sampling over the widened space keeps the draw
                // unbiased for every span, not just powers of two.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                if end < <$t>::MAX {
                    (start..end + 1).sample_from(rng)
                } else {
                    // Full-width inclusive range: no rejection needed.
                    <$t as Standard>::sample_standard(rng)
                }
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (uniform `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        f64::sample_standard(&mut *self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators ([`StdRng`]).
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256\*\*, Blackman & Vigna).
    ///
    /// Drop-in for `rand::rngs::StdRng` within this workspace: same-seed ⇒
    /// same-stream on every platform. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dyn_rngcore_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u32();
        let mut bytes = [0u8; 13];
        dyn_rng.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
