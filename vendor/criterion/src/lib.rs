//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the subset of the
//! criterion 0.5 API used by `crates/bench` is reimplemented here: the
//! [`criterion_group!`]/[`criterion_main!`] macros, [`Criterion`],
//! [`BenchmarkId`], benchmark groups, and `Bencher::iter`.
//!
//! Measurement is deliberately lightweight — a short warm-up followed by a
//! fixed time budget per benchmark, reporting mean ns/iter to stdout. It is
//! good enough to rank back-ends and catch order-of-magnitude regressions;
//! it does not do criterion's outlier analysis or HTML reports.
//!
//! Bench targets must set `harness = false` in their manifest (as with real
//! criterion), because [`criterion_main!`] expands to `fn main`.
//!
//! On top of the stdout report, setting `CRITERION_JSON_OUT=<path>` makes
//! [`finalize`] (called by [`criterion_main!`] after all groups) write the
//! collected measurements as a stable machine-readable JSON document, so CI
//! can archive per-commit baselines without scraping text.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// All measurements recorded by [`run_one`] this process, in run order.
static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// One finished measurement: benchmark name, mean cost, sample size.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Opaque-to-the-optimizer identity, re-exported for criterion parity.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Wall-clock budget spent measuring each benchmark after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
/// Wall-clock budget spent warming each benchmark up.
const WARMUP_BUDGET: Duration = Duration::from_millis(20);

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter, rendered
    /// `name/parameter` like criterion does.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the display name used in the report.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, repeating it until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32);
        let batch = match per_iter {
            Some(d) if d > Duration::ZERO => {
                (MEASURE_BUDGET.as_nanos() / d.as_nanos().max(1) / 10).clamp(1, 1 << 20) as u64
            }
            _ => 1 << 10,
        };

        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.iters += batch;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name:<48} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("bench {name:<48} {ns:>14.1} ns/iter  ({} iters)", b.iters);
    RESULTS.lock().unwrap().push(Record {
        name: name.to_string(),
        ns_per_iter: ns,
        iters: b.iters,
    });
}

/// Minimal JSON string escaping for benchmark names (quotes, backslashes,
/// control characters — names are ASCII identifiers in practice).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Best-effort output of an external command, trimmed; `"unknown"` when the
/// command is missing, fails, or prints nothing. Provenance only — never
/// load-bearing.
fn probe_command(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Render every recorded measurement as a deterministic-key-order JSON
/// document. `ns_per_iter` is rounded to 0.1 ns so the shape is stable and
/// diffs stay readable; `iters` records the sample size behind the mean.
/// Schema `criterion-lite/2` adds a provenance `meta` block (git commit,
/// UTC date, toolchain), each field falling back to `"unknown"` when the
/// probing command is unavailable.
pub fn results_json() -> String {
    let results = RESULTS.lock().unwrap();
    let git_commit = probe_command("git", &["rev-parse", "--short", "HEAD"]);
    let date = probe_command("date", &["-u", "+%Y-%m-%dT%H:%M:%SZ"]);
    let toolchain = probe_command("rustc", &["--version"]);
    let mut out = String::from("{\n  \"schema\": \"criterion-lite/2\",\n");
    out.push_str(&format!(
        "  \"meta\": {{ \"git_commit\": \"{}\", \"date\": \"{}\", \"toolchain\": \"{}\" }},\n",
        escape_json(&git_commit),
        escape_json(&date),
        escape_json(&toolchain)
    ));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {} }}{}\n",
            escape_json(&r.name),
            r.ns_per_iter,
            r.iters,
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Flush results after all groups have run. When `CRITERION_JSON_OUT` names
/// a path, the collected measurements are written there as JSON (see
/// [`results_json`]); otherwise this is a no-op beyond clearing the
/// registry. [`criterion_main!`] calls this automatically.
pub fn finalize() {
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if !path.is_empty() {
            let doc = results_json();
            if let Err(err) = std::fs::write(&path, doc) {
                eprintln!("criterion: failed to write {path}: {err}");
            } else {
                println!("criterion: wrote JSON report to {path}");
            }
        }
    }
    RESULTS.lock().unwrap().clear();
}

/// A named collection of related benchmarks, mirroring criterion's
/// `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    group_name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group_name, id.into_name());
        run_one(&name, &mut f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group_name, id.into_name());
        run_one(&name, &mut |b| f(b, input));
        self
    }

    /// End the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Benchmark driver, mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 155u64).name, "conv/155");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn results_json_reports_recorded_benchmarks() {
        RESULTS.lock().unwrap().clear();
        let mut c = Criterion::default();
        c.bench_function("json \"smoke\"", |b| b.iter(|| black_box(2 + 2)));
        let doc = results_json();
        assert!(doc.contains("\"schema\": \"criterion-lite/2\""));
        assert!(doc.contains("\"meta\""));
        assert!(doc.contains("\"git_commit\""));
        assert!(doc.contains("\"date\""));
        assert!(doc.contains("\"toolchain\""));
        assert!(doc.contains("\"name\": \"json \\\"smoke\\\"\""));
        assert!(doc.contains("\"ns_per_iter\""));
        finalize();
        // The registry is flushed; concurrent tests may have added their own
        // records since, but ours must be gone.
        assert!(!results_json().contains("json \\\"smoke\\\""));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
