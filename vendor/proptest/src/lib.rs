//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the subset of the
//! proptest 1.x API used by this workspace is reimplemented here:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * numeric range strategies (`0.0f64..1.0`, `1usize..20`, ...),
//! * [`collection::vec`] and [`bool::ANY`].
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test seeded generator (derived from the test name, so runs are fully
//! reproducible), there is **no shrinking**, and the default case count is
//! 64 (override with the `PROPTEST_CASES` environment variable).

use rand::rngs::StdRng;

/// How a property-test case ended early.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: discard the case, it is out of domain.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// True for `prop_assume!` rejections.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

/// Result type produced by the body of a [`proptest!`] case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random typed values (real proptest's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u32, u64, usize, i32, i64, isize);

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for a fair random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen::<bool>(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

#[doc(hidden)]
pub mod test_runner {
    //! Support machinery for the `proptest!` macro expansion.
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases to run per property (default 64, `PROPTEST_CASES`
    /// overrides).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-test generator: the seed is an FNV-1a hash of the
    /// test name, so every run of a given test sees the same inputs.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Define property tests: `proptest! { #[test] fn name(x in 0..10) {..} }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                let __cases = $crate::test_runner::case_count();
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` falsified on case {}/{}: {}",
                                stringify!($name), __case + 1, __cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let __cond: bool = $cond;
        if !__cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __cond: bool = $cond;
        if !__cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Discard the current case when its inputs are out of the property's
/// domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __cond: bool = $cond;
        if !__cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError, TestCaseResult};

    pub mod prop {
        //! The `prop::` path exposed by the real prelude.
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 2.5f64..7.5,
            n in 3usize..9,
            s in 0u64..50,
        ) {
            prop_assert!((2.5..7.5).contains(&x), "x = {x}");
            prop_assert!((3..9).contains(&n));
            prop_assert!(s < 50);
        }

        #[test]
        fn vectors_have_requested_lengths(
            xs in prop::collection::vec(0.0f64..1.0, 1..20),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn assume_discards_out_of_domain(
            a in 0.0f64..1.0,
        ) {
            prop_assume!(a > 0.25);
            prop_assert!(a > 0.25);
        }
    }

    #[test]
    fn determinism_same_test_name_same_stream() {
        use crate::test_runner::rng_for;
        use rand::RngCore;
        let mut a = rng_for("t");
        let mut b = rng_for("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
