//! Special functions: error function, standard normal CDF and quantile.
#![allow(clippy::excessive_precision)] // published constants kept verbatim
//!
//! Everything here is implemented from first principles so that the workspace
//! carries no external numerical dependency. Accuracies are documented per
//! function and verified by unit tests against high-precision reference
//! values.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined
/// with one step of the continued-fraction tail for large `|x|`; absolute
/// error is below `1.2e-7` over the real line, which is ample for yield
/// probabilities that are themselves Monte-Carlo or model-limited.
///
/// ```
/// use cnt_stats::special::erf;
/// assert!((erf(0.0)).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 with Horner evaluation; symmetric about 0.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - y * (-x * x).exp())
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For large positive `x` this evaluates the asymptotic continued fraction
/// directly so that tail probabilities down to ~1e-300 keep full *relative*
/// precision instead of being rounded to zero by cancellation. This matters
/// because CNFET failure probabilities of interest live at 1e-6 .. 1e-12.
pub fn erfc(x: f64) -> f64 {
    if x < 3.0 {
        return 1.0 - erf(x);
    }
    // Laplace continued fraction, folded from the tail:
    // erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))
    // Converges rapidly for x ≥ 3; keeps relative precision deep in the tail.
    let mut cf = 0.0_f64;
    for k in (1..=60).rev() {
        cf = (k as f64 / 2.0) / (x + cf);
    }
    (-(x * x)).exp() / std::f64::consts::PI.sqrt() / (x + cf)
}

/// Standard normal probability density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)`, accurate in both tails.
///
/// ```
/// use cnt_stats::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper-tail standard normal probability `P(Z > x) = 1 − Φ(x)`,
/// with full relative precision for large `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (inverse CDF).
///
/// Acklam's rational approximation polished with one Halley step of
/// refinement; relative error below 1e-9 for `p ∈ (1e-300, 1 − 1e-16)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` — quantiles at the boundary are ±∞ and
/// indicate a logic error upstream.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Used for factorials and binomial terms in count distributions; absolute
/// error below 1e-10 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` computed via [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Numerically stable `ln(exp(a) + exp(b))`.
pub fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// `ln C(n, k)` — the log binomial coefficient.
///
/// For the small side `min(k, n − k) ≤ 10⁴` this accumulates the exact
/// product `Σ ln((n − j + 1)/j)`, which keeps full relative precision for
/// the huge-`n`, tiny-`k` regime that dominates redundancy tail sums;
/// larger arguments fall back to [`ln_gamma`].
///
/// ```
/// use cnt_stats::special::ln_choose;
/// assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_choose(7, 0), 0.0);
/// assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k <= 10_000 {
        let mut acc = 0.0_f64;
        for j in 1..=k {
            acc += ((n - j + 1) as f64).ln() - (j as f64).ln();
        }
        acc
    } else {
        ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
    }
}

/// Lower binomial tail `P(Bin(n, q) ≤ s)` evaluated term-by-term in log
/// space: `Σ_{k=0}^{s} exp(ln C(n,k) + k·ln q + (n−k)·ln(1−q))`.
///
/// The caller supplies `ln_q = ln q` and `ln_1mq = ln(1 − q)` directly so
/// that `q` values produced by `ln_1p`/`exp_m1` chains keep their full
/// precision into the tail (a `q` of `1e-300` still contributes exact
/// terms). Cost is `s + 1` exponentials — cheap for the spare counts a
/// redundancy scheme carries.
///
/// The two log-weights need not sum to a full distribution: callers may
/// pass a *thinned* count weight (e.g. only test-detected failures in
/// `ln_q`) against an untinned survival weight in `ln_1mq`, in which
/// case the sum is the probability of "≤ s counted events and no
/// uncounted ones" — the degenerate `−∞` branches below keep exactly
/// that reading.
///
/// ```
/// use cnt_stats::special::binomial_tail_le;
/// let q: f64 = 0.25;
/// // P(Bin(4, 1/4) = 0) = (3/4)^4.
/// let p0 = binomial_tail_le(4, 0, q.ln(), (1.0 - q).ln());
/// assert!((p0 - 0.75_f64.powi(4)).abs() < 1e-12);
/// // The full tail is a probability of 1.
/// let all = binomial_tail_le(4, 4, q.ln(), (1.0 - q).ln());
/// assert!((all - 1.0).abs() < 1e-12);
/// ```
pub fn binomial_tail_le(n: u64, s: u64, ln_q: f64, ln_1mq: f64) -> f64 {
    if ln_q == f64::NEG_INFINITY {
        // q = 0: only the k = 0 term survives.
        return (n as f64 * ln_1mq).exp().min(1.0);
    }
    if ln_1mq == f64::NEG_INFINITY {
        // 1 − q = 0: only the k = n term survives.
        return if s >= n {
            (n as f64 * ln_q).exp().min(1.0)
        } else {
            0.0
        };
    }
    let s = s.min(n);
    let mut sum = 0.0_f64;
    let mut ln_c = 0.0_f64; // ln C(n, 0)
    for k in 0..=s {
        if k > 0 {
            ln_c += ((n - k + 1) as f64).ln() - (k as f64).ln();
        }
        sum += (ln_c + k as f64 * ln_q + (n - k) as f64 * ln_1mq).exp();
    }
    sum.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables (15 digits truncated).
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520499877813047),
            (1.0, 0.842700792949715),
            (2.0, 0.995322265018953),
            (-1.0, -0.842700792949715),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_tail_has_relative_precision() {
        // erfc(5) = 1.5374597944280349e-12
        let got = erfc(5.0);
        let want = 1.5374597944280349e-12;
        assert!(
            ((got - want) / want).abs() < 1e-3,
            "erfc(5) = {got}, want {want}"
        );
        // erfc(10) = 2.0884875837625447e-45
        let got = erfc(10.0);
        let want = 2.0884875837625447e-45;
        assert!(
            ((got - want) / want).abs() < 1e-3,
            "erfc(10) = {got}, want {want}"
        );
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        for x in [-8.0, -3.0, -1.0, 0.0, 0.7, 2.5, 6.0] {
            let lo = normal_cdf(x);
            let hi = normal_sf(-x);
            assert!((lo - hi).abs() < 1e-12, "symmetry broken at {x}");
            assert!((0.0..=1.0).contains(&lo));
        }
        // P(Z > 6) = 9.8659e-10; check relative accuracy.
        let want = 9.865876450376946e-10;
        assert!(((normal_sf(6.0) - want) / want).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-9, 1e-6, 0.01, 0.3, 0.5, 0.9, 0.999, 1.0 - 1e-9] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-9 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e6),
                "round trip failed at p = {p}: x = {x}, cdf = {}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_boundary() {
        normal_quantile(1.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..=n).map(|k| k as f64).product();
            assert!(
                (ln_factorial(n) - fact.ln()).abs() < 1e-9,
                "ln({n}!) mismatch"
            );
        }
        // Γ(0.5) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(-1000.0, -1000.0) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(f64::NEG_INFINITY, -3.0), -3.0);
    }
}
