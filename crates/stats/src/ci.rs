//! Confidence intervals for means and (rare-event) proportions.

use crate::special::normal_quantile;
use crate::{Result, StatsError, Summary};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Relative half-width (`half_width / |estimate|`), `∞` at zero.
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / self.estimate.abs()
        }
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4e} [{:.4e}, {:.4e}] @ {:.0}%",
            self.estimate,
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

fn check_level(level: f64) -> Result<f64> {
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "level",
            value: level,
            constraint: "must be in (0, 1)",
        });
    }
    Ok(normal_quantile(1.0 - (1.0 - level) / 2.0))
}

/// Normal-theory confidence interval for a mean from a [`Summary`].
///
/// # Errors
///
/// Returns an error for invalid `level` or fewer than two observations.
pub fn mean_ci(summary: &Summary, level: f64) -> Result<ConfidenceInterval> {
    let z = check_level(level)?;
    let se = summary.std_error()?;
    if !(summary.mean().is_finite() && se.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name: "summary",
            value: summary.mean(),
            constraint: "mean and standard error must be finite",
        });
    }
    Ok(ConfidenceInterval {
        estimate: summary.mean(),
        lo: summary.mean() - z * se,
        hi: summary.mean() + z * se,
        level,
    })
}

/// Wilson score interval for a binomial proportion.
///
/// Chosen over the Wald interval because yield-loss probabilities are tiny:
/// Wilson stays inside `[0, 1]` and keeps sensible coverage when
/// `successes` is 0 — exactly the regime of CNT count failures.
///
/// # Errors
///
/// Returns an error for `trials == 0`, `successes > trials`, or invalid
/// `level`.
pub fn proportion_ci(successes: u64, trials: u64, level: f64) -> Result<ConfidenceInterval> {
    if trials == 0 {
        return Err(StatsError::EmptyData("proportion_ci with zero trials"));
    }
    if successes > trials {
        return Err(StatsError::InvalidParameter {
            name: "successes",
            value: successes as f64,
            constraint: "must be <= trials",
        });
    }
    let z = check_level(level)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(ConfidenceInterval {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        level,
    })
}

/// Confidence interval for a weighted-average probability where each trial
/// contributes an *exact* conditional probability in `[0, 1]` (the output of
/// a conditional/Rao-Blackwellised Monte-Carlo run).
///
/// # Errors
///
/// Returns an error for invalid `level` or fewer than two observations.
pub fn conditional_mc_ci(summary: &Summary, level: f64) -> Result<ConfidenceInterval> {
    let ci = mean_ci(summary, level)?;
    Ok(ConfidenceInterval {
        estimate: ci.estimate,
        lo: ci.lo.max(0.0),
        hi: ci.hi.min(1.0),
        level: ci.level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_shrinks_with_n() {
        let narrow: Summary = (0..10_000).map(|i| (i % 7) as f64).collect();
        let wide: Summary = (0..100).map(|i| (i % 7) as f64).collect();
        let ci_n = mean_ci(&narrow, 0.95).unwrap();
        let ci_w = mean_ci(&wide, 0.95).unwrap();
        assert!(ci_n.half_width() < ci_w.half_width());
        assert!(ci_n.contains(3.0));
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let ci = proportion_ci(0, 1000, 0.95).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 0.01, "hi = {}", ci.hi);
    }

    #[test]
    fn wilson_is_symmetric_in_p_and_q() {
        let a = proportion_ci(300, 1000, 0.95).unwrap();
        let b = proportion_ci(700, 1000, 0.95).unwrap();
        assert!((a.lo - (1.0 - b.hi)).abs() < 1e-12);
        assert!((a.hi - (1.0 - b.lo)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(proportion_ci(0, 0, 0.95).is_err());
        assert!(proportion_ci(5, 4, 0.95).is_err());
        assert!(proportion_ci(1, 4, 1.0).is_err());
        let s = Summary::of(&[1.0]);
        assert!(mean_ci(&s, 0.95).is_err());
    }

    #[test]
    fn empty_and_degenerate_batches_never_produce_nan() {
        // The adaptive MC driver merges batch summaries and asks for a CI
        // after every commit; each edge case must be a typed error or a
        // finite in-range interval, never NaN.
        assert!(proportion_ci(0, 0, 0.95).is_err(), "empty batch");
        assert!(proportion_ci(7, 3, 0.95).is_err(), "overfull batch");
        let all = proportion_ci(1000, 1000, 0.95).unwrap();
        assert!(all.lo >= 0.0 && all.hi <= 1.0 && all.lo.is_finite());
        assert_eq!(all.hi, 1.0);
        let nan = Summary::of(&[f64::NAN, 1.0, 2.0]);
        assert!(mean_ci(&nan, 0.95).is_err(), "NaN data must not leak a CI");
        let inf = Summary::of(&[f64::INFINITY, 1.0]);
        assert!(mean_ci(&inf, 0.95).is_err());
    }

    #[test]
    fn display_formats() {
        let ci = proportion_ci(10, 1000, 0.95).unwrap();
        let s = ci.to_string();
        assert!(s.contains("95%"), "{s}");
    }

    #[test]
    fn conditional_ci_clamped_to_unit_interval() {
        let mut s = Summary::new();
        for _ in 0..50 {
            s.add(1e-9);
        }
        s.add(5e-9);
        let ci = conditional_mc_ci(&s, 0.99).unwrap();
        assert!(ci.lo >= 0.0);
        assert!(ci.hi <= 1.0);
        assert!(ci.estimate > 0.0);
    }
}
