//! # cnt-stats
//!
//! Statistics substrate for carbon-nanotube (CNT) and CNFET yield modeling.
//!
//! This crate provides the probabilistic machinery that the rest of the
//! `cnfet` workspace is built on:
//!
//! * [`special`] — special functions (`erf`, normal CDF/quantile) implemented
//!   from scratch so the workspace has no numerical dependencies.
//! * [`dist`] — continuous and discrete distributions with analytic moments
//!   and reproducible sampling (notably [`dist::TruncatedGaussian`], the
//!   inter-CNT pitch model of \[Zhang 09a\]).
//! * [`renewal`] — the renewal counting process `N(W)`: the (random) number
//!   of CNTs that fall under a CNFET gate of width `W`. Its probability
//!   generating function evaluated at the per-CNT failure probability `pf`
//!   *is* Eq. (2.2) of the paper.
//! * [`histogram`], [`describe`], [`ci`], [`correlation`] — data summaries
//!   used by the Monte-Carlo engine and the experiment harness.
//! * [`seed`] — the workspace's one deterministic seed-splitting rule
//!   (`split_seed`), shared by every parallel/streamed layer.
//! * [`fasthash`] — a deterministic multiply–rotate hasher for the hot
//!   memo maps (curve knots, Monte-Carlo points, wafer scenarios).
//! * [`distspec`] — declarative, seedable stochastic knobs:
//!   [`distspec::DistSpec`] (tagged distribution specs) and
//!   [`distspec::FieldSpec`] (wafer-scale random fields with a radial
//!   trend and spatially correlated noise).
//!
//! ## Example
//!
//! Computing the distribution of the number of CNTs under a 155 nm gate with
//! 4 nm mean pitch:
//!
//! ```
//! use cnt_stats::dist::TruncatedGaussian;
//! use cnt_stats::renewal::{CountModel, RenewalCount};
//!
//! # fn main() -> Result<(), cnt_stats::StatsError> {
//! let pitch = TruncatedGaussian::positive_with_moments(4.0, 0.82 * 4.0)?;
//! let counts = RenewalCount::new(pitch, CountModel::GaussianSum).distribution(155.0)?;
//! assert!((counts.mean() - 155.0 / 4.0).abs() < 2.0);
//! // Probability that *every* CNT fails when each fails with p = 0.531:
//! let p_all_fail = counts.pgf(0.531);
//! assert!(p_all_fail < 1e-6);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod ci;
pub mod correlation;
pub mod describe;
pub mod dist;
pub mod distspec;
pub mod fasthash;
pub mod fit;
pub mod histogram;
pub mod renewal;
pub mod seed;
pub mod special;

use std::error::Error;
use std::fmt;

/// Error type for every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be > 0"`.
        constraint: &'static str,
    },
    /// An input data set was empty where at least one element is required.
    EmptyData(&'static str),
    /// Inputs that must agree in length did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A numerical routine failed to converge.
    NoConvergence(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            StatsError::EmptyData(what) => write!(f, "empty data: {what}"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::NoConvergence(what) => write!(f, "no convergence in {what}"),
        }
    }
}

impl Error for StatsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

pub use describe::Summary;
pub use dist::{
    Bernoulli, ContinuousDist, DiscreteDist, Exponential, Gaussian, LogNormal, TruncatedGaussian,
    Uniform,
};
pub use distspec::{DistSpec, FieldSampler, FieldSpec};
pub use fasthash::{FastBuild, FastMap, FastSet};
pub use histogram::Histogram;
pub use renewal::{CountDistribution, CountModel, FailureSampler, RenewalCount};
pub use seed::{split_seed, splitmix64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::InvalidParameter {
            name: "sigma",
            value: -1.0,
            constraint: "must be > 0",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("-1"));
        let e = StatsError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
