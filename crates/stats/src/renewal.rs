//! Renewal counting process for CNT counts under a gate: `N(W)`.
//!
//! \[Zhang 09a\] models the positions of CNTs along the direction
//! perpendicular to growth as a renewal process: successive inter-CNT
//! pitches are i.i.d. draws from a (truncated Gaussian) pitch distribution
//! with mean `S` and standard deviation `σ_S`. The number of CNTs `N(W)`
//! inside an active region of width `W` is the renewal *count* of that
//! process, and the CNFET count-failure probability of the paper's Eq. (2.2)
//! is its probability generating function (PGF) evaluated at the per-CNT
//! failure probability:
//!
//! ```text
//! pF(W) = Σ_n pf^n · Prob{N(W) = n} = E[pf^N] = PGF_N(W)(pf)
//! ```
//!
//! Three evaluation back-ends are provided and cross-validated in tests:
//!
//! * [`CountModel::GaussianSum`] — CLT approximation of the n-fold pitch sum
//!   (fast, closed-form; the default for sweeps),
//! * [`CountModel::Convolution`] — numerically exact discretized convolution
//!   of the pitch density (the reference used for calibration),
//! * [`CountModel::MonteCarlo`] — simulation, used as an independent
//!   cross-check of both. Count *distributions* are empirical; the failure
//!   probability routes through [`FailureSampler`], a stratified,
//!   exponentially tilted estimator that stays accurate at the paper's
//!   1e-9 scale with thousands (not billions) of trials.

use crate::dist::{ContinuousDist, DiscreteDist, TruncatedGaussian};
use crate::fasthash::FastMap;
use crate::special::normal_cdf;
use crate::{Result, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// Where the first CNT sits relative to the lower edge of the active region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartPolicy {
    /// The lower edge coincides with a CNT; the first gap is a full pitch.
    /// This matches a process that nucleates CNTs at region boundaries.
    Ordinary,
    /// The active region is dropped at an arbitrary position on a wafer
    /// uniformly covered by CNTs, so the first gap follows the renewal
    /// *equilibrium* distribution. This is the physically correct model for
    /// placed CNFETs and the default. Its mean count is exactly `W / S̄`.
    #[default]
    Stationary,
}

/// Numerical back-end used to evaluate the count distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CountModel {
    /// Central-limit approximation: the position of the n-th CNT is treated
    /// as Gaussian with the exact first two moments of the n-fold pitch sum.
    GaussianSum,
    /// Exact discretized convolution of the pitch density with grid `step`
    /// (nm). `step = 0.05` keeps the PGF accurate to better than 1 % in the
    /// 1e-9 regime while staying fast.
    Convolution {
        /// Discretization step in nanometres.
        step: f64,
    },
    /// Empirical distribution from direct simulation — an independent
    /// cross-check of the other two back-ends.
    MonteCarlo {
        /// Number of simulated active regions.
        trials: u32,
        /// RNG seed (the model is deterministic given the seed).
        seed: u64,
    },
}

impl Default for CountModel {
    fn default() -> Self {
        CountModel::Convolution { step: 0.05 }
    }
}

/// Renewal counting process for CNTs crossing an active region.
///
/// See the [module documentation](self) for the modeling background.
#[derive(Debug, Clone, PartialEq)]
pub struct RenewalCount {
    pitch: TruncatedGaussian,
    model: CountModel,
    start: StartPolicy,
}

impl RenewalCount {
    /// Create a renewal counting process from an inter-CNT pitch
    /// distribution and an evaluation back-end, with the default
    /// [`StartPolicy::Stationary`].
    pub fn new(pitch: TruncatedGaussian, model: CountModel) -> Self {
        Self {
            pitch,
            model,
            start: StartPolicy::default(),
        }
    }

    /// Select the start policy (builder style).
    pub fn with_start(mut self, start: StartPolicy) -> Self {
        self.start = start;
        self
    }

    /// The pitch distribution.
    pub fn pitch(&self) -> &TruncatedGaussian {
        &self.pitch
    }

    /// The evaluation back-end.
    pub fn model(&self) -> CountModel {
        self.model
    }

    /// The start policy.
    pub fn start(&self) -> StartPolicy {
        self.start
    }

    /// Distribution of the CNT count `N(width)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `width` is negative or not
    /// finite, or if a back-end parameter is invalid (e.g. non-positive
    /// convolution step).
    pub fn distribution(&self, width: f64) -> Result<CountDistribution> {
        if !(width.is_finite() && width >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and >= 0",
            });
        }
        if width == 0.0 {
            return CountDistribution::from_pmf(vec![1.0], width);
        }
        match self.model {
            CountModel::GaussianSum => self.distribution_clt(width),
            CountModel::Convolution { step } => self.distribution_conv(width, step),
            CountModel::MonteCarlo { trials, seed } => self.distribution_mc(width, trials, seed),
        }
    }

    /// Convenience: the paper's Eq. (2.2), `pF(W) = E[pf^N(W)]`.
    ///
    /// For the [`CountModel::Convolution`] back-end this does *not*
    /// materialize the count distribution: the PGF is evaluated directly by
    /// a single renewal-equation sweep over the grid
    /// (`RenewalCount::failure_probability_conv`), which is `O(W · S̄)`
    /// cells instead of `O(W² · S̄)` and is what makes bisection solvers
    /// over wide brackets (up to micrometre widths) tractable.
    ///
    /// # Errors
    ///
    /// Propagates [`RenewalCount::distribution`] errors; additionally rejects
    /// `pf` outside `[0, 1]`.
    pub fn failure_probability(&self, width: f64, pf: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&pf) {
            return Err(StatsError::InvalidParameter {
                name: "pf",
                value: pf,
                constraint: "must be in [0, 1]",
            });
        }
        match self.model {
            CountModel::Convolution { step } if width.is_finite() && width > 0.0 => {
                self.failure_probability_conv(width, pf, step)
            }
            CountModel::GaussianSum if width.is_finite() && width > 0.0 => {
                self.failure_probability_clt_memo(width, pf)
            }
            CountModel::MonteCarlo { trials, seed } if width.is_finite() && width > 0.0 => {
                if trials == 0 {
                    return Err(StatsError::InvalidParameter {
                        name: "trials",
                        value: 0.0,
                        constraint: "must be >= 1",
                    });
                }
                let sampler = self.failure_sampler(width, pf)?;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut acc = 0.0;
                for _ in 0..trials {
                    acc += sampler.sample_tail(&mut rng);
                }
                Ok(sampler.estimate_from_tail_mean(acc / f64::from(trials)))
            }
            _ => Ok(self.distribution(width)?.pgf(pf)),
        }
    }

    /// Direct PGF evaluation for the convolution back-end.
    ///
    /// Decompose Eq. (2.2) by the position of the *last* CNT inside the
    /// region:
    ///
    /// ```text
    /// pF(W) = P{first gap > W}
    ///       + Σ_x u(x) · P{pitch > W − x},
    /// u(x)  = pf·f_first(x) + pf·(u ∗ f_pitch)(x)
    /// ```
    ///
    /// where `u(x)` is the pf-weighted renewal density
    /// `Σ_{n≥1} pf^n f_{T_n}(x)`, computed by one forward sweep of the
    /// renewal equation on a grid of pitch `step`. Every term is
    /// non-negative, so unlike the naive `1 − (1/pf − 1)·Σ pf^m S(m)`
    /// rearrangement there is no catastrophic cancellation, and deep-tail
    /// values (`1e-9` and below) come out at full double precision.
    ///
    /// Since PR 7 the sweep state is cached: the pitch kernel, first-gap
    /// masses, and renewal density `u` are all *width-independent*, so they
    /// live in a thread-local [`ConvPlan`] keyed on (pitch, pf, step,
    /// start) and are extended incrementally to the largest width seen.
    /// Only the `p_empty` quadrature and the final tail sum are per-width.
    /// Results are bit-identical to the single-shot sweep (kept as
    /// [`RenewalCount::failure_probability_conv_reference`] and enforced by
    /// property tests): extension appends the exact same values, and the
    /// tail sum skips only terms whose pitch survivor is exactly `0.0`.
    fn failure_probability_conv(&self, width: f64, pf: f64, step: f64) -> Result<f64> {
        if !(step.is_finite() && step > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "step",
                value: step,
                constraint: "must be finite and > 0",
            });
        }
        CONV_PLANS.with(|cell| {
            let cache = &mut *cell.borrow_mut();
            let idx = self.conv_plan_index(cache, pf, step)?;
            self.conv_eval(&mut cache.plans[idx], width, pf, step)
        })
    }

    /// Find (or build) the cached sweep plan for this (pitch, pf, step,
    /// start) and return its index in the thread-local cache.
    fn conv_plan_index(&self, cache: &mut ConvCache, pf: f64, step: f64) -> Result<usize> {
        let key = ConvPlanKey {
            parent_mean: self.pitch.parent_mean().to_bits(),
            parent_sd: self.pitch.parent_sd().to_bits(),
            lo: self.pitch.lo().to_bits(),
            hi: self.pitch.hi().to_bits(),
            pf: pf.to_bits(),
            step: step.to_bits(),
            start: self.start,
        };
        cache.stamp += 1;
        let stamp = cache.stamp;
        if let Some(i) = cache.plans.iter().position(|p| p.key == key) {
            cache.plans[i].stamp = stamp;
            return Ok(i);
        }

        // Pitch kernel on the integer grid: bin j covers ((j−½)h, (j+½)h],
        // mass from the exact CDF — the exact loop of the reference sweep.
        let h = step;
        let mean = self.pitch.mean();
        let sd = self.pitch.std_dev();
        let support_hi = (mean + 10.0 * sd).min(self.pitch.hi());
        let kbins = ((support_hi / h).ceil() as usize).max(1) + 1;
        let mut kernel = Vec::with_capacity(kbins);
        let mut prev = self.pitch.cdf(0.0);
        for j in 0..kbins {
            let c = self.pitch.cdf((j as f64 + 0.5) * h);
            kernel.push((c - prev).max(0.0));
            prev = c;
        }
        let resid: f64 = 1.0 - kernel.iter().sum::<f64>();
        if let Some(last) = kernel.last_mut() {
            *last += resid.max(0.0);
        }
        let k0 = pf * kernel[0];
        if k0 >= 1.0 {
            return Err(StatsError::NoConvergence(
                "failure_probability_conv: grid step too coarse for pitch scale",
            ));
        }
        let krev: Vec<f64> = kernel.iter().rev().copied().collect();

        if cache.plans.len() >= CONV_PLAN_CAP {
            // Evict the least-recently-used plan; a handful of (pitch, pf)
            // pairs are live at once in every real workload.
            if let Some(evict) = cache
                .plans
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.stamp)
                .map(|(i, _)| i)
            {
                cache.plans.swap_remove(evict);
            }
        }
        let fe_s_prev = 1.0 - self.pitch.cdf(0.0);
        cache.plans.push(ConvPlan {
            key,
            kernel,
            krev,
            k0,
            fe: Vec::new(),
            fe_s_prev,
            u: Vec::new(),
            results: FastMap::default(),
            stamp,
        });
        Ok(cache.plans.len() - 1)
    }

    /// Evaluate one width against a prepared plan, extending the cached
    /// first-gap masses and renewal density as needed.
    fn conv_eval(&self, plan: &mut ConvPlan, width: f64, pf: f64, step: f64) -> Result<f64> {
        if let Some(&r) = plan.results.get(&width.to_bits()) {
            return Ok(r);
        }
        let h = step;
        let mean = self.pitch.mean();
        let wbins = (width / h).round() as usize;

        // Equilibrium first-gap mass per bin (stationary start only). Each
        // bin value depends only on its index, and the resumable `fe_s_prev`
        // survivor makes appended values bit-identical to a fresh build.
        if self.start == StartPolicy::Stationary {
            while plan.fe.len() <= wbins {
                let j = plan.fe.len();
                let lo_edge = (j as f64 - 0.5) * h;
                let hi_edge = (j as f64 + 0.5) * h;
                let s_hi = 1.0 - self.pitch.cdf(hi_edge);
                let bin_w = hi_edge - lo_edge.max(0.0);
                plan.fe
                    .push((bin_w * 0.5 * (plan.fe_s_prev + s_hi) / mean).max(0.0));
                plan.fe_s_prev = s_hi;
            }
        }

        // Forward renewal sweep, resumed from the cached prefix. The inner
        // dot product walks `u` forward against the reversed kernel in
        // fixed-size chunks with one sequential accumulator — the identical
        // term order as `for i { acc += u[i] * kernel[j - i] }`, with the
        // bounds checks hoisted into the two slice takes.
        let klen = plan.kernel.len();
        while plan.u.len() <= wbins {
            let j = plan.u.len();
            let mut acc = match self.start {
                StartPolicy::Ordinary => plan.kernel.get(j).copied().unwrap_or(0.0),
                StartPolicy::Stationary => plan.fe[j],
            };
            let i_lo = j.saturating_sub(klen - 1);
            let useg = &plan.u[i_lo..j];
            let kseg = &plan.krev[klen - 1 - (j - i_lo)..klen - 1];
            let mut uc = useg.chunks_exact(CONV_CHUNK);
            let mut kc = kseg.chunks_exact(CONV_CHUNK);
            for (ub, kb) in (&mut uc).zip(&mut kc) {
                for t in 0..CONV_CHUNK {
                    acc += ub[t] * kb[t];
                }
            }
            for (ui, ki) in uc.remainder().iter().zip(kc.remainder()) {
                acc += ui * ki;
            }
            plan.u.push(pf * acc / (1.0 - plan.k0));
        }

        // Exact no-CNT term — per-width, identical to the reference.
        let p_empty = match self.start {
            StartPolicy::Ordinary => 1.0 - self.pitch.cdf(width),
            StartPolicy::Stationary => {
                let mut tail = 0.0;
                let mut x = width;
                let mut s_lo = 1.0 - self.pitch.cdf(x);
                while s_lo > 0.0 && x < self.pitch.hi() {
                    let s_hi = 1.0 - self.pitch.cdf(x + h);
                    tail += 0.5 * (s_lo + s_hi) * h / mean;
                    x += h;
                    s_lo = s_hi;
                }
                tail
            }
        };

        // Tail sum over the pitch survivor. For j far below wbins the
        // argument `width − j·h` is deep past the pitch support and the
        // survivor is *exactly* 0.0; those terms contribute `u[j]·0.0 = +0.0`
        // in the reference (which starts from `p_empty ≥ +0.0`), so skipping
        // them is bit-exact. The survivor rises monotonically with j, so the
        // zero prefix ends at a single boundary found by bisection and then
        // verified by walking it down.
        let surv = |j: usize| 1.0 - self.pitch.cdf(width - j as f64 * h);
        let mut j0 = 0usize;
        if wbins > 0 && surv(0) == 0.0 {
            if surv(wbins) == 0.0 {
                j0 = wbins;
            } else {
                let (mut lo, mut hi) = (0usize, wbins);
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if surv(mid) == 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                j0 = hi;
            }
            while j0 > 0 && surv(j0 - 1) > 0.0 {
                j0 -= 1;
            }
        }
        let mut p_fail = p_empty;
        for (dj, &uj) in plan.u[j0..=wbins].iter().enumerate() {
            if uj > 0.0 {
                p_fail += uj * surv(j0 + dj);
            }
        }
        let r = p_fail.clamp(0.0, 1.0);
        if plan.results.len() >= CONV_RESULT_CAP {
            plan.results.clear();
        }
        plan.results.insert(width.to_bits(), r);
        Ok(r)
    }

    /// The pre-PR-7 single-shot convolution sweep, kept verbatim as the
    /// bit-identity oracle for the plan-cached fast path. Every value the
    /// cached path returns must equal this one bit-for-bit (enforced by the
    /// crate's property tests). Not part of the supported API.
    #[doc(hidden)]
    pub fn failure_probability_conv_reference(
        &self,
        width: f64,
        pf: f64,
        step: f64,
    ) -> Result<f64> {
        if !(step.is_finite() && step > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "step",
                value: step,
                constraint: "must be finite and > 0",
            });
        }
        let h = step;
        let mean = self.pitch.mean();
        let sd = self.pitch.std_dev();
        let support_hi = (mean + 10.0 * sd).min(self.pitch.hi());

        // Pitch kernel on the integer grid: bin j covers
        // ((j−½)h, (j+½)h], mass from the exact CDF.
        let kbins = ((support_hi / h).ceil() as usize).max(1) + 1;
        let mut kernel = Vec::with_capacity(kbins);
        let mut prev = self.pitch.cdf(0.0);
        for j in 0..kbins {
            let c = self.pitch.cdf((j as f64 + 0.5) * h);
            kernel.push((c - prev).max(0.0));
            prev = c;
        }
        let resid: f64 = 1.0 - kernel.iter().sum::<f64>();
        if let Some(last) = kernel.last_mut() {
            *last += resid.max(0.0);
        }

        let wbins = (width / h).round() as usize;

        // First-gap mass per grid bin and the exact no-CNT term.
        let (first, p_empty): (Vec<f64>, f64) = match self.start {
            StartPolicy::Ordinary => {
                let first: Vec<f64> = kernel.iter().copied().take(wbins + 1).collect();
                (first, 1.0 - self.pitch.cdf(width))
            }
            StartPolicy::Stationary => {
                // Equilibrium density f_e(x) = (1 − F(x))/S̄, integrated per
                // bin by the trapezoid rule on the exact CDF.
                let nb = wbins + 1;
                let mut fe = Vec::with_capacity(nb);
                let mut s_prev = 1.0 - self.pitch.cdf(0.0);
                for j in 0..nb {
                    let lo_edge = (j as f64 - 0.5) * h;
                    let hi_edge = (j as f64 + 0.5) * h;
                    let s_hi = 1.0 - self.pitch.cdf(hi_edge);
                    let bin_w = hi_edge - lo_edge.max(0.0);
                    let m = (bin_w * 0.5 * (s_prev + s_hi) / mean).max(0.0);
                    fe.push(m);
                    s_prev = s_hi;
                }
                // P{first gap > W} = ∫_W^∞ (1 − F)/S̄ — summed directly as a
                // positive-term tail integral. The obvious `1 − Σ fe`
                // rearrangement cancels catastrophically and floors deep-tail
                // values (≲ 1e-7) to exactly 0, which would break the pf → 0
                // corner where p_empty dominates pF.
                let mut tail = 0.0;
                let mut x = width;
                let mut s_lo = 1.0 - self.pitch.cdf(x);
                while s_lo > 0.0 && x < self.pitch.hi() {
                    let s_hi = 1.0 - self.pitch.cdf(x + h);
                    tail += 0.5 * (s_lo + s_hi) * h / mean;
                    x += h;
                    s_lo = s_hi;
                }
                (fe, tail)
            }
        };

        // Forward renewal sweep: u[j] depends on u[0..j] and kernel[0]
        // (the sub-half-step mass) on itself.
        let k0 = pf * kernel[0];
        if k0 >= 1.0 {
            return Err(StatsError::NoConvergence(
                "failure_probability_conv: grid step too coarse for pitch scale",
            ));
        }
        let mut u = vec![0.0_f64; wbins + 1];
        for j in 0..=wbins {
            let mut acc = first.get(j).copied().unwrap_or(0.0);
            let i_lo = j.saturating_sub(kernel.len() - 1);
            for i in i_lo..j {
                acc += u[i] * kernel[j - i];
            }
            u[j] = pf * acc / (1.0 - k0);
        }

        // Tail survivor of the pitch, from the exact CDF.
        let mut p_fail = p_empty;
        for (j, &uj) in u.iter().enumerate() {
            if uj > 0.0 {
                p_fail += uj * (1.0 - self.pitch.cdf(width - j as f64 * h));
            }
        }
        Ok(p_fail.clamp(0.0, 1.0))
    }

    /// Memoized CLT PGF: `distribution(width)?.pgf(pf)` is a pure function
    /// of (pitch, start, width, pf), so its value is cached thread-locally.
    /// The distribution build is O(width/S̄) survival evaluations; repeat
    /// queries (service caches cold-started per request, co-opt grids
    /// revisiting knob points) become a map lookup.
    fn failure_probability_clt_memo(&self, width: f64, pf: f64) -> Result<f64> {
        /// Full identity of one CLT evaluation: pitch parameters, width,
        /// `pf`, and the start policy, all as bit patterns.
        type CltKey = (u64, u64, u64, u64, u64, u64, u8);
        thread_local! {
            static CLT_RESULTS: RefCell<FastMap<CltKey, f64>> = RefCell::new(FastMap::default());
        }
        let key = (
            self.pitch.parent_mean().to_bits(),
            self.pitch.parent_sd().to_bits(),
            self.pitch.lo().to_bits(),
            self.pitch.hi().to_bits(),
            width.to_bits(),
            pf.to_bits(),
            self.start as u8,
        );
        if let Some(hit) = CLT_RESULTS.with(|m| m.borrow().get(&key).copied()) {
            return Ok(hit);
        }
        let p = self.distribution(width)?.pgf(pf);
        CLT_RESULTS.with(|m| {
            let mut m = m.borrow_mut();
            if m.len() >= CONV_RESULT_CAP {
                m.clear();
            }
            m.insert(key, p);
        });
        Ok(p)
    }

    /// Batch twin of [`RenewalCount::failure_probability`]: evaluate
    /// `pF(W) = E[pf^N(W)]` for many widths in one call.
    ///
    /// Results are element-wise **bit-identical** to calling
    /// [`RenewalCount::failure_probability`] per width — batching never
    /// changes answers, it only amortizes setup. For the
    /// [`CountModel::Convolution`] back-end the per-(pitch, pf, step) sweep
    /// state (pitch kernel, first-gap masses, renewal density) is built once
    /// and extended to the largest width in the batch, so a `W_min`
    /// bisection or a sweep issues O(1) kernel sweeps instead of
    /// O(widths) — see [`RenewalCount::failure_probabilities_conv`].
    ///
    /// # Errors
    ///
    /// Same per-element errors as [`RenewalCount::failure_probability`];
    /// the first failing width aborts the batch.
    pub fn failure_probabilities(&self, widths: &[f64], pf: f64) -> Result<Vec<f64>> {
        widths
            .iter()
            .map(|&w| self.failure_probability(w, pf))
            .collect()
    }

    /// Batch entry point for the convolution sweep with an explicit grid
    /// `step`, independent of the configured [`CountModel`].
    ///
    /// Bit-identical to evaluating each width through a
    /// `CountModel::Convolution { step }` back-end one at a time; the
    /// cached sweep plan makes the marginal cost of an extra width one
    /// `p_empty` quadrature plus one tail sum over the pitch support.
    ///
    /// # Errors
    ///
    /// Rejects `pf` outside `[0, 1]`, a non-positive or non-finite `step`,
    /// and any width that is not finite and `> 0`.
    pub fn failure_probabilities_conv(
        &self,
        widths: &[f64],
        pf: f64,
        step: f64,
    ) -> Result<Vec<f64>> {
        if !(0.0..=1.0).contains(&pf) {
            return Err(StatsError::InvalidParameter {
                name: "pf",
                value: pf,
                constraint: "must be in [0, 1]",
            });
        }
        widths
            .iter()
            .map(|&w| {
                if !(w.is_finite() && w > 0.0) {
                    return Err(StatsError::InvalidParameter {
                        name: "width",
                        value: w,
                        constraint: "must be finite and > 0",
                    });
                }
                self.failure_probability_conv(w, pf, step)
            })
            .collect()
    }

    /// Mean and variance of the first-gap distribution for this policy.
    fn first_gap_moments(&self) -> (f64, f64) {
        let m = self.pitch.mean();
        let v = self.pitch.variance();
        match self.start {
            StartPolicy::Ordinary => (m, v),
            StartPolicy::Stationary => {
                // Equilibrium distribution: f_e(x) = (1 − F(x)) / m.
                // E[X_e] = E[X²]/(2m), E[X_e²] = E[X³]/(3m).
                let m2 = v + m * m;
                let m3 = numeric_raw_moment(&self.pitch, 3);
                let me = m2 / (2.0 * m);
                let ve = (m3 / (3.0 * m) - me * me).max(0.0);
                (me, ve)
            }
        }
    }

    fn distribution_clt(&self, width: f64) -> Result<CountDistribution> {
        let m = self.pitch.mean();
        let v = self.pitch.variance();
        let (me, ve) = self.first_gap_moments();

        // Survival S(n) = P(N >= n) = P(T_n <= width), where
        // T_n = first_gap + (n-1) pitches.
        let survival = |n: usize| -> f64 {
            debug_assert!(n >= 1);
            let k = (n - 1) as f64;
            let mean = me + k * m;
            let var = ve + k * v;
            if var <= 0.0 {
                return if width >= mean { 1.0 } else { 0.0 };
            }
            normal_cdf((width - mean) / var.sqrt())
        };

        let n_typ = (width / m).ceil() as usize + 2;
        let n_cap = 4 * n_typ + 64;
        let mut surv = Vec::with_capacity(n_typ * 2);
        surv.push(1.0); // S(0) = 1
        for n in 1..=n_cap {
            let s = survival(n);
            surv.push(s);
            if s < 1e-16 && n > n_typ {
                break;
            }
        }
        let mut pmf = Vec::with_capacity(surv.len());
        for n in 0..surv.len() {
            let hi = surv.get(n + 1).copied().unwrap_or(0.0);
            pmf.push((surv[n] - hi).max(0.0));
        }
        CountDistribution::from_pmf(pmf, width)
    }

    fn distribution_conv(&self, width: f64, step: f64) -> Result<CountDistribution> {
        if !(step.is_finite() && step > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "step",
                value: step,
                constraint: "must be finite and > 0",
            });
        }
        // Discretize the pitch density: mass of bin i is F((i+1)h) − F(ih),
        // value represented at the midpoint (i + 0.5)·h. After summing n
        // variables the represented value of index j is (j + n/2)·h.
        let h = step;
        let mean = self.pitch.mean();
        let sd = self.pitch.std_dev();
        let support_hi = (mean + 10.0 * sd).min(self.pitch.hi());
        let kbins = ((support_hi / h).ceil() as usize).max(1);
        let mut kernel = Vec::with_capacity(kbins);
        let mut prev = self.pitch.cdf(0.0);
        for i in 0..kbins {
            let c = self.pitch.cdf((i as f64 + 1.0) * h);
            kernel.push((c - prev).max(0.0));
            prev = c;
        }
        // Fold any residual tail mass into the last bin so the kernel sums
        // to exactly 1 (otherwise counts are biased upward).
        let resid: f64 = 1.0 - kernel.iter().sum::<f64>();
        if let Some(last) = kernel.last_mut() {
            *last += resid.max(0.0);
        }

        // First-gap vector.
        let first: Vec<f64> = match self.start {
            StartPolicy::Ordinary => kernel.clone(),
            StartPolicy::Stationary => {
                // f_e(x) = (1 − F(x))/m; discretize on the same grid until
                // the survival is negligible or the width is covered.
                let nb = (((width + support_hi) / h).ceil() as usize).max(1);
                let mut fe = Vec::with_capacity(nb);
                for i in 0..nb {
                    let x = (i as f64 + 0.5) * h;
                    let s = 1.0 - self.pitch.cdf(x);
                    if s < 1e-15 && (i as f64 * h) > mean {
                        break;
                    }
                    fe.push(s * h / mean);
                }
                let total: f64 = fe.iter().sum();
                // Normalize the discretization residue.
                if total > 0.0 {
                    for p in &mut fe {
                        *p /= total;
                    }
                }
                fe
            }
        };

        let wbins = (width / h).floor() as isize;
        // Index limit for "value ≤ width" after n summands: j ≤ width/h − n/2.
        let limit = |n: usize| -> isize { wbins - (n as isize) / 2 - (n as isize % 2) };

        // s holds the sub-density of T_n restricted to ≤ width.
        let lim1 = limit(1);
        let mut s: Vec<f64> = first
            .iter()
            .copied()
            .take((lim1.max(-1) + 1) as usize)
            .collect();
        let mut surv = vec![1.0_f64]; // S(0)
        surv.push(s.iter().sum::<f64>());

        let n_typ = (width / mean).ceil() as usize + 2;
        let n_cap = 4 * n_typ + 64;
        for n in 2..=n_cap {
            let lim = limit(n);
            if lim < 0 || s.is_empty() {
                surv.push(0.0);
                break;
            }
            let out_len = ((lim + 1) as usize).min(s.len() + kernel.len() - 1);
            let mut next = vec![0.0_f64; out_len];
            for (i, &si) in s.iter().enumerate() {
                if si == 0.0 {
                    continue;
                }
                let jmax = out_len.saturating_sub(i).min(kernel.len());
                for (j, &kj) in kernel.iter().enumerate().take(jmax) {
                    next[i + j] += si * kj;
                }
            }
            let total: f64 = next.iter().sum();
            surv.push(total);
            s = next;
            if total < 1e-16 && n > n_typ {
                break;
            }
        }

        let mut pmf = Vec::with_capacity(surv.len());
        for n in 0..surv.len() {
            let hi = surv.get(n + 1).copied().unwrap_or(0.0);
            pmf.push((surv[n] - hi).max(0.0));
        }
        CountDistribution::from_pmf(pmf, width)
    }

    fn distribution_mc(&self, width: f64, trials: u32, seed: u64) -> Result<CountDistribution> {
        if trials == 0 {
            return Err(StatsError::InvalidParameter {
                name: "trials",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts: Vec<u64> = Vec::new();
        for _ in 0..trials {
            let mut pos = self.sample_first_gap(&mut rng);
            let mut n = 0usize;
            while pos <= width {
                n += 1;
                pos += self.pitch.sample(&mut rng);
                if n > 1_000_000 {
                    return Err(StatsError::NoConvergence("renewal MC count overflow"));
                }
            }
            if n >= counts.len() {
                counts.resize(n + 1, 0);
            }
            counts[n] += 1;
        }
        let pmf: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
        CountDistribution::from_pmf(pmf, width)
    }

    /// Sample the first gap according to the start policy.
    pub fn sample_first_gap(&self, mut rng: &mut (impl Rng + ?Sized)) -> f64 {
        match self.start {
            StartPolicy::Ordinary => self.pitch.sample(&mut rng),
            StartPolicy::Stationary => {
                // Equilibrium draw via the inspection paradox: pick a
                // length-biased pitch (rejection against an upper envelope),
                // then a uniform position inside it.
                let cap = self.pitch.mean() + 10.0 * self.pitch.std_dev();
                loop {
                    let x = self.pitch.sample(&mut rng);
                    let accept: f64 = rng.gen();
                    if accept < (x / cap).min(1.0) {
                        return rng.gen::<f64>() * x;
                    }
                }
            }
        }
    }

    /// Exact probability that the first gap exceeds `width` — equivalently,
    /// `Prob{N(width) = 0}`, the zero-count stratum of the count
    /// distribution.
    ///
    /// Computed from the pitch CDF alone (closed form for
    /// [`StartPolicy::Ordinary`]; a positive-term tail quadrature of the
    /// equilibrium survival for [`StartPolicy::Stationary`]), so deep-tail
    /// values far below 1e-9 come out at full precision instead of
    /// cancelling to zero.
    ///
    /// # Errors
    ///
    /// Rejects a negative or non-finite `width`.
    pub fn first_gap_survival(&self, width: f64) -> Result<f64> {
        if !(width.is_finite() && width >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and >= 0",
            });
        }
        match self.start {
            StartPolicy::Ordinary => Ok((1.0 - self.pitch.cdf(width)).clamp(0.0, 1.0)),
            StartPolicy::Stationary => {
                // P{G_e > W} = ∫_W^∞ (1 − F(x))/S̄ dx, summed as a
                // positive-term trapezoid on the exact CDF (same scheme as
                // the convolution back-end's `p_empty`).
                let mean = self.pitch.mean();
                let h = (self.pitch.std_dev() / 32.0).clamp(1e-4, mean / 8.0);
                let mut tail = 0.0;
                let mut x = width;
                let mut s_lo = 1.0 - self.pitch.cdf(x);
                while s_lo > 0.0 && x < self.pitch.hi() {
                    let s_hi = 1.0 - self.pitch.cdf(x + h);
                    tail += 0.5 * (s_lo + s_hi) * h / mean;
                    x += h;
                    s_lo = s_hi;
                }
                Ok(tail.clamp(0.0, 1.0))
            }
        }
    }

    /// Sample the first gap *conditioned on it falling inside the region*
    /// (`G ≤ width`) — the complement of the [`Self::first_gap_survival`]
    /// stratum.
    ///
    /// [`StartPolicy::Ordinary`] uses exact inverse-CDF sampling of the
    /// truncated pitch; [`StartPolicy::Stationary`] rejects equilibrium
    /// draws (the acceptance probability is `1 − p_empty`, which is ≈ 1
    /// for any region wider than a couple of pitches).
    pub fn sample_first_gap_within(&self, width: f64, mut rng: &mut (impl Rng + ?Sized)) -> f64 {
        match self.start {
            StartPolicy::Ordinary => {
                let mass = self.pitch.cdf(width).max(1e-300);
                let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
                self.pitch.quantile((u * mass).min(1.0 - 1e-16)).min(width)
            }
            StartPolicy::Stationary => {
                for _ in 0..100_000 {
                    let g = self.sample_first_gap(&mut rng);
                    if g <= width {
                        return g;
                    }
                }
                // Statistically unreachable unless p_empty ≈ 1; fall back to
                // a uniform position so callers never loop forever.
                rng.gen::<f64>() * width
            }
        }
    }

    /// Build a deep-tail Monte-Carlo sampler for `pF(width) = E[pf^N]`.
    ///
    /// See [`FailureSampler`] for the estimator design (exact zero-count
    /// stratum + exponentially tilted importance sampling of the tail).
    ///
    /// # Errors
    ///
    /// Rejects invalid `width`/`pf` and propagates tilt-construction
    /// failures.
    pub fn failure_sampler(&self, width: f64, pf: f64) -> Result<FailureSampler> {
        if !(width.is_finite() && width > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "width",
                value: width,
                constraint: "must be finite and > 0",
            });
        }
        if !(0.0..=1.0).contains(&pf) {
            return Err(StatsError::InvalidParameter {
                name: "pf",
                value: pf,
                constraint: "must be in [0, 1]",
            });
        }
        let p_empty = self.first_gap_survival(width)?;

        // Cramér/Siegmund exponential change of measure: choose θ* with
        // pf·M(θ*) = 1, so each CNT contributes the weight
        // pf·M(θ*)·e^{−θ*x} and a whole trial collapses to e^{−θ*·T}
        // with T the first-passage sum. Sample values are then bounded
        // above by e^{−θ*·span} — no heavy-tailed likelihood ratios — and
        // the relative variance is width-independent, which is what keeps
        // `W_min` bisections over micrometre brackets convergent.
        let theta = if pf > 0.0 && pf < 1.0 {
            solve_tilt(&self.pitch, -pf.ln())?
        } else {
            0.0
        };
        let (tilt, ln_m) = self.pitch.tilted(theta)?;
        // Constants of the per-trial inner loop, hoisted out of it. Each is
        // the exact expression the loop used to evaluate, so hoisting
        // changes no bits.
        let ln_pf_m = pf.ln() + ln_m;
        let gap_cap = self.pitch.mean() + 10.0 * self.pitch.std_dev();
        let gap_mass = self.pitch.cdf(width).max(1e-300);
        Ok(FailureSampler {
            renewal: self.clone(),
            width,
            pf,
            p_empty,
            tilt,
            theta,
            ln_m,
            ln_pf_m,
            gap_cap,
            gap_mass,
        })
    }
}

/// Chunk width of the renewal sweep's inner dot product. The chunks are
/// consumed with one sequential accumulator, so chunking changes no
/// arithmetic — it only lets the compiler drop bounds checks and unroll.
const CONV_CHUNK: usize = 64;

/// Max cached sweep plans per thread (distinct (pitch, pf, step, start)).
const CONV_PLAN_CAP: usize = 8;

/// Max memoized per-width results per plan before the memo is reset.
const CONV_RESULT_CAP: usize = 16_384;

/// Identity of a convolution sweep plan — bit patterns, so "same inputs"
/// means exactly the f64s the sweep arithmetic consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConvPlanKey {
    parent_mean: u64,
    parent_sd: u64,
    lo: u64,
    hi: u64,
    pf: u64,
    step: u64,
    start: StartPolicy,
}

/// Width-independent sweep state, extended incrementally as wider gates
/// are queried, plus a per-width result memo.
#[derive(Debug)]
struct ConvPlan {
    key: ConvPlanKey,
    /// Pitch mass per grid bin.
    kernel: Vec<f64>,
    /// `kernel` reversed, so the renewal dot product walks two forward
    /// slices (bounds checks hoist; term order unchanged).
    krev: Vec<f64>,
    /// `pf · kernel[0]` — the implicit same-bin term of the sweep.
    k0: f64,
    /// Equilibrium first-gap mass per bin (stationary start only).
    fe: Vec<f64>,
    /// Survivor at the last computed `fe` bin edge, so extension resumes
    /// the trapezoid exactly where a fresh build would be.
    fe_s_prev: f64,
    /// pf-weighted renewal density `u[j]`.
    u: Vec<f64>,
    /// Finished `width.to_bits() → pF` results.
    results: FastMap<u64, f64>,
    /// LRU stamp.
    stamp: u64,
}

#[derive(Debug, Default)]
struct ConvCache {
    plans: Vec<ConvPlan>,
    stamp: u64,
}

thread_local! {
    /// Per-thread sweep-plan cache. Thread-local instead of shared: the
    /// sweeps are deterministic pure functions, so per-thread duplicates
    /// cost only memory, never coherence or lock traffic on the hot path.
    static CONV_PLANS: RefCell<ConvCache> = RefCell::new(ConvCache::default());
}

/// Find `θ ≥ 0` such that `ln M(θ) = target` (`M` is the pitch MGF;
/// `ln M` is 0 at 0 and strictly increasing for `θ > 0`, so bisection
/// after exponential bracket growth is exact).
fn solve_tilt(pitch: &TruncatedGaussian, target: f64) -> Result<f64> {
    if target <= 0.0 {
        return Ok(0.0);
    }
    let sd = pitch.parent_sd();
    let mut hi = 1.0 / sd.max(1e-9);
    for _ in 0..200 {
        let (_, ln_m) = pitch.tilted(hi)?;
        if ln_m >= target {
            break;
        }
        hi *= 2.0;
    }
    let (mut lo, mut hi) = (0.0, hi);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let (_, ln_m) = pitch.tilted(mid)?;
        if ln_m < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Stratified, importance-sampled Monte-Carlo estimator of the failure
/// probability `pF(W) = E[pf^{N(W)}]` — the stochastic twin of the analytic
/// back-ends, engineered so rare-event targets (1e-9 and below) converge in
/// thousands of trials instead of `1/pF`:
///
/// * **Zero-count stratum, exact.** `Prob{N = 0} = Prob{first gap > W}` is
///   computed analytically ([`RenewalCount::first_gap_survival`]) and
///   contributes `pf⁰ = 1` deterministically. Only the `N ≥ 1` tail is
///   sampled, so corners with `pf = 0` (all-semiconducting) converge with
///   zero variance instead of stalling on an unobservable ~1e-300 event.
/// * **Exponentially tilted tail.** Conditioned on `G ≤ W`, the remaining
///   pitches are drawn from the tilted density `f(x)e^{θx}/M(θ)`
///   ([`TruncatedGaussian::tilted`]) at the Cramér root `pf·M(θ) = 1`,
///   and each trial is re-weighted by the exact likelihood ratio
///   `M(θ)^{n+1}·e^{−θT}`. At that root a trial's value collapses to
///   `e^{−θT} ≤ e^{−θ·span}`: bounded, light-tailed, with
///   width-independent relative variance. Unbiased for every `θ`; the
///   choice only buys variance.
///
/// A sampler is immutable and `Sync`: one instance can serve every worker
/// thread of an adaptive run, each with its own RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureSampler {
    renewal: RenewalCount,
    width: f64,
    pf: f64,
    p_empty: f64,
    tilt: TruncatedGaussian,
    theta: f64,
    ln_m: f64,
    /// Hoisted `pf.ln() + ln_m` — the per-CNT log-weight of a trial.
    ln_pf_m: f64,
    /// Hoisted rejection envelope `mean + 10σ` of the equilibrium
    /// first-gap draw (stationary start).
    gap_cap: f64,
    /// Hoisted conditional first-gap mass `F(width)` (ordinary start).
    gap_mass: f64,
}

impl FailureSampler {
    /// The exact zero-count stratum probability `Prob{N(W) = 0}`.
    pub fn p_empty(&self) -> f64 {
        self.p_empty
    }

    /// The sampled stratum's weight `Prob{N ≥ 1} = 1 − p_empty`.
    pub fn tail_weight(&self) -> f64 {
        1.0 - self.p_empty
    }

    /// The tilt parameter in use (0 when `pf ∈ {0, 1}` — no tilt needed).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The gate width this sampler estimates `pF` for (nm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// One unbiased sample of `E[pf^N | N ≥ 1]`: draw the first gap from
    /// its conditional distribution, grow tilted pitches until the region
    /// is crossed, and return `pf^{1+n}` times the likelihood ratio.
    ///
    /// The loop consumes the RNG stream in exactly the same order as it
    /// always has (first-gap uniforms, then one uniform per tilted draw),
    /// and every operation is the same f64 expression — the PR 7 speedups
    /// here are monomorphized sampling (no `dyn RngCore` round trip per
    /// uniform) and hoisted per-trial constants, both bit-preserving.
    pub fn sample_tail(&self, mut rng: &mut (impl Rng + ?Sized)) -> f64 {
        if self.pf == 0.0 {
            return 0.0;
        }
        let g = self.sample_first_gap_within_fast(&mut rng);
        let span = self.width - g;
        let mut t = 0.0;
        let mut n = 0u64;
        loop {
            let x = self.tilt.sample_fast(&mut rng);
            t += x;
            if t > span || n > 1_000_000 {
                break;
            }
            n += 1;
        }
        // N = 1 + n CNTs, and the trial consumed n + 1 tilted draws with
        // running sum t = T_{n+1}, so the likelihood ratio is
        // M(θ)^{n+1}·e^{−θ·T_{n+1}} and the sample is pf^{n+1}·L.
        let count = n as f64 + 1.0;
        (count * self.ln_pf_m - self.theta * t).exp()
    }

    /// Fill `out` with consecutive [`Self::sample_tail`] draws — the batch
    /// fast path used by the adaptive driver's per-wave buffers.
    ///
    /// Bit-identical to `for v in out { *v = sampler.sample_tail(rng) }`:
    /// the RNG stream is consumed in the same order, trial by trial.
    /// Batching only removes per-trial call overhead from the hot loop.
    pub fn sample_tail_fill(&self, mut rng: &mut (impl Rng + ?Sized), out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.sample_tail(&mut rng);
        }
    }

    /// [`RenewalCount::sample_first_gap_within`] with the per-trial
    /// constants (`gap_cap`, `gap_mass`) pre-computed at sampler build.
    /// Identical draw composition, uniform for uniform.
    fn sample_first_gap_within_fast(&self, mut rng: &mut (impl Rng + ?Sized)) -> f64 {
        match self.renewal.start {
            StartPolicy::Ordinary => {
                let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
                self.renewal
                    .pitch
                    .quantile((u * self.gap_mass).min(1.0 - 1e-16))
                    .min(self.width)
            }
            StartPolicy::Stationary => {
                for _ in 0..100_000 {
                    let g = loop {
                        let x = self.renewal.pitch.sample_fast(&mut rng);
                        let accept: f64 = rng.gen();
                        if accept < (x / self.gap_cap).min(1.0) {
                            break rng.gen::<f64>() * x;
                        }
                    };
                    if g <= self.width {
                        return g;
                    }
                }
                // Statistically unreachable unless p_empty ≈ 1; fall back to
                // a uniform position so callers never loop forever.
                rng.gen::<f64>() * self.width
            }
        }
    }

    /// Combine a mean of [`Self::sample_tail`] values into the full
    /// estimate `p_empty + (1 − p_empty)·tail_mean`, clamped to `[0, 1]`.
    pub fn estimate_from_tail_mean(&self, tail_mean: f64) -> f64 {
        (self.p_empty + self.tail_weight() * tail_mean).clamp(0.0, 1.0)
    }

    /// Serial convenience: estimate `pF` with `trials` tail samples.
    ///
    /// # Errors
    ///
    /// Rejects zero trials.
    pub fn estimate(&self, trials: u32, mut rng: &mut (impl Rng + ?Sized)) -> Result<f64> {
        if trials == 0 {
            return Err(StatsError::InvalidParameter {
                name: "trials",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += self.sample_tail(&mut rng);
        }
        Ok(self.estimate_from_tail_mean(acc / f64::from(trials)))
    }
}

/// Distribution of the CNT count under a gate of a specific width.
///
/// Produced by [`RenewalCount::distribution`]; the PGF method is the paper's
/// Eq. (2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CountDistribution {
    dist: DiscreteDist,
    width: f64,
}

impl CountDistribution {
    /// Build from a raw PMF vector (index = count). Normalizes defensively.
    ///
    /// # Errors
    ///
    /// Returns an error if the PMF is empty or contains invalid mass.
    pub fn from_pmf(pmf: Vec<f64>, width: f64) -> Result<Self> {
        let dist = DiscreteDist::from_weights(&pmf)?;
        Ok(Self { dist, width })
    }

    /// The gate width this distribution was computed for (nm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// `Prob{N = n}`.
    pub fn pmf(&self, n: usize) -> f64 {
        self.dist.pmf(n)
    }

    /// Largest count with non-zero probability.
    pub fn support_max(&self) -> usize {
        self.dist.pmf_slice().len() - 1
    }

    /// Mean CNT count.
    pub fn mean(&self) -> f64 {
        self.dist.mean()
    }

    /// Variance of the CNT count.
    pub fn variance(&self) -> f64 {
        self.dist.variance()
    }

    /// Probability that the region contains no CNT at all.
    pub fn p_empty(&self) -> f64 {
        self.dist.pmf(0)
    }

    /// Probability generating function `E[z^N]` — Eq. (2.2) at `z = pf`.
    pub fn pgf(&self, z: f64) -> f64 {
        self.dist.pgf(z)
    }

    /// Draw a count.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> usize {
        self.dist.sample(rng)
    }

    /// Access the underlying discrete distribution.
    pub fn as_discrete(&self) -> &DiscreteDist {
        &self.dist
    }
}

/// Raw moment `E[X^k]` of a continuous distribution by Simpson quadrature
/// over its effective support.
fn numeric_raw_moment(dist: &TruncatedGaussian, k: u32) -> f64 {
    let lo = dist.lo().max(dist.parent_mean() - 12.0 * dist.parent_sd());
    let hi = dist
        .hi()
        .min(dist.parent_mean() + 12.0 * dist.parent_sd())
        .max(lo + 1e-9);
    let n = 2000usize; // even
    let h = (hi - lo) / n as f64;
    let f = |x: f64| x.powi(k as i32) * dist.pdf(x);
    let mut acc = f(lo) + f(hi);
    for i in 1..n {
        let x = lo + i as f64 * h;
        acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pitch() -> TruncatedGaussian {
        TruncatedGaussian::positive(4.0, 3.3).unwrap()
    }

    #[test]
    fn zero_width_means_zero_count() {
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        let d = rc.distribution(0.0).unwrap();
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.mean(), 0.0);
        // A zero-width CNFET always fails: PGF(pf) = 1.
        assert_eq!(d.pgf(0.5), 1.0);
    }

    #[test]
    fn stationary_mean_count_is_width_over_pitch() {
        // Exact renewal-theory identity: E[N] = W/S̄ under the stationary
        // start, for every W. Check with the convolution back-end.
        let rc = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 });
        let m = rc.pitch().mean();
        for w in [20.0, 60.0, 155.0] {
            let d = rc.distribution(w).unwrap();
            let want = w / m;
            assert!(
                (d.mean() - want).abs() / want < 0.02,
                "W={w}: mean {} want {want}",
                d.mean()
            );
        }
    }

    #[test]
    fn backends_agree_on_moments() {
        let w = 100.0;
        let clt = RenewalCount::new(pitch(), CountModel::GaussianSum)
            .distribution(w)
            .unwrap();
        let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 })
            .distribution(w)
            .unwrap();
        let mc = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 60_000,
                seed: 7,
            },
        )
        .distribution(w)
        .unwrap();
        assert!(
            (clt.mean() - conv.mean()).abs() < 0.5,
            "clt {} vs conv {}",
            clt.mean(),
            conv.mean()
        );
        assert!(
            (mc.mean() - conv.mean()).abs() < 0.3,
            "mc {} vs conv {}",
            mc.mean(),
            conv.mean()
        );
        assert!(
            (mc.variance() - conv.variance()).abs() / conv.variance() < 0.1,
            "mc var {} vs conv var {}",
            mc.variance(),
            conv.variance()
        );
    }

    #[test]
    fn backends_agree_on_pgf_in_the_deep_tail() {
        // The PGF at pf ≈ 0.5 reaches the 1e-7 regime at W = 100 nm; the CLT
        // and the exact convolution should agree within a factor ~2 there,
        // and the convolution result must be insensitive to the grid step.
        let w = 100.0;
        let pf = 0.531;
        let conv_fine = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.01 })
            .failure_probability(w, pf)
            .unwrap();
        let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 })
            .failure_probability(w, pf)
            .unwrap();
        let clt = RenewalCount::new(pitch(), CountModel::GaussianSum)
            .failure_probability(w, pf)
            .unwrap();
        assert!(
            (conv - conv_fine).abs() / conv_fine < 0.05,
            "grid sensitivity: {conv} vs {conv_fine}"
        );
        let ratio = clt / conv_fine;
        assert!(
            (0.3..3.0).contains(&ratio),
            "CLT {clt} vs conv {conv_fine} (ratio {ratio})"
        );
    }

    #[test]
    fn conv_pgf_deep_tail_p_empty_does_not_cancel() {
        // pf = 0 reduces pF to P{N = 0}, which is ~1e-11 at W = 25 nm. The
        // direct sweep must agree with the per-n distribution instead of
        // flooring to 0 through `1 − covered` cancellation.
        let rc = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 });
        for w in [20.0, 25.0] {
            let sweep = rc.failure_probability(w, 0.0).unwrap();
            let exact = rc.distribution(w).unwrap().pgf(0.0);
            assert!(sweep > 0.0, "W={w}: deep-tail p_empty floored to zero");
            assert!(
                (sweep - exact).abs() / exact < 0.05,
                "W={w}: sweep {sweep:.3e} vs distribution {exact:.3e}"
            );
        }
    }

    #[test]
    fn failure_probability_decreases_with_width() {
        let rc = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 });
        let mut last = 1.0;
        for w in [20.0, 40.0, 80.0, 120.0, 160.0] {
            let p = rc.failure_probability(w, 0.531).unwrap();
            assert!(p < last, "pF must fall with W: pF({w}) = {p} >= {last}");
            last = p;
        }
    }

    #[test]
    fn ordinary_start_counts_fewer_cnts_near_zero_width() {
        // With W ≪ S, the stationary start sees a CNT with probability
        // ≈ W/S̄ while the ordinary start must wait a full pitch.
        let w = 1.0;
        let stat = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 40_000,
                seed: 3,
            },
        )
        .distribution(w)
        .unwrap();
        let ord = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 40_000,
                seed: 3,
            },
        )
        .with_start(StartPolicy::Ordinary)
        .distribution(w)
        .unwrap();
        assert!(stat.mean() > 0.0);
        assert!(
            stat.mean() > ord.mean(),
            "stationary {} vs ordinary {}",
            stat.mean(),
            ord.mean()
        );
    }

    #[test]
    fn input_validation() {
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        assert!(rc.distribution(-1.0).is_err());
        assert!(rc.distribution(f64::NAN).is_err());
        assert!(rc.failure_probability(100.0, 1.5).is_err());
        assert!(
            RenewalCount::new(pitch(), CountModel::Convolution { step: 0.0 })
                .distribution(10.0)
                .is_err()
        );
        assert!(
            RenewalCount::new(pitch(), CountModel::MonteCarlo { trials: 0, seed: 0 })
                .distribution(10.0)
                .is_err()
        );
    }

    #[test]
    fn first_gap_survival_matches_distribution_p_empty() {
        let rc = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 });
        for w in [2.0, 8.0, 20.0] {
            let exact = rc.distribution(w).unwrap().p_empty();
            let direct = rc.first_gap_survival(w).unwrap();
            assert!(
                (direct - exact).abs() / exact.max(1e-300) < 0.05,
                "W={w}: survival {direct:.3e} vs distribution {exact:.3e}"
            );
        }
        let ord =
            RenewalCount::new(pitch(), CountModel::GaussianSum).with_start(StartPolicy::Ordinary);
        let w = 6.0;
        assert!((ord.first_gap_survival(w).unwrap() - (1.0 - ord.pitch().cdf(w))).abs() < 1e-12);
        assert!(rc.first_gap_survival(-1.0).is_err());
    }

    #[test]
    fn conditional_first_gap_stays_inside_the_region() {
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        let mut rng = StdRng::seed_from_u64(11);
        for &w in &[1.0, 4.0, 40.0] {
            for _ in 0..500 {
                let g = rc.sample_first_gap_within(w, &mut rng);
                assert!((0.0..=w).contains(&g), "W={w}: gap {g} escaped");
            }
        }
        let ord = rc.with_start(StartPolicy::Ordinary);
        for _ in 0..500 {
            let g = ord.sample_first_gap_within(3.0, &mut rng);
            assert!((0.0..=3.0).contains(&g));
        }
    }

    #[test]
    fn tilted_sampler_matches_convolution_in_the_deep_tail() {
        // pF(103) ≈ 1e-6 and pF(155) ≈ 1e-9 under the paper corner: naive
        // MC would need 1e9+ trials, the tilted sampler percent-level
        // accuracy in 20k.
        let pf = 0.531;
        for w in [103.0, 155.0] {
            let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 })
                .failure_probability(w, pf)
                .unwrap();
            let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
            let sampler = rc.failure_sampler(w, pf).unwrap();
            assert!(sampler.theta() > 0.0, "deep tail must tilt");
            let mut rng = StdRng::seed_from_u64(5);
            let est = sampler.estimate(20_000, &mut rng).unwrap();
            let ratio = est / conv;
            assert!(
                (0.85..1.18).contains(&ratio),
                "W={w}: tilted MC {est:.3e} vs conv {conv:.3e} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn sampler_pf_zero_reduces_to_exact_empty_stratum() {
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        let w = 20.0;
        let sampler = rc.failure_sampler(w, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = sampler.estimate(10, &mut rng).unwrap();
        assert_eq!(est, sampler.p_empty(), "pf = 0 must be variance-free");
        let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 })
            .failure_probability(w, 0.0)
            .unwrap();
        assert!(
            (est - conv).abs() / conv < 0.05,
            "p_empty {est:.3e} vs conv {conv:.3e}"
        );
        // pf = 1 is also exact: every trial contributes exactly 1.
        let one = rc.failure_sampler(w, 1.0).unwrap();
        assert_eq!(one.estimate(10, &mut rng).unwrap(), 1.0);
    }

    #[test]
    fn mc_failure_probability_is_seeded() {
        let w = 60.0;
        let pf = 0.531;
        let a = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 4000,
                seed: 9,
            },
        )
        .failure_probability(w, pf)
        .unwrap();
        let b = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 4000,
                seed: 9,
            },
        )
        .failure_probability(w, pf)
        .unwrap();
        let c = RenewalCount::new(
            pitch(),
            CountModel::MonteCarlo {
                trials: 4000,
                seed: 10,
            },
        )
        .failure_probability(w, pf)
        .unwrap();
        assert_eq!(a, b, "same seed, same estimate");
        assert_ne!(a, c, "different seed, different estimate");
        let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 })
            .failure_probability(w, pf)
            .unwrap();
        assert!(
            (a / conv - 1.0).abs() < 0.25,
            "mc {a:.3e} vs conv {conv:.3e}"
        );
        assert!(
            RenewalCount::new(pitch(), CountModel::MonteCarlo { trials: 0, seed: 0 })
                .failure_probability(w, pf)
                .is_err()
        );
    }

    #[test]
    fn equilibrium_moments_match_theory() {
        // For the equilibrium first gap: E[X_e] = (S̄² + σ²)/(2 S̄).
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        let (me, ve) = rc.first_gap_moments();
        let m = rc.pitch().mean();
        let v = rc.pitch().variance();
        let want = (m * m + v) / (2.0 * m);
        assert!((me - want).abs() < 1e-6, "me {me} want {want}");
        assert!(ve > 0.0);
    }

    #[test]
    fn cached_conv_sweep_is_bit_identical_to_reference() {
        // The plan cache, incremental extension, chunked dot product, and
        // zero-prefix tail skip must not change a single bit vs the
        // single-shot reference sweep — in any query order.
        for start in [StartPolicy::Stationary, StartPolicy::Ordinary] {
            for step in [0.05, 0.11] {
                let rc =
                    RenewalCount::new(pitch(), CountModel::Convolution { step }).with_start(start);
                // Descending then ascending widths: exercises both the
                // extend path and the fully-cached-prefix path.
                for w in [155.0, 60.0, 103.0, 7.3, 900.0, 155.0, 2000.0] {
                    for pfv in [0.0, 0.2, 0.531, 1.0] {
                        let fast = rc.failure_probability(w, pfv).unwrap();
                        let slow = rc.failure_probability_conv_reference(w, pfv, step).unwrap();
                        assert_eq!(
                            fast.to_bits(),
                            slow.to_bits(),
                            "{start:?} step={step} W={w} pf={pfv}: {fast:e} vs {slow:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_entry_points_match_scalar() {
        let rc = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 });
        let widths = [5.0, 60.0, 103.0, 155.0, 2000.0];
        let batch = rc.failure_probabilities(&widths, 0.531).unwrap();
        let conv_batch = rc.failure_probabilities_conv(&widths, 0.531, 0.05).unwrap();
        for (i, &w) in widths.iter().enumerate() {
            let scalar = rc.failure_probability(w, 0.531).unwrap();
            assert_eq!(batch[i].to_bits(), scalar.to_bits());
            assert_eq!(conv_batch[i].to_bits(), scalar.to_bits());
        }
        // Batch validation mirrors the scalar contract.
        assert!(rc.failure_probabilities(&widths, 1.5).is_err());
        assert!(rc.failure_probabilities_conv(&[-1.0], 0.5, 0.05).is_err());
        assert!(rc.failure_probabilities_conv(&widths, 0.5, 0.0).is_err());
    }

    #[test]
    fn sample_tail_fill_matches_scalar_loop() {
        let rc = RenewalCount::new(pitch(), CountModel::GaussianSum);
        for start in [StartPolicy::Stationary, StartPolicy::Ordinary] {
            let sampler = rc
                .clone()
                .with_start(start)
                .failure_sampler(103.0, 0.531)
                .unwrap();
            let mut filled = vec![0.0; 257];
            sampler.sample_tail_fill(&mut StdRng::seed_from_u64(42), &mut filled);
            let mut rng = StdRng::seed_from_u64(42);
            for (i, &v) in filled.iter().enumerate() {
                let s = sampler.sample_tail(&mut rng);
                assert_eq!(v.to_bits(), s.to_bits(), "{start:?} trial {i}");
            }
        }
    }
}
