//! Declarative, seedable stochastic knobs: [`DistSpec`] and [`FieldSpec`].
//!
//! The scenario layer above this crate describes *what* varies — a CNT
//! growth density, a correlation length, a minimum-device fraction — as
//! data, not code. A [`DistSpec`] is the tagged value of one such knob:
//! either a plain scalar (`Fixed`) or one of the workspace's continuous
//! distributions, identified by the canonical kind strings in
//! [`DistSpec::KINDS`]. A [`FieldSpec`] composes a `DistSpec` with a
//! wafer-scale random field — a radial trend plus spatially **correlated**
//! noise — so one spec object describes how a knob varies across an
//! entire wafer.
//!
//! Everything here is deterministic under [`crate::seed::split_seed`]:
//! a [`FieldSampler`] realizes die `d` of wafer seed `s` as a pure
//! function of `(spec, s, d, position)`, so wafer evaluations are
//! byte-identical for any worker count.
//!
//! JSON forms live in `cnfet-pipeline` (where the hand-rolled JSON value
//! type lives); this module owns the semantics: validation, moments,
//! sampling, and field realization.

use crate::dist::{ContinuousDist, Gaussian, LogNormal, TruncatedGaussian, Uniform};
use crate::seed::split_seed;
use crate::{Result, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A tagged distribution spec: the declarative value of one stochastic
/// scenario knob.
///
/// `Fixed` is the scalar back-compat form — a knob that was a bare `f64`
/// parses as `Fixed` and behaves exactly as before. The other variants
/// carry the parameters of the matching sampler in [`crate::dist`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistSpec {
    /// A degenerate distribution: always `value`. Scalar back-compat.
    Fixed(f64),
    /// `N(mean, sd²)` — [`Gaussian`].
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation (> 0).
        sd: f64,
    },
    /// `N(mean, sd²)` truncated to `[lo, hi]` — [`TruncatedGaussian`].
    TruncatedGaussian {
        /// Parent mean.
        mean: f64,
        /// Parent standard deviation (> 0).
        sd: f64,
        /// Lower truncation bound.
        lo: f64,
        /// Upper truncation bound (> `lo`).
        hi: f64,
    },
    /// Uniform on `[lo, hi]` — [`Uniform`].
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (> `lo`).
        hi: f64,
    },
    /// `exp(N(mu, sigma²))` — [`LogNormal`]; log-scale parameters.
    LogNormal {
        /// Log-scale mean.
        mu: f64,
        /// Log-scale standard deviation (> 0).
        sigma: f64,
    },
}

impl DistSpec {
    /// Canonical kind strings, in declaration order. The JSON layer and
    /// `describe` enumeration both derive from this one constant.
    pub const KINDS: [&'static str; 5] = [
        "fixed",
        "gaussian",
        "truncated-gaussian",
        "uniform",
        "lognormal",
    ];

    /// The canonical kind string of this variant (an entry of
    /// [`DistSpec::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            DistSpec::Fixed(_) => "fixed",
            DistSpec::Gaussian { .. } => "gaussian",
            DistSpec::TruncatedGaussian { .. } => "truncated-gaussian",
            DistSpec::Uniform { .. } => "uniform",
            DistSpec::LogNormal { .. } => "lognormal",
        }
    }

    /// True for the degenerate (`Fixed`) form.
    pub fn is_fixed(&self) -> bool {
        matches!(self, DistSpec::Fixed(_))
    }

    /// The scalar value when `Fixed`, `None` otherwise.
    pub fn as_fixed(&self) -> Option<f64> {
        match self {
            DistSpec::Fixed(v) => Some(*v),
            _ => None,
        }
    }

    /// Validate the parameters by building the underlying sampler.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] with the offending parameter name
    /// and constraint.
    pub fn validate(&self) -> Result<()> {
        self.sampler().map(|_| ())
    }

    /// Mean of the distribution (the value itself for `Fixed`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistSpec::validate`].
    pub fn mean(&self) -> Result<f64> {
        Ok(match self.sampler()? {
            DistSampler::Fixed(v) => v,
            DistSampler::Gaussian(d) => d.mean(),
            DistSampler::TruncatedGaussian(d) => d.mean(),
            DistSampler::Uniform(d) => d.mean(),
            DistSampler::LogNormal(d) => d.mean(),
        })
    }

    /// Build the validated sampler for repeated draws.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistSpec::validate`].
    pub fn sampler(&self) -> Result<DistSampler> {
        Ok(match *self {
            DistSpec::Fixed(v) => {
                if !v.is_finite() {
                    return Err(StatsError::InvalidParameter {
                        name: "fixed",
                        value: v,
                        constraint: "must be finite",
                    });
                }
                DistSampler::Fixed(v)
            }
            DistSpec::Gaussian { mean, sd } => DistSampler::Gaussian(Gaussian::new(mean, sd)?),
            DistSpec::TruncatedGaussian { mean, sd, lo, hi } => {
                DistSampler::TruncatedGaussian(TruncatedGaussian::new(mean, sd, lo, hi)?)
            }
            DistSpec::Uniform { lo, hi } => DistSampler::Uniform(Uniform::new(lo, hi)?),
            DistSpec::LogNormal { mu, sigma } => DistSampler::LogNormal(LogNormal::new(mu, sigma)?),
        })
    }

    /// Draw one value (validating first; use [`DistSpec::sampler`] for
    /// hot loops). A `Fixed` spec returns its value without consuming
    /// randomness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DistSpec::validate`].
    pub fn sample(&self, rng: &mut dyn RngCore) -> Result<f64> {
        Ok(self.sampler()?.sample(rng))
    }
}

/// A validated, ready-to-draw [`DistSpec`] (parameters checked once).
#[derive(Debug, Clone, Copy)]
pub enum DistSampler {
    /// Degenerate: always the value.
    Fixed(f64),
    /// Gaussian sampler.
    Gaussian(Gaussian),
    /// Truncated-Gaussian sampler.
    TruncatedGaussian(TruncatedGaussian),
    /// Uniform sampler.
    Uniform(Uniform),
    /// Log-normal sampler.
    LogNormal(LogNormal),
}

impl DistSampler {
    /// Draw one value. `Fixed` consumes no randomness.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match self {
            DistSampler::Fixed(v) => *v,
            DistSampler::Gaussian(d) => d.sample(rng),
            DistSampler::TruncatedGaussian(d) => d.sample(rng),
            DistSampler::Uniform(d) => d.sample(rng),
            DistSampler::LogNormal(d) => d.sample(rng),
        }
    }
}

/// Number of random Fourier harmonics in the correlated-noise field.
///
/// 16 harmonics approximate a stationary Gaussian field closely enough
/// for binning/radial-profile workloads while keeping per-die realization
/// O(16); the construction is exact in distribution as K → ∞.
const FIELD_HARMONICS: usize = 16;

/// Seed salt separating the field's harmonic table from other streams.
const FIELD_NOISE_SALT: u64 = 0x6E6F_6973; // "nois"
/// Seed salt separating per-die local draws from the harmonic table.
const FIELD_LOCAL_SALT: u64 = 0x6C6F_636C; // "locl"

/// A wafer-scale random field for one stochastic knob: a per-die local
/// distribution modulated by a deterministic radial trend and a spatially
/// correlated noise surface.
///
/// Die `d` at normalized radius `r ∈ [0, 1]` and grid position `(x, y)`
/// (in die pitches) realizes
///
/// ```text
/// value = local_d · (1 + trend·r) · (1 + noise(x, y))
/// ```
///
/// clamped to `[clamp_lo, clamp_hi]`, where `local_d ~ dist` is an
/// independent draw per die and `noise` is a zero-mean Gaussian surface
/// with standard deviation `noise_sd` and correlation length
/// `correlation_dies` (in die pitches), realized by a random-Fourier-
/// feature sum whose harmonics depend only on the wafer seed — so nearby
/// dies share their deviation, which is exactly the paper's spatial-
/// correlation story lifted to wafer scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSpec {
    /// Per-die local distribution (die-to-die independent component).
    pub dist: DistSpec,
    /// Radial trend slope: the multiplier at the wafer edge is
    /// `1 + trend` (center = 1). Must be > −1.
    pub trend: f64,
    /// Standard deviation of the correlated multiplicative noise
    /// (0 disables the surface). Must be in `[0, 0.5]`.
    pub noise_sd: f64,
    /// Correlation length of the noise surface, in die pitches (> 0).
    pub correlation_dies: f64,
    /// Lower clamp on the realized value (−∞ to disable).
    pub clamp_lo: f64,
    /// Upper clamp on the realized value (+∞ to disable).
    pub clamp_hi: f64,
}

impl FieldSpec {
    /// A trivial field: every die draws i.i.d. from `dist`, no trend, no
    /// correlated noise, no clamping.
    pub fn from_dist(dist: DistSpec) -> Self {
        Self {
            dist,
            trend: 0.0,
            noise_sd: 0.0,
            correlation_dies: 8.0,
            clamp_lo: f64::NEG_INFINITY,
            clamp_hi: f64::INFINITY,
        }
    }

    /// Validate every component of the field.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        self.dist.validate()?;
        if !(self.trend.is_finite() && self.trend > -1.0) {
            return Err(StatsError::InvalidParameter {
                name: "trend",
                value: self.trend,
                constraint: "must be finite and > -1",
            });
        }
        if !(self.noise_sd.is_finite() && (0.0..=0.5).contains(&self.noise_sd)) {
            return Err(StatsError::InvalidParameter {
                name: "noise_sd",
                value: self.noise_sd,
                constraint: "must be in [0, 0.5]",
            });
        }
        if !(self.correlation_dies.is_finite() && self.correlation_dies > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "correlation_dies",
                value: self.correlation_dies,
                constraint: "must be finite and > 0",
            });
        }
        if self.clamp_lo.is_nan() || self.clamp_hi.is_nan() || self.clamp_lo >= self.clamp_hi {
            return Err(StatsError::InvalidParameter {
                name: "clamp_lo",
                value: self.clamp_lo,
                constraint: "must be < clamp_hi",
            });
        }
        Ok(())
    }

    /// Build the per-wafer sampler for this field under `seed` (one knob
    /// of one wafer run).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FieldSpec::validate`].
    pub fn sampler(&self, seed: u64) -> Result<FieldSampler> {
        FieldSampler::new(*self, seed)
    }
}

/// One harmonic of the correlated-noise surface.
#[derive(Debug, Clone, Copy)]
struct Harmonic {
    wx: f64,
    wy: f64,
    phase: f64,
}

/// The realized, seeded form of a [`FieldSpec`]: draws per-die values as
/// a pure function of `(spec, seed, die index, die position)`.
#[derive(Debug, Clone)]
pub struct FieldSampler {
    spec: FieldSpec,
    local: DistSampler,
    seed: u64,
    harmonics: Vec<Harmonic>,
}

impl FieldSampler {
    /// Seed a field sampler (see [`FieldSpec::sampler`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FieldSpec::validate`].
    pub fn new(spec: FieldSpec, seed: u64) -> Result<Self> {
        spec.validate()?;
        let local = spec.dist.sampler()?;
        // The harmonic table depends only on (spec, seed) — every die
        // evaluates the same surface, which is what makes the noise
        // *correlated* rather than independent.
        let gauss = Gaussian::standard();
        let noise_base = split_seed(seed, FIELD_NOISE_SALT);
        let harmonics = (0..FIELD_HARMONICS)
            .map(|k| {
                let mut rng = StdRng::seed_from_u64(split_seed(noise_base, k as u64));
                // Gaussian spectral density with scale 1/ℓ realizes the
                // squared-exponential correlation exp(−d²/2ℓ²).
                let inv_len = 1.0 / spec.correlation_dies;
                Harmonic {
                    wx: gauss.sample(&mut rng) * inv_len,
                    wy: gauss.sample(&mut rng) * inv_len,
                    phase: rng.gen::<f64>() * std::f64::consts::TAU,
                }
            })
            .collect();
        Ok(Self {
            spec,
            local,
            seed,
            harmonics,
        })
    }

    /// The zero-mean correlated noise surface at `(x, y)` (die pitches).
    pub fn noise_at(&self, x: f64, y: f64) -> f64 {
        if self.spec.noise_sd == 0.0 {
            return 0.0;
        }
        let amp = self.spec.noise_sd * (2.0 / FIELD_HARMONICS as f64).sqrt();
        let sum: f64 = self
            .harmonics
            .iter()
            .map(|h| (h.wx * x + h.wy * y + h.phase).cos())
            .sum();
        amp * sum
    }

    /// Realize the knob value for die `die_index` at grid position
    /// `(x, y)` (die pitches from wafer center) and normalized radius
    /// `r ∈ [0, 1]`.
    ///
    /// Pure function of the sampler's `(spec, seed)` and the arguments —
    /// never of evaluation order or worker count. The correlated-noise
    /// multiplier is floored at 0.05 so extreme surfaces cannot flip a
    /// positive knob negative; the final value lands in
    /// `[clamp_lo, clamp_hi]`.
    pub fn realize(&self, die_index: u64, x: f64, y: f64, r: f64) -> f64 {
        let mut rng = StdRng::seed_from_u64(split_seed(
            split_seed(self.seed, FIELD_LOCAL_SALT),
            die_index,
        ));
        let local = self.local.sample(&mut rng);
        let trend_factor = 1.0 + self.spec.trend * r;
        let noise_factor = (1.0 + self.noise_at(x, y)).max(0.05);
        (local * trend_factor * noise_factor).clamp(self.spec.clamp_lo, self.spec.clamp_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn kinds_cover_every_variant() {
        let specs = [
            DistSpec::Fixed(1.0),
            DistSpec::Gaussian { mean: 0.0, sd: 1.0 },
            DistSpec::TruncatedGaussian {
                mean: 0.0,
                sd: 1.0,
                lo: -1.0,
                hi: 1.0,
            },
            DistSpec::Uniform { lo: 0.0, hi: 1.0 },
            DistSpec::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ];
        for (spec, kind) in specs.iter().zip(DistSpec::KINDS) {
            assert_eq!(spec.kind(), kind);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn fixed_consumes_no_randomness_and_is_exact() {
        let spec = DistSpec::Fixed(0.33);
        let mut r = rng();
        let before = r.gen::<u64>();
        let mut r = rng();
        assert_eq!(spec.sample(&mut r).unwrap(), 0.33);
        assert_eq!(r.gen::<u64>(), before, "Fixed must not advance the RNG");
        assert!(spec.is_fixed());
        assert_eq!(spec.as_fixed(), Some(0.33));
        assert_eq!(spec.mean().unwrap(), 0.33);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(DistSpec::Fixed(f64::NAN).validate().is_err());
        assert!(DistSpec::Gaussian { mean: 0.0, sd: 0.0 }
            .validate()
            .is_err());
        assert!(DistSpec::Uniform { lo: 1.0, hi: 1.0 }.validate().is_err());
        assert!(DistSpec::LogNormal {
            mu: 0.0,
            sigma: -1.0
        }
        .validate()
        .is_err());
        assert!(DistSpec::TruncatedGaussian {
            mean: 0.0,
            sd: 1.0,
            lo: 2.0,
            hi: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sample_means_track_analytic_means() {
        let specs = [
            DistSpec::Gaussian { mean: 4.0, sd: 0.5 },
            DistSpec::Uniform { lo: 2.0, hi: 6.0 },
            DistSpec::LogNormal {
                mu: 0.0,
                sigma: 0.25,
            },
        ];
        for spec in specs {
            let sampler = spec.sampler().unwrap();
            let mut r = rng();
            let n = 40_000;
            let mean = (0..n).map(|_| sampler.sample(&mut r)).sum::<f64>() / n as f64;
            let want = spec.mean().unwrap();
            assert!(
                (mean - want).abs() < 0.03 * want.abs().max(1.0),
                "{}: sampled {mean} vs analytic {want}",
                spec.kind()
            );
        }
    }

    #[test]
    fn field_validation_rejects_bad_hyperparameters() {
        let base = FieldSpec::from_dist(DistSpec::Fixed(1.0));
        base.validate().unwrap();
        assert!(FieldSpec {
            trend: -1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(FieldSpec {
            noise_sd: 0.6,
            ..base
        }
        .validate()
        .is_err());
        assert!(FieldSpec {
            correlation_dies: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(FieldSpec {
            clamp_lo: 2.0,
            clamp_hi: 1.0,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn field_realization_is_a_pure_function() {
        let spec = FieldSpec {
            dist: DistSpec::Gaussian { mean: 1.0, sd: 0.1 },
            trend: -0.2,
            noise_sd: 0.1,
            correlation_dies: 4.0,
            clamp_lo: 0.1,
            clamp_hi: 3.0,
        };
        let a = spec.sampler(99).unwrap();
        let b = spec.sampler(99).unwrap();
        for die in [0u64, 1, 17, 100_000] {
            let (x, y, r) = (die as f64 * 0.1, -3.0, 0.5);
            assert_eq!(a.realize(die, x, y, r), b.realize(die, x, y, r));
        }
        let c = spec.sampler(100).unwrap();
        assert_ne!(
            a.realize(3, 1.0, 1.0, 0.3),
            c.realize(3, 1.0, 1.0, 0.3),
            "different wafer seeds must realize different values"
        );
    }

    #[test]
    fn radial_trend_shifts_edge_dies() {
        let spec = FieldSpec {
            trend: -0.5,
            ..FieldSpec::from_dist(DistSpec::Fixed(2.0))
        };
        let s = spec.sampler(1).unwrap();
        assert_eq!(s.realize(0, 0.0, 0.0, 0.0), 2.0);
        assert!((s.realize(0, 10.0, 0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_spatially_correlated() {
        let spec = FieldSpec {
            noise_sd: 0.2,
            correlation_dies: 50.0,
            ..FieldSpec::from_dist(DistSpec::Fixed(1.0))
        };
        let s = spec.sampler(5).unwrap();
        // Neighbors (1 die apart, ℓ = 50) are nearly identical; far dies
        // decorrelate. Average over many probe points for stability.
        let mut near = 0.0;
        let mut far = 0.0;
        let n = 200;
        for i in 0..n {
            let x = i as f64 * 3.0 - 300.0;
            let base = s.noise_at(x, 0.0);
            near += (s.noise_at(x + 1.0, 0.0) - base).abs();
            far += (s.noise_at(x + 500.0, 0.0) - base).abs();
        }
        assert!(
            near / n as f64 * 5.0 < far / n as f64,
            "near diff {near} should be far below far diff {far}"
        );
        // Clamps bound the realization.
        let spec = FieldSpec {
            clamp_lo: 0.9,
            clamp_hi: 1.1,
            noise_sd: 0.5,
            ..FieldSpec::from_dist(DistSpec::Gaussian { mean: 1.0, sd: 0.5 })
        };
        let s = spec.sampler(5).unwrap();
        for die in 0..500 {
            let v = s.realize(die, die as f64, 0.0, 0.5);
            assert!((0.9..=1.1).contains(&v), "die {die} escaped clamp: {v}");
        }
    }
}
