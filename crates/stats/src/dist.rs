//! Continuous and discrete probability distributions.
//!
//! All samplers take an explicit `&mut impl rand::Rng` so that every
//! simulation in the workspace is reproducible from a single seed. The
//! distributions implement analytic moments, which the analytic yield models
//! in `cnfet-core` rely on (the Monte-Carlo engine cross-checks them).

use crate::special::{normal_cdf, normal_pdf, normal_quantile};
use crate::{Result, StatsError};
use rand::Rng;

/// Common interface of continuous scalar distributions.
///
/// The trait is object-safe so heterogeneous pitch/length models can be
/// plugged into the growth simulator behind a `&dyn ContinuousDist`.
pub trait ContinuousDist: std::fmt::Debug {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Standard deviation; default derives from [`ContinuousDist::variance`].
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Draw `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn rand::RngCore, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Gaussian (normal) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    sd: f64,
}

impl Gaussian {
    /// Create a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sd` is not finite and
    /// strictly positive, or `mean` is not finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite",
            });
        }
        if !(sd.is_finite() && sd > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "sd",
                value: sd,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * normal_quantile(p)
    }
}

impl ContinuousDist for Gaussian {
    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mean) / self.sd)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Box–Muller; one deviate per call keeps the implementation stateless
        // (and therefore trivially reproducible across threads).
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        self.mean + self.sd * r * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Gaussian truncated to the interval `[lo, hi]`.
///
/// This is the inter-CNT pitch model used throughout the workspace: CNT
/// spacing measurements in \[Zhang 09a\] are well described by a Gaussian
/// with a large coefficient of variation, but physical spacings are strictly
/// positive, hence truncation at a minimum spacing (default 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussian {
    /// Parent (untruncated) distribution.
    parent: Gaussian,
    lo: f64,
    hi: f64,
    /// Φ((lo−µ)/σ)
    alpha_cdf: f64,
    /// Φ((hi−µ)/σ)
    beta_cdf: f64,
}

impl TruncatedGaussian {
    /// Truncate `N(mean, sd²)` to `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the parent parameters are
    /// invalid, if `lo ≥ hi`, or if the retained probability mass is
    /// numerically zero (truncation window too far in the tail).
    pub fn new(mean: f64, sd: f64, lo: f64, hi: f64) -> Result<Self> {
        let parent = Gaussian::new(mean, sd)?;
        if lo >= hi {
            return Err(StatsError::InvalidParameter {
                name: "lo",
                value: lo,
                constraint: "must be < hi",
            });
        }
        let alpha_cdf = parent.cdf(lo);
        let beta_cdf = if hi.is_finite() { parent.cdf(hi) } else { 1.0 };
        if beta_cdf - alpha_cdf < 1e-12 {
            return Err(StatsError::InvalidParameter {
                name: "lo/hi",
                value: lo,
                constraint: "truncation window retains no probability mass",
            });
        }
        Ok(Self {
            parent,
            lo,
            hi,
            alpha_cdf,
            beta_cdf,
        })
    }

    /// Gaussian truncated to positive values `[0, ∞)`.
    ///
    /// `mean` and `sd` are the **parent** parameters; truncation at zero
    /// shifts the achieved mean upward. When the paper-level parameters
    /// (mean pitch `S = 4 nm`) must be met exactly, use
    /// [`TruncatedGaussian::positive_with_moments`] instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TruncatedGaussian::new`].
    pub fn positive(mean: f64, sd: f64) -> Result<Self> {
        Self::new(mean, sd, 0.0, f64::INFINITY)
    }

    /// Gaussian truncated to `[0, ∞)` whose **achieved** (post-truncation)
    /// mean and standard deviation equal the given targets.
    ///
    /// Solves for the parent `(µ, σ)` by a damped fixed-point iteration;
    /// this is how the workspace realizes the paper's "mean inter-CNT pitch
    /// S = 4 nm with the σ_S/S ratio of \[Zhang 09a\]" exactly.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive targets and
    /// [`StatsError::NoConvergence`] if the iteration does not settle (can
    /// happen for extreme `sd/mean` ratios above ≈ 1.3, where no truncated
    /// Gaussian attains the requested moments).
    pub fn positive_with_moments(target_mean: f64, target_sd: f64) -> Result<Self> {
        if !(target_mean.is_finite() && target_mean > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_mean",
                value: target_mean,
                constraint: "must be finite and > 0",
            });
        }
        if !(target_sd.is_finite() && target_sd > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_sd",
                value: target_sd,
                constraint: "must be finite and > 0",
            });
        }
        let mut mu = target_mean;
        let mut sd = target_sd;
        for _ in 0..500 {
            let cand = Self::new(mu, sd, 0.0, f64::INFINITY)?;
            let em = cand.mean();
            let es = cand.std_dev();
            let dm = em - target_mean;
            let ds = es - target_sd;
            if dm.abs() < 5e-7 * target_mean && ds.abs() < 5e-7 * target_sd {
                return Ok(cand);
            }
            // Damped fixed point: move the parent parameters against the
            // achieved-moment error.
            mu -= 0.9 * dm;
            sd -= 0.9 * ds;
            if sd <= 1e-9 {
                sd = 1e-9;
            }
        }
        Err(StatsError::NoConvergence(
            "TruncatedGaussian::positive_with_moments",
        ))
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound (may be `f64::INFINITY`).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Mean of the *parent* (untruncated) Gaussian.
    pub fn parent_mean(&self) -> f64 {
        self.parent.mean()
    }

    /// Standard deviation of the *parent* (untruncated) Gaussian.
    pub fn parent_sd(&self) -> f64 {
        self.parent.std_dev()
    }

    /// Retained probability mass `Φ(β) − Φ(α)` of the parent.
    pub fn mass(&self) -> f64 {
        self.beta_cdf - self.alpha_cdf
    }

    /// Exponential tilt: the distribution with density
    /// `g(x) ∝ f(x)·e^{θx}`, together with `ln M(θ)` where
    /// `M(θ) = E[e^{θX}]` is the moment generating function.
    ///
    /// For a truncated Gaussian the tilt stays in the family: only the
    /// parent mean shifts, by `θσ²`. This is the importance-sampling
    /// primitive behind the Monte-Carlo deep-tail estimator of
    /// [`crate::renewal::FailureSampler`]: sampling pitches from the tilted
    /// density and re-weighting by the likelihood ratio
    /// `Π f/g = M(θ)ⁿ·e^{−θΣx}` moves the typical CNT count into the
    /// region that dominates a rare-event expectation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for a non-finite `θ` or a
    /// tilt so extreme that the tilted window retains no mass.
    pub fn tilted(&self, theta: f64) -> Result<(TruncatedGaussian, f64)> {
        if !theta.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "theta",
                value: theta,
                constraint: "must be finite",
            });
        }
        if theta == 0.0 {
            return Ok((*self, 0.0));
        }
        let mu = self.parent.mean();
        let sd = self.parent.std_dev();
        let tilted = TruncatedGaussian::new(mu + theta * sd * sd, sd, self.lo, self.hi)?;
        let ln_m =
            theta * mu + 0.5 * theta * theta * sd * sd + tilted.mass().ln() - self.mass().ln();
        Ok((tilted, ln_m))
    }

    /// Quantile of the truncated distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        let q = self.alpha_cdf + p * self.mass();
        // Clamp for numerical safety near the boundaries.
        self.parent.quantile(q.clamp(1e-300, 1.0 - 1e-16))
    }

    /// Draw one deviate with a concrete (monomorphized) RNG.
    ///
    /// Bit-identical to the [`ContinuousDist::sample`] impl — same
    /// inverse-CDF arithmetic, same single uniform consumed — but without
    /// the `dyn RngCore` indirection, which matters on Monte-Carlo inner
    /// loops drawing tens of millions of pitches.
    #[inline]
    pub fn sample_fast(&self, rng: &mut (impl Rng + ?Sized)) -> f64 {
        let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
        self.quantile(u)
    }
}

impl ContinuousDist for TruncatedGaussian {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.parent.pdf(x) / self.mass()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (self.parent.cdf(x) - self.alpha_cdf) / self.mass()
        }
    }

    fn mean(&self) -> f64 {
        // E[X | lo ≤ X ≤ hi] = µ + σ·(φ(α) − φ(β)) / Z
        let mu = self.parent.mean();
        let sd = self.parent.std_dev();
        let a = (self.lo - mu) / sd;
        let b = (self.hi - mu) / sd;
        let phi_a = normal_pdf(a);
        let phi_b = if b.is_finite() { normal_pdf(b) } else { 0.0 };
        mu + sd * (phi_a - phi_b) / self.mass()
    }

    fn variance(&self) -> f64 {
        let mu = self.parent.mean();
        let sd = self.parent.std_dev();
        let z = self.mass();
        let a = (self.lo - mu) / sd;
        let b = (self.hi - mu) / sd;
        let phi_a = normal_pdf(a);
        let phi_b = if b.is_finite() { normal_pdf(b) } else { 0.0 };
        let a_term = if a.is_finite() { a * phi_a } else { 0.0 };
        let b_term = if b.is_finite() { b * phi_b } else { 0.0 };
        let d = (phi_a - phi_b) / z;
        sd * sd * (1.0 + (a_term - b_term) / z - d * d)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse-CDF sampling: exact, branch-free, and — unlike rejection —
        // consumes exactly one uniform per deviate, keeping parallel streams
        // aligned regardless of parameters.
        self.sample_fast(rng)
    }
}

/// Exponential distribution with the given rate `λ`.
///
/// Used for CNT length modeling in the beyond-paper ablations (CNT length
/// variation; the paper assumes fixed `L_CNT`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution with rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `rate` is not finite and
    /// strictly positive.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { rate })
    }

    /// Create an exponential distribution from its mean (`1/λ`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mean` is not finite and
    /// strictly positive.
    pub fn from_mean(mean: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(1.0 / mean)
    }

    /// Rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
        -(1.0 - u).ln() / self.rate
    }
}

/// Continuous uniform distribution on `[lo, hi]`.
///
/// The simplest stochastic-knob model: bounded, flat, and trivially
/// seedable. Used by the wafer random-field layer for knobs whose spread
/// is a hard tolerance window rather than a bell curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either bound is not
    /// finite or `lo ≥ hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lo",
                value: lo,
                constraint: "must be finite",
            });
        }
        if !(hi.is_finite() && hi > lo) {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
                constraint: "must be finite and > lo",
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // One uniform per deviate, like every sampler in this module, so
        // parallel per-index streams stay aligned.
        let u: f64 = rng.gen();
        self.lo + u * (self.hi - self.lo)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// The natural model for strictly positive, multiplicative process
/// variation (growth-density drift across a wafer compounds rather than
/// adds). `mu`/`sigma` are the parameters of the underlying normal on the
/// log scale, as is conventional.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log: Gaussian,
}

impl LogNormal {
    /// Create a log-normal whose logarithm is `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mu` is not finite or
    /// `sigma` is not finite and strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self {
            log: Gaussian::new(mu, sigma)?,
        })
    }

    /// Create a log-normal from its **achieved** mean and standard
    /// deviation (both on the linear scale), solving for `(mu, sigma)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive targets.
    pub fn with_moments(target_mean: f64, target_sd: f64) -> Result<Self> {
        if !(target_mean.is_finite() && target_mean > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_mean",
                value: target_mean,
                constraint: "must be finite and > 0",
            });
        }
        if !(target_sd.is_finite() && target_sd > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_sd",
                value: target_sd,
                constraint: "must be finite and > 0",
            });
        }
        let cv2 = (target_sd / target_mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        Self::new(target_mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }

    /// Mean of the underlying normal (log scale).
    pub fn mu(&self) -> f64 {
        self.log.mean()
    }

    /// Standard deviation of the underlying normal (log scale).
    pub fn sigma(&self) -> f64 {
        self.log.std_dev()
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.log.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.log.cdf(x.ln())
        }
    }

    fn mean(&self) -> f64 {
        let s2 = self.log.variance();
        (self.log.mean() + 0.5 * s2).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.log.variance();
        (s2.exp() - 1.0) * (2.0 * self.log.mean() + s2).exp()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse-CDF through the log-scale Gaussian quantile: exactly one
        // uniform per deviate (Box–Muller would consume two).
        let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
        self.log.quantile(u).exp()
    }
}

/// Bernoulli distribution: `true` with probability `p`.
///
/// Models per-CNT binary properties: metallic vs semiconducting typing,
/// removal by the VMR process, and the aggregate per-CNT failure event of
/// Eq. (2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a Bernoulli distribution with success probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                constraint: "must be in [0, 1]",
            });
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw one Bernoulli trial.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// Poisson distribution with mean `λ`.
///
/// Used for scatter counts in the uncorrelated-growth model (2-D Poisson
/// point process of CNT centers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution with mean `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `lambda` is not finite
    /// and strictly positive.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { lambda })
    }

    /// Mean `λ`.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance (equals `λ`).
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Draw one count.
    ///
    /// Exact inter-arrival construction (sum of Exp(1) gaps until `λ` is
    /// exceeded): O(λ) per draw, which is fine for the rendering-scale
    /// counts this is used for.
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> u64 {
        let mut acc = 0.0_f64;
        let mut n = 0u64;
        loop {
            let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
            acc += -(1.0 - u).ln();
            if acc > self.lambda {
                return n;
            }
            n += 1;
        }
    }
}

/// A discrete distribution over the non-negative integers `0..pmf.len()`.
///
/// Construction normalizes the weights; the PMF is dense, which fits CNT
/// count distributions whose support is a short integer range around `W/S`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    pmf: Vec<f64>,
    cdf: Vec<f64>,
}

impl DiscreteDist {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] for an empty weight vector, and
    /// [`StatsError::InvalidParameter`] if any weight is negative/non-finite
    /// or all weights are zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::EmptyData("DiscreteDist weights"));
        }
        let mut total = 0.0;
        for &w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(StatsError::InvalidParameter {
                    name: "weight",
                    value: w,
                    constraint: "must be finite and >= 0",
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                value: total,
                constraint: "must sum to > 0",
            });
        }
        let pmf: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Force exact 1.0 at the end to make sampling airtight.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { pmf, cdf })
    }

    /// Probability mass at `k` (0 outside the support).
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// The full PMF as a slice; index is the outcome.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Mean `Σ k·p(k)`.
    pub fn mean(&self) -> f64 {
        self.pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum()
    }

    /// Variance `Σ k²·p(k) − mean²`.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .pmf
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64) * (k as f64) * p)
            .sum();
        (m2 - m * m).max(0.0)
    }

    /// Probability generating function `E[z^K] = Σ z^k p(k)`.
    ///
    /// Evaluated at the per-CNT failure probability this is exactly the
    /// paper's Eq. (2.2).
    pub fn pgf(&self, z: f64) -> f64 {
        // Horner from the top power keeps the sum stable for z < 1.
        self.pmf.iter().rev().fold(0.0, |acc, &p| acc * z + p)
    }

    /// Draw one outcome by inverse-CDF lookup (binary search).
    pub fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF contains NaN"))
        {
            Ok(i) | Err(i) => i.min(self.pmf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn gaussian_rejects_bad_params() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn gaussian_moments_and_cdf() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        assert_eq!(g.mean(), 10.0);
        assert_eq!(g.variance(), 4.0);
        assert!((g.cdf(10.0) - 0.5).abs() < 1e-9);
        assert!((g.cdf(12.0) - 0.841344746).abs() < 1e-6);
        // erf is the A&S rational approximation (~1e-7 absolute), so the
        // round-tripped median carries that error scaled by sd.
        assert!((g.quantile(0.5) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn gaussian_sampling_matches_moments() {
        let g = Gaussian::new(-3.0, 0.5).unwrap();
        let mut r = rng();
        let xs = g.sample_n(&mut r, 40_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - -3.0).abs() < 0.02, "sample mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "sample var {var}");
    }

    #[test]
    fn truncated_gaussian_support_and_mass() {
        let t = TruncatedGaussian::positive(4.0, 3.3).unwrap();
        assert_eq!(t.pdf(-0.1), 0.0);
        assert_eq!(t.cdf(-0.1), 0.0);
        assert!(t.mass() < 1.0 && t.mass() > 0.8);
        // Heavy truncation shifts mean right of the parent mean.
        assert!(t.mean() > 4.0);
        let mut r = rng();
        for _ in 0..2000 {
            let x = t.sample(&mut r);
            assert!(x >= 0.0, "sample {x} escaped truncation");
        }
    }

    #[test]
    fn truncated_gaussian_sampling_matches_analytic_moments() {
        let t = TruncatedGaussian::new(4.0, 3.0, 1.0, 9.0).unwrap();
        let mut r = rng();
        let xs = t.sample_n(&mut r, 60_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(
            (mean - t.mean()).abs() < 0.02,
            "mean: sampled {mean} vs analytic {}",
            t.mean()
        );
        assert!(
            (var - t.variance()).abs() < 0.05,
            "var: sampled {var} vs analytic {}",
            t.variance()
        );
    }

    #[test]
    fn tilted_density_is_reweighted_parent() {
        let t = TruncatedGaussian::positive(4.0, 3.3).unwrap();
        let theta = 0.3;
        let (g, ln_m) = t.tilted(theta).unwrap();
        // g(x) = f(x)·e^{θx}/M(θ) pointwise.
        for x in [0.5, 2.0, 4.0, 8.0, 15.0] {
            let want = t.pdf(x) * (theta * x - ln_m).exp();
            assert!(
                (g.pdf(x) - want).abs() < 1e-9 * want.max(1.0),
                "x={x}: tilted pdf {} vs reweighted {want}",
                g.pdf(x)
            );
        }
        // M(θ) = E[e^{θX}], checked by quadrature over the support.
        let mut m = 0.0;
        let h = 0.001;
        let mut x = 0.0;
        while x < 4.0 + 12.0 * 3.3 {
            m += t.pdf(x + 0.5 * h) * (theta * (x + 0.5 * h)).exp() * h;
            x += h;
        }
        assert!(
            (ln_m - m.ln()).abs() < 1e-3,
            "ln M analytic {ln_m} vs quadrature {}",
            m.ln()
        );
        // Positive tilt stretches the mean; zero tilt is the identity.
        assert!(g.mean() > t.mean());
        let (same, zero) = t.tilted(0.0).unwrap();
        assert_eq!(zero, 0.0);
        assert_eq!(same, t);
        assert!(t.tilted(f64::NAN).is_err());
    }

    #[test]
    fn moment_matched_truncation_hits_targets() {
        let t = TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap();
        assert!((t.mean() - 4.0).abs() < 1e-4, "mean {}", t.mean());
        assert!((t.std_dev() - 3.28).abs() < 1e-4, "sd {}", t.std_dev());
        // Parent mean must sit below the achieved mean (truncation pushes up).
        assert!(t.parent_mean() < 4.0);
        assert!(TruncatedGaussian::positive_with_moments(-1.0, 1.0).is_err());
        assert!(TruncatedGaussian::positive_with_moments(4.0, 0.0).is_err());
    }

    #[test]
    fn truncated_gaussian_rejects_empty_window() {
        assert!(TruncatedGaussian::new(0.0, 1.0, 50.0, 60.0).is_err());
        assert!(TruncatedGaussian::new(0.0, 1.0, 2.0, 1.0).is_err());
    }

    #[test]
    fn exponential_basic() {
        let e = Exponential::from_mean(200.0).unwrap();
        assert!((e.mean() - 200.0).abs() < 1e-12);
        assert!((e.cdf(200.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let mut r = rng();
        let xs = e.sample_n(&mut r, 40_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 200.0).abs() < 5.0, "sample mean {mean}");
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
    }

    #[test]
    fn uniform_moments_and_bounds() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
        assert!((u.cdf(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(u.pdf(1.9), 0.0);
        assert!((u.pdf(4.0) - 0.25).abs() < 1e-12);
        let mut r = rng();
        let xs = u.sample_n(&mut r, 40_000);
        assert!(xs.iter().all(|&x| (2.0..=6.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.02, "sample mean {mean}");
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 1.0).is_err());
    }

    #[test]
    fn lognormal_moments_and_sampling() {
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        assert!((ln.mean() - (0.125f64).exp()).abs() < 1e-12);
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert_eq!(ln.cdf(0.0), 0.0);
        // Median is exp(mu).
        assert!((ln.cdf(1.0) - 0.5).abs() < 1e-9);
        let mut r = rng();
        let xs = ln.sample_n(&mut r, 60_000);
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - ln.mean()).abs() < 0.02, "sample mean {mean}");
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn lognormal_with_moments_hits_targets() {
        let ln = LogNormal::with_moments(1.8, 0.2).unwrap();
        assert!((ln.mean() - 1.8).abs() < 1e-9, "mean {}", ln.mean());
        assert!((ln.std_dev() - 0.2).abs() < 1e-9, "sd {}", ln.std_dev());
        assert!(LogNormal::with_moments(0.0, 1.0).is_err());
        assert!(LogNormal::with_moments(1.0, -1.0).is_err());
    }

    #[test]
    fn bernoulli_frequency() {
        let b = Bernoulli::new(0.33).unwrap();
        let mut r = rng();
        let hits = (0..100_000).filter(|_| b.sample(&mut r)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.33).abs() < 0.01, "freq {freq}");
        assert!(Bernoulli::new(1.5).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
    }

    #[test]
    fn poisson_moments_from_samples() {
        let p = Poisson::new(12.5).unwrap();
        let mut r = rng();
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 30_000;
        for _ in 0..n {
            let k = p.sample(&mut r) as f64;
            sum += k;
            sum2 += k * k;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 12.5).abs() < 0.15, "mean {mean}");
        assert!((var - 12.5).abs() < 0.5, "var {var}");
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn discrete_dist_pgf_and_moments() {
        // Deterministic at k = 3: PGF(z) = z³.
        let d = DiscreteDist::from_weights(&[0.0, 0.0, 0.0, 5.0]).unwrap();
        assert!((d.pgf(0.5) - 0.125).abs() < 1e-12);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);

        // Fair coin over {0, 1}: PGF(z) = (1+z)/2.
        let d = DiscreteDist::from_weights(&[1.0, 1.0]).unwrap();
        assert!((d.pgf(0.2) - 0.6).abs() < 1e-12);
        assert!((d.variance() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn discrete_dist_sampling_matches_pmf() {
        let d = DiscreteDist::from_weights(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[d.sample(&mut r)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 100_000.0;
            assert!(
                (freq - d.pmf(k)).abs() < 0.01,
                "k={k}: freq {freq} vs pmf {}",
                d.pmf(k)
            );
        }
    }

    #[test]
    fn discrete_dist_validation() {
        assert!(DiscreteDist::from_weights(&[]).is_err());
        assert!(DiscreteDist::from_weights(&[0.0, 0.0]).is_err());
        assert!(DiscreteDist::from_weights(&[1.0, -1.0]).is_err());
        assert!(DiscreteDist::from_weights(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn pgf_at_one_is_one() {
        let d = DiscreteDist::from_weights(&[0.3, 1.2, 0.01, 7.0, 2.2]).unwrap();
        assert!((d.pgf(1.0) - 1.0).abs() < 1e-12);
        assert!((d.pgf(0.0) - d.pmf(0)).abs() < 1e-12);
    }
}
