//! Fixed-bin histograms with weighted insertion.
//!
//! Used for transistor-width distributions (paper Fig 2.2a), CNT count
//! distributions from Monte-Carlo runs, and pitch-measurement summaries.

use crate::{Result, StatsError};

/// A histogram over `[lo, hi)` with uniformly sized bins.
///
/// Values outside the range are tracked in explicit underflow/overflow
/// counters rather than silently dropped, because yield tails are exactly
/// the data we must not lose.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<f64>,
    underflow: f64,
    overflow: f64,
    count: u64,
    weight_total: f64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `nbins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `lo ≥ hi`, either bound is
    /// non-finite, or `nbins == 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "lo/hi",
                value: lo,
                constraint: "must be finite with lo < hi",
            });
        }
        if nbins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "nbins",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self {
            lo,
            hi,
            bins: vec![0.0; nbins],
            underflow: 0.0,
            overflow: 0.0,
            count: 0,
            weight_total: 0.0,
        })
    }

    /// Insert a value with weight 1.
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Insert a value with an arbitrary non-negative weight.
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        debug_assert!(w >= 0.0, "negative weight {w}");
        self.count += 1;
        self.weight_total += w;
        if x < self.lo {
            self.underflow += w;
        } else if x >= self.hi {
            self.overflow += w;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += w;
        }
    }

    /// Insert every value of an iterator with weight 1.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Upper edge of bin `i`.
    pub fn bin_hi(&self, i: usize) -> f64 {
        self.bin_lo(i + 1)
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        0.5 * (self.bin_lo(i) + self.bin_hi(i))
    }

    /// Accumulated weight in bin `i`.
    pub fn bin_weight(&self, i: usize) -> f64 {
        self.bins[i]
    }

    /// Fraction of total weight in bin `i` (0 if the histogram is empty).
    pub fn bin_fraction(&self, i: usize) -> f64 {
        if self.weight_total > 0.0 {
            self.bins[i] / self.weight_total
        } else {
            0.0
        }
    }

    /// All bin weights.
    pub fn weights(&self) -> &[f64] {
        &self.bins
    }

    /// Weight below `lo`.
    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    /// Weight at or above `hi`.
    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    /// Number of insertions (unweighted).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total inserted weight, including under/overflow.
    pub fn weight_total(&self) -> f64 {
        self.weight_total
    }

    /// Weighted quantile over the binned data (bin centers as
    /// representatives; under/overflow excluded).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] if no in-range weight has been
    /// inserted, or [`StatsError::InvalidParameter`] if `q` is outside
    /// `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                name: "q",
                value: q,
                constraint: "must be in [0, 1]",
            });
        }
        let in_range: f64 = self.bins.iter().sum();
        if in_range <= 0.0 {
            return Err(StatsError::EmptyData("histogram quantile"));
        }
        let target = q * in_range;
        let mut acc = 0.0;
        for (i, &w) in self.bins.iter().enumerate() {
            acc += w;
            if acc >= target {
                return Ok(self.bin_center(i));
            }
        }
        Ok(self.bin_center(self.bins.len() - 1))
    }

    /// Merge another histogram with identical binning into this one.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] if binning differs.
    pub fn merge(&mut self, other: &Histogram) -> Result<()> {
        if self.bins.len() != other.bins.len() || self.lo != other.lo || self.hi != other.hi {
            return Err(StatsError::LengthMismatch {
                left: self.bins.len(),
                right: other.bins.len(),
            });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.weight_total += other.weight_total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(0.0); // bin 0
        h.add(1.99); // bin 0
        h.add(2.0); // bin 1
        h.add(9.999); // bin 4
        h.add(-0.1); // underflow
        h.add(10.0); // overflow (right-open)
        assert_eq!(h.bin_weight(0), 2.0);
        assert_eq!(h.bin_weight(1), 1.0);
        assert_eq!(h.bin_weight(4), 1.0);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 1.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.bin_lo(1), 2.0);
        assert_eq!(h.bin_hi(1), 4.0);
        assert_eq!(h.bin_center(1), 3.0);
    }

    #[test]
    fn fractions_sum_to_one_without_flows() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.extend((0..1000).map(|i| i as f64 / 1000.0));
        let total: f64 = (0..10).map(|i| h.bin_fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_insertion() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add_weighted(0.5, 3.0);
        h.add_weighted(2.5, 1.0);
        assert_eq!(h.bin_weight(0), 3.0);
        assert_eq!(h.bin_fraction(0), 0.75);
        assert_eq!(h.weight_total(), 4.0);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        h.extend((0..10_000).map(|i| (i % 100) as f64 + 0.5));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        assert!(h.quantile(1.5).is_err());
        let empty = Histogram::new(0.0, 1.0, 2).unwrap();
        assert!(empty.quantile(0.5).is_err());
    }

    #[test]
    fn merge_requires_identical_binning() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let b = Histogram::new(0.0, 1.0, 5).unwrap();
        assert!(a.merge(&b).is_err());
        let mut c = Histogram::new(0.0, 1.0, 4).unwrap();
        c.add(0.5);
        let mut d = Histogram::new(0.0, 1.0, 4).unwrap();
        d.add(0.6);
        c.merge(&d).unwrap();
        assert_eq!(c.count(), 2);
        assert_eq!(c.bin_weight(2), 2.0);
    }
}
