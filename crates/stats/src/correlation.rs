//! Correlation estimators.
//!
//! Used to *measure* the CNT count/type correlation that the paper's Sec. 3
//! exploits: Fig 3.1's growth scenarios are quantified by the Pearson
//! correlation of CNT counts between aligned CNFET pairs and by the matching
//! probability of CNT types.

use crate::{Result, StatsError};

/// Pearson product-moment correlation coefficient of two paired samples.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] if the slices differ in length,
/// [`StatsError::EmptyData`] for fewer than two pairs, and
/// [`StatsError::InvalidParameter`] when either marginal is constant
/// (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::EmptyData("pearson needs >= 2 pairs"));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance",
            value: 0.0,
            constraint: "correlation undefined for constant input",
        });
    }
    Ok((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Phi coefficient (Pearson correlation of two binary samples), used for
/// CNT *type* correlation (metallic vs semiconducting).
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn phi_coefficient(xs: &[bool], ys: &[bool]) -> Result<f64> {
    let xf: Vec<f64> = xs.iter().map(|&b| b as u8 as f64).collect();
    let yf: Vec<f64> = ys.iter().map(|&b| b as u8 as f64).collect();
    pearson(&xf, &yf)
}

/// Sample autocorrelation of a series at the given lag.
///
/// Quantifies how quickly CNT-count correlation decays with distance along
/// the growth direction (finite `L_CNT` makes it drop to zero beyond the CNT
/// length).
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] if the series is shorter than
/// `lag + 2`, and [`StatsError::InvalidParameter`] for constant input.
pub fn autocorrelation(series: &[f64], lag: usize) -> Result<f64> {
    if series.len() < lag + 2 {
        return Err(StatsError::EmptyData("series too short for lag"));
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "variance",
            value: 0.0,
            constraint: "autocorrelation undefined for constant input",
        });
    }
    let num: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_samples_near_zero() {
        // Deterministic pseudo-random pairs via LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..20_000).map(|_| next()).collect();
        let ys: Vec<f64> = (0..20_000).map(|_| next()).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.03, "r = {r}");
    }

    #[test]
    fn validation() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn phi_of_identical_vectors_is_one() {
        let xs = [true, false, true, true, false, false, true];
        assert!((phi_coefficient(&xs, &xs).unwrap() - 1.0).abs() < 1e-12);
        let inv: Vec<bool> = xs.iter().map(|b| !b).collect();
        assert!((phi_coefficient(&xs, &inv).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_alternating_series() {
        let series: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = autocorrelation(&series, 1).unwrap();
        let r2 = autocorrelation(&series, 2).unwrap();
        assert!(r1 < -0.9, "lag-1 {r1}");
        assert!(r2 > 0.9, "lag-2 {r2}");
        assert!((autocorrelation(&series, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_validation() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err());
        assert!(autocorrelation(&[3.0, 3.0, 3.0, 3.0], 1).is_err());
    }
}
