//! Streaming descriptive statistics (Welford) and batch summaries.

use crate::{Result, StatsError};

/// Numerically stable streaming accumulator for mean/variance/extrema.
///
/// Implements Welford's online algorithm; merging two accumulators uses the
/// parallel (Chan et al.) update so Monte-Carlo worker threads can each keep
/// a private `Summary` and combine at the end.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary of a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (order-independent result).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Sample variance (divides by `n − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] for fewer than two observations.
    pub fn sample_variance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::EmptyData("sample variance needs n >= 2"));
        }
        Ok((self.m2 / (self.n - 1) as f64).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyData`] for fewer than two observations.
    pub fn std_error(&self) -> Result<f64> {
        Ok((self.sample_variance()? / self.n as f64).sqrt())
    }

    /// Coefficient of variation `σ/µ`; the statistical-averaging law of
    /// \[Raychowdhury 09, Zhang 09a\] predicts this scales as `1/√N` with
    /// the CNT count.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the mean is zero.
    pub fn cov(&self) -> Result<f64> {
        if self.mean == 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: 0.0,
                constraint: "coefficient of variation undefined for zero mean",
            });
        }
        Ok(self.std_dev() / self.mean.abs())
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.sample_variance().is_err());
        assert!(s.std_error().is_err());
    }

    #[test]
    fn known_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sample_variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq = Summary::of(&all);
        let mut a = Summary::of(&all[..37]);
        let b = Summary::of(&all[37..]);
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cov_and_from_iterator() {
        let s: Summary = vec![10.0, 10.0, 10.0].into_iter().collect();
        assert_eq!(s.cov().unwrap(), 0.0);
        let z = Summary::of(&[-1.0, 1.0]);
        assert!(z.cov().is_err());
    }
}
