//! Deterministic seed derivation — the workspace's one seed-splitting rule.
//!
//! Every parallel or streamed computation in this workspace is a pure
//! function of `(spec, seed)`: worker counts and scheduling never change a
//! byte. That property rests on a single derivation rule, defined here and
//! re-exported by `cnfet_sim::engine` for the layers above:
//!
//! ```text
//! child = base ^ SplitMix64(index + 1)
//! ```
//!
//! ([`split_seed`]). The `+ 1` keeps `split_seed(base, 0) != base`, so a
//! parent stream never collides with its first child.
//!
//! ## Derivation conventions
//!
//! Call sites fall into three patterns, all built from [`split_seed`]:
//!
//! * **Indexed fan-out** — item `i` of a sweep, batch `b` of an adaptive
//!   Monte-Carlo run, worker `k` of a parallel engine, die `d` of a wafer:
//!   `split_seed(base, i)`. Results are independent of which worker
//!   evaluates which index.
//! * **Salted sub-streams** — a fixed ASCII tag separates *kinds* of
//!   randomness hanging off one base seed, so adding a consumer never
//!   shifts another's stream: `split_seed(base, SALT)`. Existing salts:
//!   `0x636E_7463` (`"cntc"`, count-model sampling), `0x7046_6D63`
//!   (`"pFmc"`, MC back-end evaluation), `0x636F_6F70` (`"coop"`,
//!   co-optimization restarts), and the wafer-field knob salts in
//!   `cnfet-pipeline`.
//! * **Value-keyed streams** — when the natural key is a value rather than
//!   an index, its bits are the index: `split_seed(base, w.to_bits())`
//!   (per-width MC memoization in `cnfet-core`).
//!
//! Composition nests: `split_seed(split_seed(base, salt), index)` gives a
//! salted family of indexed streams. Because [`splitmix64`] is a bijective
//! finalizer, distinct indices always produce distinct child seeds for a
//! fixed base.

/// SplitMix64 finalizer — a bijective avalanche mix that decorrelates
/// nearby indices into statistically independent seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derive the `index`-th child seed of `base` (see the module docs for the
/// derivation conventions built on this rule).
///
/// This is the deterministic seed-splitting rule every fan-out layer in
/// the workspace uses — parallel Monte-Carlo workers, scenario sweeps,
/// adaptive MC batches, co-optimization restarts, and wafer die streams —
/// so reproducibility for a given `(base, index)` pair is independent of
/// worker count and scheduling.
pub fn split_seed(base: u64, index: u64) -> u64 {
    base ^ splitmix64(index.wrapping_add(1))
}

/// A deterministic RNG seeded from a derived seed — the one constructor
/// consumers use to turn a [`split_seed`] child into a sample stream.
///
/// Centralizing the generator choice here means every layer draws from
/// the same algorithm; callers only ever see an opaque
/// [`rand::RngCore`], so the concrete generator can evolve without
/// touching call sites (recorded artifacts pin it via their tests).
pub fn seeded_rng(seed: u64) -> impl rand::RngCore {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_distinct_and_differ_from_base() {
        let base = 20100613;
        let children: Vec<u64> = (0..64).map(|i| split_seed(base, i)).collect();
        for (i, &a) in children.iter().enumerate() {
            assert_ne!(a, base, "child {i} collided with its base");
            for &b in &children[i + 1..] {
                assert_ne!(a, b, "distinct indices must give distinct seeds");
            }
        }
    }

    #[test]
    fn derivation_is_the_documented_formula() {
        // The rule is a public contract: artifacts recorded under it must
        // reparse bit-identically forever.
        assert_eq!(split_seed(7, 3), 7 ^ splitmix64(4));
        assert_eq!(split_seed(0, u64::MAX), splitmix64(0));
    }

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference value of the SplitMix64 finalizer at x = 0 (Steele,
        // Lea, Flood; also the JDK SplittableRandom mix).
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
    }
}
