//! Fitting distributions to measured data — the wafer-characterization
//! entry point.
//!
//! The paper's flow assumes the pitch statistics of \[Zhang 09a\] are
//! known. In practice a fab measures inter-CNT pitches (e.g. from SEM
//! line scans) and must recover `(S̄, σ_S)` before any yield math can
//! run. This module fits the workspace's pitch model
//! ([`TruncatedGaussian`] on `[0, ∞)`) to samples by moment matching,
//! with a goodness-of-fit check.

use crate::dist::{ContinuousDist, TruncatedGaussian};
use crate::{Result, StatsError, Summary};

/// Result of fitting a positive truncated Gaussian to samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PitchFit {
    /// The fitted distribution (achieved moments match the sample's).
    pub dist: TruncatedGaussian,
    /// Sample mean the fit reproduces.
    pub sample_mean: f64,
    /// Sample standard deviation the fit reproduces.
    pub sample_sd: f64,
    /// Number of samples used.
    pub n: usize,
    /// Kolmogorov–Smirnov statistic of the fit against the sample.
    pub ks_statistic: f64,
}

impl PitchFit {
    /// Coefficient of variation of the fitted pitch (`σ_S/S̄`) — the input
    /// to [`crate::renewal::RenewalCount`]-based yield models.
    pub fn cov(&self) -> f64 {
        self.sample_sd / self.sample_mean
    }

    /// Rough KS acceptance at the 5 % level: `D < 1.36/√n`.
    pub fn acceptable(&self) -> bool {
        self.ks_statistic < 1.36 / (self.n as f64).sqrt()
    }
}

/// Fit a positive truncated Gaussian to pitch samples by matching the
/// sample mean and standard deviation, then score it with the KS
/// statistic.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for fewer than 8 samples,
/// [`StatsError::InvalidParameter`] for non-positive samples, and
/// propagates moment-matching failures (CoV beyond what the family can
/// realize, ≈ 0.85).
pub fn fit_pitch(samples: &[f64]) -> Result<PitchFit> {
    if samples.len() < 8 {
        return Err(StatsError::EmptyData("fit_pitch needs >= 8 samples"));
    }
    for &x in samples {
        if !(x.is_finite() && x > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "sample",
                value: x,
                constraint: "pitches must be finite and > 0",
            });
        }
    }
    let summary = Summary::of(samples);
    let mean = summary.mean();
    let sd = summary.sample_variance()?.sqrt();
    let dist = TruncatedGaussian::positive_with_moments(mean, sd)?;

    // KS statistic against the fitted CDF.
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }

    Ok(PitchFit {
        dist,
        sample_mean: mean,
        sample_sd: sd,
        n: samples.len(),
        ks_statistic: d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_known_parameters() {
        let truth = TruncatedGaussian::positive_with_moments(4.0, 3.2).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples = truth.sample_n(&mut rng, 20_000);
        let fit = fit_pitch(&samples).unwrap();
        assert!(
            (fit.sample_mean - 4.0).abs() < 0.08,
            "mean {}",
            fit.sample_mean
        );
        assert!((fit.cov() - 0.8).abs() < 0.03, "cov {}", fit.cov());
        assert!(fit.acceptable(), "KS statistic {}", fit.ks_statistic);
    }

    #[test]
    fn rejects_wrong_family() {
        // Uniform samples have matchable moments but a different shape:
        // the moment fit must score a poor KS statistic.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(14);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.gen_range(0.5..8.5)).collect();
        let fit = fit_pitch(&samples).unwrap();
        assert!(
            !fit.acceptable(),
            "uniform data must not fit: KS = {}",
            fit.ks_statistic
        );
    }

    #[test]
    fn extreme_cov_reports_no_convergence() {
        // Exponential-like data (CoV ≈ 1) exceeds what a positive truncated
        // Gaussian can realize; the fit reports it instead of guessing.
        let exp = crate::dist::Exponential::from_mean(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(16);
        let samples = exp.sample_n(&mut rng, 20_000);
        assert!(matches!(
            fit_pitch(&samples),
            Err(crate::StatsError::NoConvergence(_))
        ));
    }

    #[test]
    fn validation() {
        assert!(fit_pitch(&[1.0; 4]).is_err());
        assert!(fit_pitch(&[1.0, 2.0, -1.0, 3.0, 1.0, 2.0, 1.5, 2.5]).is_err());
        assert!(fit_pitch(&[1.0, 2.0, f64::NAN, 3.0, 1.0, 2.0, 1.5, 2.5]).is_err());
    }

    #[test]
    fn fit_feeds_the_yield_model() {
        // End-to-end: fitted pitch → renewal failure probability is close
        // to the truth's.
        use crate::renewal::{CountModel, RenewalCount};
        let truth = TruncatedGaussian::positive_with_moments(4.0, 3.2).unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        let samples = truth.sample_n(&mut rng, 30_000);
        let fit = fit_pitch(&samples).unwrap();
        let p_true = RenewalCount::new(truth, CountModel::GaussianSum)
            .failure_probability(103.0, 0.531)
            .unwrap();
        let p_fit = RenewalCount::new(fit.dist, CountModel::GaussianSum)
            .failure_probability(103.0, 0.531)
            .unwrap();
        let ratio = p_fit / p_true;
        assert!(
            (0.5..2.0).contains(&ratio),
            "fitted model diverged: {p_fit:.3e} vs {p_true:.3e}"
        );
    }
}
