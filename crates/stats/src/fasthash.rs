//! A fast, deterministic hasher for hot fixed-width keys.
//!
//! The memo maps on every hot path of the workspace — curve knots
//! (`ln pF` at `w.to_bits()`), Monte-Carlo points, quantized wafer
//! scenarios, convolution-plan results — are keyed by one to three `u64`
//! bit patterns. `std`'s default SipHash is DoS-resistant but costs more
//! than the table lookup it guards; none of these maps is fed
//! attacker-controlled keys, so a multiply–rotate mixer is both safe and
//! several times faster.
//!
//! [`FastHasher`] is a Fibonacci-multiplicative mixer (the SplitMix64
//! increment as the multiplier) with a rotate between words. It is
//! deterministic across runs and platforms — no random per-process seed —
//! which also keeps hash-map *iteration* free of a hidden nondeterminism
//! source (the workspace never iterates these maps where order matters,
//! but determinism is a workspace-wide invariant worth defending).
//!
//! ```
//! use cnt_stats::fasthash::FastMap;
//!
//! let mut memo: FastMap<u64, f64> = FastMap::default();
//! memo.insert(42f64.to_bits(), 0.5);
//! assert_eq!(memo.get(&42f64.to_bits()), Some(&0.5));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The SplitMix64 golden-ratio increment — an odd constant with good
/// avalanche behaviour as a multiplier.
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply–rotate hasher for small fixed-width keys (see module docs).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(PHI64).rotate_left(26);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy states still spread across the
        // table's bucket bits (HashMap uses the high bits too).
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(PHI64);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(last) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (zero-sized, deterministic).
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<H: std::hash::Hash>(v: &H) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let k = (1u64, 2u64, 3u64);
        assert_eq!(hash_one(&k), hash_one(&k));
        assert_ne!(hash_one(&(1u64, 2u64, 3u64)), hash_one(&(1u64, 3u64, 2u64)));
    }

    #[test]
    fn nearby_float_keys_spread() {
        // Widths on a bisection grid differ in few mantissa bits; their
        // hashes must not collide in the low bits HashMap buckets on.
        let mut low_bits = FastSet::default();
        for i in 0..1000u32 {
            let w = 5.0 + f64::from(i) * 0.01;
            low_bits.insert(hash_one(&w.to_bits()) & 0xFFF);
        }
        assert!(
            low_bits.len() > 700,
            "only {} distinct low-12-bit values out of 1000",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_padding_is_length_aware() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"a");
        b.write(b"b");
        // Same logical content split differently is allowed to differ, but
        // content vs padded content must differ.
        let mut c = FastHasher::default();
        c.write(b"ab\0\0");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FastMap<(u64, u64, u64), f64> = FastMap::default();
        for i in 0..100u64 {
            m.insert((i, i * 3, i * 7), i as f64);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(9, 27, 63)), Some(&9.0));
    }
}
