//! Property-based tests for the statistics substrate.

use cnt_stats::dist::{ContinuousDist, DiscreteDist, TruncatedGaussian};
use cnt_stats::renewal::{CountModel, RenewalCount, StartPolicy};
use cnt_stats::{Histogram, Summary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn truncated_gaussian_cdf_is_monotone(
        mean in 1.0f64..20.0,
        cov in 0.1f64..0.8,
        a in -5.0f64..30.0,
        b in -5.0f64..30.0,
    ) {
        let t = TruncatedGaussian::positive_with_moments(mean, cov * mean).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.cdf(lo) <= t.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&t.cdf(lo)));
    }

    #[test]
    fn truncated_gaussian_quantile_roundtrip(
        mean in 2.0f64..10.0,
        cov in 0.2f64..0.8,
        p in 0.01f64..0.99,
    ) {
        let t = TruncatedGaussian::positive_with_moments(mean, cov * mean).unwrap();
        let x = t.quantile(p);
        prop_assert!(x >= 0.0);
        prop_assert!((t.cdf(x) - p).abs() < 1e-5,
            "cdf(quantile({p})) = {} at x = {x}", t.cdf(x));
    }

    #[test]
    fn pgf_is_monotone_and_bounded(
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
        z1 in 0.0f64..1.0,
        z2 in 0.0f64..1.0,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = DiscreteDist::from_weights(&weights).unwrap();
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(d.pgf(lo) <= d.pgf(hi) + 1e-12);
        prop_assert!(d.pgf(hi) <= 1.0 + 1e-12);
        prop_assert!(d.pgf(lo) >= 0.0);
        prop_assert!((d.pgf(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renewal_failure_probability_decreases_with_width(
        w1 in 10.0f64..200.0,
        delta in 1.0f64..50.0,
        pf in 0.05f64..0.95,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.2).unwrap();
        let rc = RenewalCount::new(pitch, CountModel::GaussianSum);
        let p1 = rc.failure_probability(w1, pf).unwrap();
        let p2 = rc.failure_probability(w1 + delta, pf).unwrap();
        prop_assert!(p2 <= p1 * 1.001 + 1e-15, "pF({w1}) = {p1} < pF({}) = {p2}", w1 + delta);
    }

    #[test]
    fn renewal_failure_probability_increases_with_pf(
        w in 20.0f64..150.0,
        pf1 in 0.05f64..0.9,
        bump in 0.01f64..0.09,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.2).unwrap();
        let rc = RenewalCount::new(pitch, CountModel::GaussianSum);
        let p1 = rc.failure_probability(w, pf1).unwrap();
        let p2 = rc.failure_probability(w, pf1 + bump).unwrap();
        prop_assert!(p2 >= p1 - 1e-15);
    }

    #[test]
    fn summary_merge_equals_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let seq = Summary::of(&xs);
        let mut a = Summary::of(&xs[..split]);
        let b = Summary::of(&xs[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-6);
    }

    #[test]
    fn histogram_conserves_weight(
        xs in prop::collection::vec(-10.0f64..110.0, 1..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        h.extend(xs.iter().copied());
        let binned: f64 = (0..h.nbins()).map(|i| h.bin_weight(i)).sum();
        let total = binned + h.underflow() + h.overflow();
        prop_assert!((total - xs.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn count_distribution_mean_tracks_width(
        w in 20.0f64..300.0,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.2).unwrap();
        let rc = RenewalCount::new(pitch, CountModel::GaussianSum);
        let d = rc.distribution(w).unwrap();
        // Stationary renewal: E[N] = W/S̄ (CLT approximation within 5 %).
        prop_assert!((d.mean() - w / 4.0).abs() < 0.05 * (w / 4.0) + 0.5,
            "W={w}: mean {} vs {}", d.mean(), w / 4.0);
    }

    #[test]
    fn batched_gaussian_sum_is_bit_identical_to_scalar(
        widths in prop::collection::vec(5.0f64..2000.0, 1..8),
        pf in 0.0f64..1.0,
        ordinary in prop::bool::ANY,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap();
        let start = if ordinary { StartPolicy::Ordinary } else { StartPolicy::Stationary };
        let rc = RenewalCount::new(pitch, CountModel::GaussianSum).with_start(start);
        let batch = rc.failure_probabilities(&widths, pf).unwrap();
        for (&w, &b) in widths.iter().zip(&batch) {
            let scalar = rc.failure_probability(w, pf).unwrap();
            prop_assert_eq!(b.to_bits(), scalar.to_bits(),
                "W={}: batch {:.17e} vs scalar {:.17e}", w, b, scalar);
        }
    }

    #[test]
    fn sampler_fill_is_bit_identical_to_scalar_loop(
        width in 10.0f64..400.0,
        pf in 0.05f64..0.95,
        n in 1usize..200,
        seed in 0u64..u64::MAX,
        ordinary in prop::bool::ANY,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap();
        let start = if ordinary { StartPolicy::Ordinary } else { StartPolicy::Stationary };
        let rc = RenewalCount::new(pitch, CountModel::GaussianSum).with_start(start);
        let sampler = rc.failure_sampler(width, pf).unwrap();
        let mut fill_rng = StdRng::seed_from_u64(seed);
        let mut loop_rng = StdRng::seed_from_u64(seed);
        let mut buf = vec![0.0f64; n];
        sampler.sample_tail_fill(&mut fill_rng, &mut buf);
        for (i, &filled) in buf.iter().enumerate() {
            let scalar = sampler.sample_tail(&mut loop_rng);
            prop_assert_eq!(filled.to_bits(), scalar.to_bits(), "draw {} of {}", i, n);
        }
    }

    // Runs the O(W²/step²) uncached reference per width, so the width list
    // is kept short; the full [5, 2000] range is still drawn from.
    #[test]
    fn batched_conv_is_bit_identical_to_scalar_and_reference(
        widths in prop::collection::vec(5.0f64..2000.0, 1..4),
        pf in 0.0f64..1.0,
        step in 0.08f64..0.2,
        ordinary in prop::bool::ANY,
    ) {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap();
        let start = if ordinary { StartPolicy::Ordinary } else { StartPolicy::Stationary };
        let rc = RenewalCount::new(pitch, CountModel::Convolution { step }).with_start(start);
        // Batched entry, plan-cached scalar entry, and the uncached
        // reference must agree to the bit at every width.
        let batch = rc.failure_probabilities_conv(&widths, pf, step).unwrap();
        let scalar = rc.failure_probabilities(&widths, pf).unwrap();
        for ((&w, &b), &s) in widths.iter().zip(&batch).zip(&scalar) {
            let reference = rc.failure_probability_conv_reference(w, pf, step).unwrap();
            prop_assert_eq!(b.to_bits(), reference.to_bits(),
                "batch vs reference at W={}: {:.17e} vs {:.17e}", w, b, reference);
            prop_assert_eq!(s.to_bits(), reference.to_bits(),
                "scalar vs reference at W={}: {:.17e} vs {:.17e}", w, s, reference);
        }
    }
}
