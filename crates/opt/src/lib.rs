//! # cnfet-opt
//!
//! The process–design co-optimization engine — the search loop the paper's
//! Sec 3.2 heuristic gestures at and Hills et al. (*"Rapid Co-optimization
//! of Processing and Circuit Design to Overcome Carbon Nanotube
//! Variations"*) builds an entire flow around. Where the rest of the
//! workspace *evaluates* fixed scenarios, this crate *searches* the joint
//! processing/circuit space:
//!
//! * a declarative problem ([`cnfet_pipeline::CoOptSpec`]): a base
//!   scenario, ordered search axes over any scenario field (correlation
//!   length, processing corner, node, grid policy, …), a scalarized
//!   circuit-cost objective ([`cnfet_core::objective::CostWeights`]), and
//!   a strategy selection;
//! * a pluggable [`Searcher`] trait with four shipped strategies —
//!   [`GridScan`] (exhaustive, exact Pareto front), [`CoordinateDescent`]
//!   (seeded descent with restarts, evaluating a fraction of the space),
//!   [`GeneticSearcher`] (seeded population with tournament selection,
//!   crossover, mutation, and elitism), and [`HalvingLadder`]
//!   (successive halving of Monte-Carlo precision around any inner
//!   strategy — explore coarse, promote the top `1/eta`, confirm the
//!   survivors at the spec's own precision);
//! * candidate batches fanned through the shared-cache
//!   [`cnfet_pipeline::YieldService`], so warm `pF(W)` curves, mapped
//!   designs, and the worker-count byte-determinism contract all carry
//!   over from the sweep machinery;
//! * a [`cnfet_pipeline::ParetoFront`] artifact trading **process
//!   demand** (how far along each axis a candidate reaches) against
//!   **circuit cost** (`W_min`, upsizing penalty, failure-budget margin),
//!   with dominated-point pruning.
//!
//! Determinism contract: a co-optimization run is a pure function of
//! `(spec, seed)`. Search decisions are sequential and seeded, candidate
//! batches are evaluated through index-ordered streaming sweeps, and
//! repeated evaluations are memoized — so the emitted
//! [`cnfet_pipeline::CoOptReport`] is byte-identical for any worker
//! count.
//!
//! ## Example
//!
//! ```
//! use cnfet_opt::run_co_opt;
//! use cnfet_pipeline::{CoOptSpec, YieldService};
//!
//! # fn main() -> cnfet_pipeline::Result<()> {
//! let spec = CoOptSpec::parse(r#"{
//!     "name": "corr-vs-width",
//!     "base": { "backend": "gaussian-sum", "rho": "paper", "fast_design": true,
//!               "correlation": "growth+aligned-layout" },
//!     "search": { "l_cnt_um": [50, 100, 200] },
//!     "searcher": "grid"
//! }"#)?;
//! let report = run_co_opt(&YieldService::new(), &spec, 7, 2)?;
//! // Longer CNT correlation relaxes the requirement: W_min falls.
//! let front = report.front.points();
//! assert!(front.last().unwrap().w_min_nm < front[0].w_min_nm);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod fab;
pub mod searcher;
pub mod service;

pub use engine::{run_co_opt, run_with_searcher, Candidate, SearchContext};
pub use fab::{run_fab_search, FabAxis, FabCandidate, FabReport, FabSpec, FIELD_PARAMS};
pub use searcher::{
    searcher_for, CoordinateDescent, GeneticSearcher, GridScan, HalvingLadder, Searcher,
};
pub use service::OptService;
