//! `OptService` — the co-optimization-enabled envelope front end.
//!
//! A thin wrapper over [`YieldService`] that serves the full v1 wire
//! surface **including** `co_opt` request bodies, which a bare yield
//! service answers with a structured `unsupported_body` error. Its
//! `describe` response advertises `co_opt` among the supported request
//! bodies, so wire clients can discover the capability before relying on
//! it. Everything else — evaluate, sweep, schema rejection, the
//! never-fails JSON-lines loop — delegates to the wrapped service and its
//! shared bounded caches. `repro serve` runs one of these.

use crate::engine::run_co_opt;
use cnfet_pipeline::{
    RequestBody, ResponseBody, ServiceConfig, ServiceError, ServiceInfo, YieldRequest,
    YieldResponse, YieldService, SCHEMA_VERSION,
};

/// The co-optimization-enabled request/response front end.
///
/// Cloning is cheap and shares the underlying service's caches.
#[derive(Debug, Clone, Default)]
pub struct OptService {
    inner: YieldService,
}

impl OptService {
    /// A front end over a fresh default-configured service.
    pub fn new() -> Self {
        Self::default()
    }

    /// A front end over a fresh service with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        Self {
            inner: YieldService::with_config(config),
        }
    }

    /// Wrap an existing (possibly warm, possibly shared) service.
    pub fn from_service(inner: YieldService) -> Self {
        Self { inner }
    }

    /// The wrapped yield service (shared caches, typed evaluate/sweep).
    pub fn service(&self) -> &YieldService {
        &self.inner
    }

    /// Capability discovery: the bare-service surface plus `co_opt`.
    pub fn describe(&self) -> ServiceInfo {
        ServiceInfo::with_co_opt()
    }

    /// Answer one request, streaming every response through `emit`. A
    /// `co_opt` request emits exactly one response (the Pareto report or
    /// a structured error); everything else behaves exactly like
    /// [`YieldService::stream`].
    pub fn stream(&self, request: &YieldRequest, emit: &mut dyn FnMut(YieldResponse)) {
        self.stream_while(request, &mut |response| {
            emit(response);
            true
        });
    }

    /// The cancellation-aware form of [`OptService::stream`]: `emit`
    /// returns `false` once the client is gone, streaming stops (and an
    /// in-flight sweep cancels) as soon as that is observed. Returns
    /// `false` when the exchange was aborted that way.
    pub fn stream_while(
        &self,
        request: &YieldRequest,
        emit: &mut dyn FnMut(YieldResponse) -> bool,
    ) -> bool {
        if request.schema != SCHEMA_VERSION {
            // The wrapped service owns schema rejection.
            return self.inner.stream_while(request, emit);
        }
        match &request.body {
            RequestBody::CoOpt {
                spec,
                seed,
                workers,
            } => {
                let workers = workers.unwrap_or(self.inner.config().sweep_workers);
                match run_co_opt(&self.inner, spec, *seed, workers) {
                    Ok(report) => {
                        emit(YieldResponse::new(&request.id, ResponseBody::CoOpt(report)))
                    }
                    Err(e) => emit(YieldResponse::error(
                        &request.id,
                        ServiceError::from_pipeline(&e),
                    )),
                }
            }
            RequestBody::Describe => emit(YieldResponse::new(
                &request.id,
                ResponseBody::Describe(self.describe()),
            )),
            _ => self.inner.stream_while(request, emit),
        }
    }

    /// Answer one request, collecting all responses.
    pub fn handle(&self, request: &YieldRequest) -> Vec<YieldResponse> {
        let mut out = Vec::new();
        self.stream(request, &mut |response| out.push(response));
        out
    }

    /// Parse and answer one JSON-lines request; never fails (malformed
    /// input becomes a structured error response with a best-effort id) —
    /// the `repro serve` daemon loop.
    pub fn handle_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse)) {
        cnfet_pipeline::envelope::dispatch_line(line, emit, |request, emit| {
            self.stream(request, emit)
        });
    }

    /// The cancellation-aware form of [`OptService::handle_line`] (the
    /// [`cnfet_pipeline::LineServer`] surface the sharded router drives).
    pub fn handle_line_while(
        &self,
        line: &str,
        emit: &mut dyn FnMut(YieldResponse) -> bool,
    ) -> bool {
        cnfet_pipeline::envelope::dispatch_line_while(line, emit, |request, emit| {
            self.stream_while(request, emit)
        })
    }
}

impl cnfet_pipeline::LineServer for OptService {
    fn serve_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse) -> bool) -> bool {
        self.handle_line_while(line, emit)
    }
}
