//! Candidate evaluation, memoization, and report assembly.
//!
//! A [`SearchContext`] is the substrate every [`crate::Searcher`] runs on:
//! it turns choice vectors into candidate scenarios (via
//! [`CoOptSpec::scenario`]), fans un-memoized candidates through the
//! shared-cache [`YieldService`] as one index-ordered streaming sweep per
//! batch, scores each result with the spec's cost functional, and records
//! everything it ever evaluated. Batch seeds derive from the run seed by
//! batch counter, and the search logic itself is sequential — so the
//! evaluated set, every score, and the final [`CoOptReport`] are a pure
//! function of `(spec, seed)`, independent of worker count.

use cnfet_core::objective::CandidateMetrics;
use cnfet_pipeline::{
    CoOptReport, CoOptSpec, ParetoFront, ParetoPoint, Result, ScenarioReport, YieldService,
};
use cnt_stats::seed::split_seed;
use std::collections::BTreeMap;

/// One evaluated point of the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The axis choice indices that name the point.
    pub choice: Vec<usize>,
    /// The full scenario evaluation.
    pub report: ScenarioReport,
    /// Normalized process-demand index in `[0, 1]`.
    pub demand: f64,
    /// The scalarized circuit cost under the spec's weights.
    pub cost: f64,
}

impl Candidate {
    /// The candidate as a Pareto-artifact point.
    pub fn to_point(&self) -> ParetoPoint {
        ParetoPoint {
            scenario: self.report.name.clone(),
            choice: self.choice.iter().map(|&i| i as u64).collect(),
            demand: self.demand,
            cost: self.cost,
            w_min_nm: self.report.w_min_nm,
            upsizing_penalty: self.report.upsizing_penalty,
            p_req: self.report.p_req,
            p_at_w_min: self.report.p_at_w_min,
            relaxation: self.report.relaxation,
        }
    }
}

/// The evaluation substrate a [`crate::Searcher`] drives (see the module
/// docs for the determinism contract).
pub struct SearchContext<'a> {
    spec: &'a CoOptSpec,
    service: &'a YieldService,
    seed: u64,
    workers: usize,
    batches: u64,
    memo: BTreeMap<Vec<usize>, Candidate>,
}

impl<'a> SearchContext<'a> {
    /// A fresh context over a (possibly warm) service.
    pub fn new(spec: &'a CoOptSpec, service: &'a YieldService, seed: u64, workers: usize) -> Self {
        Self {
            spec,
            service,
            seed,
            workers: workers.max(1),
            batches: 0,
            memo: BTreeMap::new(),
        }
    }

    /// The problem being searched.
    pub fn spec(&self) -> &CoOptSpec {
        self.spec
    }

    /// The run's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Distinct candidates evaluated so far.
    pub fn evaluations(&self) -> usize {
        self.memo.len()
    }

    /// Evaluate a batch of choice vectors, memoized: already-seen
    /// candidates are answered from the record, the rest fan through the
    /// service as one streaming sweep. Results come back in request
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates candidate-construction and evaluation errors (a failing
    /// candidate aborts the run — the spec was validated up front, so a
    /// failure here is a solver/model error worth surfacing, not noise).
    pub fn evaluate(&mut self, choices: &[Vec<usize>]) -> Result<Vec<Candidate>> {
        let mut fresh: Vec<Vec<usize>> = Vec::new();
        let mut queued: std::collections::BTreeSet<&Vec<usize>> = std::collections::BTreeSet::new();
        for choice in choices {
            if !self.memo.contains_key(choice) && queued.insert(choice) {
                fresh.push(choice.clone());
            }
        }
        if !fresh.is_empty() {
            let specs = fresh
                .iter()
                .map(|choice| self.spec.scenario(choice))
                .collect::<Result<Vec<_>>>()?;
            let batch_seed = split_seed(self.seed, self.batches);
            self.batches += 1;
            let handle = self
                .service
                .sweep_with_workers(specs, batch_seed, self.workers);
            let mut reports = Vec::with_capacity(fresh.len());
            for item in handle {
                reports.push(item.report?);
            }
            for (choice, report) in fresh.into_iter().zip(reports) {
                let demand = self.spec.demand(&choice)?;
                let cost = self.spec.objective.cost(&CandidateMetrics {
                    w_min_nm: report.w_min_nm,
                    upsizing_penalty: report.upsizing_penalty,
                    p_req: report.p_req,
                    p_at_w_min: report.p_at_w_min,
                    area_overhead: report.fault.as_ref().map_or(1.0, |f| f.area_overhead),
                    yield_shortfall: report.fault.as_ref().map_or(0.0, |f| f.shortfall),
                });
                self.memo.insert(
                    choice.clone(),
                    Candidate {
                        choice,
                        report,
                        demand,
                        cost,
                    },
                );
            }
        }
        Ok(choices
            .iter()
            .map(|choice| self.memo[choice].clone())
            .collect())
    }

    /// Assemble the run artifact from everything evaluated so far. The
    /// best candidate is the minimum-cost one, ties broken by canonical
    /// (lexicographic) choice order; the front prunes dominated points
    /// over `(demand, cost)`.
    ///
    /// # Errors
    ///
    /// [`cnfet_pipeline::PipelineError::InvalidSpec`] when nothing was
    /// evaluated (a searcher contract violation).
    pub fn into_report(self, searcher: &'static str) -> Result<CoOptReport> {
        let mut best: Option<&Candidate> = None;
        for candidate in self.memo.values() {
            // Strict `<` keeps the earlier (lexicographically smaller
            // choice) candidate on ties — BTreeMap iterates in choice
            // order.
            if best.is_none_or(|b| candidate.cost < b.cost) {
                best = Some(candidate);
            }
        }
        let best = best
            .ok_or_else(|| cnfet_pipeline::PipelineError::InvalidSpec {
                field: "search",
                msg: "the searcher evaluated no candidates".into(),
            })?
            .to_point();
        let front = ParetoFront::from_points(self.memo.values().map(Candidate::to_point).collect());
        Ok(CoOptReport {
            name: self.spec.name.clone(),
            searcher: searcher.to_string(),
            seed: self.seed,
            candidates: self.spec.candidate_count(),
            evaluations: self.memo.len() as u64,
            best,
            front,
        })
    }
}

/// Run a co-optimization study with the strategy its spec selects.
///
/// `workers` bounds the evaluation parallelism of each candidate batch;
/// it never changes a byte of the report.
///
/// # Errors
///
/// Propagates spec validation and candidate evaluation errors.
pub fn run_co_opt(
    service: &YieldService,
    spec: &CoOptSpec,
    seed: u64,
    workers: usize,
) -> Result<CoOptReport> {
    run_with_searcher(
        service,
        spec,
        seed,
        workers,
        &*crate::searcher_for(spec.searcher),
    )
}

/// Run a co-optimization study with an explicit (possibly custom)
/// strategy — the pluggable entry point behind [`run_co_opt`].
///
/// # Errors
///
/// Propagates spec validation and candidate evaluation errors.
pub fn run_with_searcher(
    service: &YieldService,
    spec: &CoOptSpec,
    seed: u64,
    workers: usize,
    searcher: &dyn crate::Searcher,
) -> Result<CoOptReport> {
    spec.validate()?;
    let mut ctx = SearchContext::new(spec, service, seed, workers);
    searcher.search(&mut ctx)?;
    ctx.into_report(searcher.name())
}
