//! Candidate evaluation, memoization, and report assembly.
//!
//! A [`SearchContext`] is the substrate every [`crate::Searcher`] runs on:
//! it turns choice vectors into candidate scenarios (via
//! [`CoOptSpec::scenario`]), fans un-memoized candidates through the
//! shared-cache [`YieldService`] as one index-ordered streaming sweep per
//! batch, scores each result with the spec's cost functional, and records
//! everything it ever evaluated. Batch seeds derive from the run seed by
//! batch counter, and the search logic itself is sequential — so the
//! evaluated set, every score, and the final [`CoOptReport`] are a pure
//! function of `(spec, seed)`, independent of worker count.

use cnfet_core::objective::CandidateMetrics;
use cnfet_pipeline::{
    BackendSpec, CoOptReport, CoOptSpec, ParetoFront, ParetoPoint, Result, RungReport,
    ScenarioReport, SearchReport, YieldService,
};
use cnt_stats::seed::split_seed;
use std::collections::BTreeMap;

/// One evaluated point of the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The axis choice indices that name the point.
    pub choice: Vec<usize>,
    /// The full scenario evaluation.
    pub report: ScenarioReport,
    /// Normalized process-demand index in `[0, 1]`.
    pub demand: f64,
    /// The scalarized circuit cost under the spec's weights.
    pub cost: f64,
}

impl Candidate {
    /// The candidate as a Pareto-artifact point.
    pub fn to_point(&self) -> ParetoPoint {
        ParetoPoint {
            scenario: self.report.name.clone(),
            choice: self.choice.iter().map(|&i| i as u64).collect(),
            demand: self.demand,
            cost: self.cost,
            w_min_nm: self.report.w_min_nm,
            upsizing_penalty: self.report.upsizing_penalty,
            p_req: self.report.p_req,
            p_at_w_min: self.report.p_at_w_min,
            relaxation: self.report.relaxation,
        }
    }
}

/// The evaluation substrate a [`crate::Searcher`] drives (see the module
/// docs for the determinism contract).
pub struct SearchContext<'a> {
    spec: &'a CoOptSpec,
    service: &'a YieldService,
    seed: u64,
    workers: usize,
    batches: u64,
    /// Full-precision evaluations — the only ones that feed `best`/`front`.
    memo: BTreeMap<Vec<usize>, Candidate>,
    /// Relaxed-precision evaluations, keyed by `(relax bits, choice)`.
    coarse: BTreeMap<(u64, Vec<usize>), Candidate>,
    /// Current Monte-Carlo precision relaxation factor (1 = spec's own).
    relax: f64,
    coarse_evals: u64,
    generations: u64,
    rungs: Vec<RungReport>,
    adaptive: bool,
}

impl<'a> SearchContext<'a> {
    /// A fresh context over a (possibly warm) service.
    pub fn new(spec: &'a CoOptSpec, service: &'a YieldService, seed: u64, workers: usize) -> Self {
        Self {
            spec,
            service,
            seed,
            workers: workers.max(1),
            batches: 0,
            memo: BTreeMap::new(),
            coarse: BTreeMap::new(),
            relax: 1.0,
            coarse_evals: 0,
            generations: 0,
            rungs: Vec::new(),
            adaptive: false,
        }
    }

    /// The problem being searched.
    pub fn spec(&self) -> &CoOptSpec {
        self.spec
    }

    /// The run's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Distinct candidates evaluated at full precision so far.
    pub fn evaluations(&self) -> usize {
        self.memo.len()
    }

    /// Every fresh evaluation so far, coarse and full-precision alike —
    /// the budget a precision ladder meters its rungs against.
    pub fn fresh_evaluations(&self) -> u64 {
        self.coarse_evals + self.memo.len() as u64
    }

    /// Set the Monte-Carlo precision relaxation for subsequent
    /// [`SearchContext::evaluate`] calls: `rel_ci` is multiplied by
    /// `relax` (capped at 0.5) and the trial budget divided by `relax²`.
    /// Values at or below 1 restore the spec's own precision; on analytic
    /// back-ends the override is a no-op (evaluations land in the
    /// full-precision memo either way, so later rungs are free re-reads).
    pub fn set_precision_relax(&mut self, relax: f64) {
        self.relax = if relax.is_finite() && relax > 1.0 {
            relax
        } else {
            1.0
        };
    }

    /// The active precision relaxation factor (1 = spec's own precision).
    pub fn precision_relax(&self) -> f64 {
        if self.relaxed_backend().is_some() {
            self.relax
        } else {
            1.0
        }
    }

    /// Mark the run as adaptively searched, so the report carries a
    /// `search` provenance block even when no generations or rungs were
    /// recorded (e.g. `generations = 0`).
    pub fn record_search(&mut self) {
        self.adaptive = true;
    }

    /// Record one evolved generation for the provenance block.
    pub fn record_generation(&mut self) {
        self.adaptive = true;
        self.generations += 1;
    }

    /// Record one precision rung for the provenance block.
    pub fn record_rung(&mut self, relax: f64, evaluations: u64, promoted: u64) {
        self.adaptive = true;
        self.rungs.push(RungReport {
            relax,
            evaluations,
            promoted,
        });
    }

    /// The candidates evaluated at the *current* precision level, in
    /// canonical choice order — what a ladder rung ranks and promotes.
    pub fn evaluated_at_current_precision(&self) -> Vec<&Candidate> {
        match self.relax_key() {
            None => self.memo.values().collect(),
            Some(bits) => self
                .coarse
                .range((bits, Vec::new())..(bits + 1, Vec::new()))
                .map(|(_, c)| c)
                .collect(),
        }
    }

    /// The coarse-memo key of the active relaxation, `None` at full
    /// precision or when the backend ignores the override.
    fn relax_key(&self) -> Option<u64> {
        self.relaxed_backend().map(|_| self.relax.to_bits())
    }

    /// The backend the active relaxation produces, `None` when it leaves
    /// the spec's backend untouched (analytic, or `relax <= 1`).
    fn relaxed_backend(&self) -> Option<BackendSpec> {
        if self.relax <= 1.0 {
            return None;
        }
        match self.spec.base.backend {
            BackendSpec::MonteCarlo {
                rel_ci,
                max_trials,
                batch,
                ci_level,
            } => Some(BackendSpec::MonteCarlo {
                rel_ci: (rel_ci * self.relax).min(0.5),
                // A `relax`× looser CI needs ~relax²× fewer trials; keep
                // at least one batch so the spec stays valid.
                max_trials: ((max_trials as f64 / (self.relax * self.relax)).ceil() as u64)
                    .max(u64::from(batch)),
                batch,
                ci_level,
            }),
            _ => None,
        }
    }

    /// Evaluate a batch of choice vectors, memoized: already-seen
    /// candidates are answered from the record, the rest fan through the
    /// service as one streaming sweep. Results come back in request
    /// order. Under an active precision relaxation the batch runs with a
    /// correspondingly loosened Monte-Carlo backend and is memoized per
    /// relaxation level — only full-precision results enter the report's
    /// `best`/`front`.
    ///
    /// # Errors
    ///
    /// Propagates candidate-construction and evaluation errors (a failing
    /// candidate aborts the run — the spec was validated up front, so a
    /// failure here is a solver/model error worth surfacing, not noise).
    pub fn evaluate(&mut self, choices: &[Vec<usize>]) -> Result<Vec<Candidate>> {
        let relax_key = self.relax_key();
        let backend = self.relaxed_backend();
        let mut fresh: Vec<Vec<usize>> = Vec::new();
        let mut queued: std::collections::BTreeSet<&Vec<usize>> = std::collections::BTreeSet::new();
        for choice in choices {
            let seen = match relax_key {
                None => self.memo.contains_key(choice),
                Some(bits) => self.coarse.contains_key(&(bits, choice.clone())),
            };
            if !seen && queued.insert(choice) {
                fresh.push(choice.clone());
            }
        }
        if !fresh.is_empty() {
            let specs = fresh
                .iter()
                .map(|choice| {
                    let mut spec = self.spec.scenario(choice)?;
                    if let Some(backend) = &backend {
                        // The relaxation only rewrites Monte-Carlo
                        // candidates; an axis that switched the backend
                        // to an analytic kind keeps it.
                        if matches!(spec.backend, BackendSpec::MonteCarlo { .. }) {
                            spec.backend = *backend;
                        }
                    }
                    Ok(spec)
                })
                .collect::<Result<Vec<_>>>()?;
            let batch_seed = split_seed(self.seed, self.batches);
            self.batches += 1;
            let handle = self
                .service
                .sweep_with_workers(specs, batch_seed, self.workers);
            let mut reports = Vec::with_capacity(fresh.len());
            for item in handle {
                reports.push(item.report?);
            }
            for (choice, report) in fresh.into_iter().zip(reports) {
                let demand = self.spec.demand(&choice)?;
                let cost = self.spec.objective.cost(&CandidateMetrics {
                    w_min_nm: report.w_min_nm,
                    upsizing_penalty: report.upsizing_penalty,
                    p_req: report.p_req,
                    p_at_w_min: report.p_at_w_min,
                    area_overhead: report.fault.as_ref().map_or(1.0, |f| f.area_overhead),
                    yield_shortfall: report.fault.as_ref().map_or(0.0, |f| f.shortfall),
                });
                let candidate = Candidate {
                    choice: choice.clone(),
                    report,
                    demand,
                    cost,
                };
                match relax_key {
                    None => {
                        self.memo.insert(choice, candidate);
                    }
                    Some(bits) => {
                        self.coarse_evals += 1;
                        self.coarse.insert((bits, choice), candidate);
                    }
                }
            }
        }
        Ok(choices
            .iter()
            .map(|choice| match relax_key {
                None => self.memo[choice].clone(),
                Some(bits) => self.coarse[&(bits, choice.clone())].clone(),
            })
            .collect())
    }

    /// Assemble the run artifact from everything evaluated so far. The
    /// best candidate is the minimum-cost one, ties broken by canonical
    /// (lexicographic) choice order; the front prunes dominated points
    /// over `(demand, cost)`.
    ///
    /// # Errors
    ///
    /// [`cnfet_pipeline::PipelineError::InvalidSpec`] when nothing was
    /// evaluated (a searcher contract violation).
    pub fn into_report(self, searcher: &'static str) -> Result<CoOptReport> {
        let mut best: Option<&Candidate> = None;
        for candidate in self.memo.values() {
            // Strict `<` keeps the earlier (lexicographically smaller
            // choice) candidate on ties — BTreeMap iterates in choice
            // order.
            if best.is_none_or(|b| candidate.cost < b.cost) {
                best = Some(candidate);
            }
        }
        let best = best
            .ok_or_else(|| cnfet_pipeline::PipelineError::InvalidSpec {
                field: "search",
                msg: "the searcher evaluated no candidates".into(),
            })?
            .to_point();
        let front = ParetoFront::from_points(self.memo.values().map(Candidate::to_point).collect());
        let search = self.adaptive.then_some(SearchReport {
            generations: self.generations,
            coarse_evaluations: self.coarse_evals,
            final_evaluations: self.memo.len() as u64,
            rungs: self.rungs,
        });
        Ok(CoOptReport {
            name: self.spec.name.clone(),
            searcher: searcher.to_string(),
            seed: self.seed,
            candidates: self.spec.candidate_count(),
            evaluations: self.memo.len() as u64,
            search,
            best,
            front,
        })
    }
}

/// Run a co-optimization study with the strategy its spec selects.
///
/// `workers` bounds the evaluation parallelism of each candidate batch;
/// it never changes a byte of the report.
///
/// # Errors
///
/// Propagates spec validation and candidate evaluation errors.
pub fn run_co_opt(
    service: &YieldService,
    spec: &CoOptSpec,
    seed: u64,
    workers: usize,
) -> Result<CoOptReport> {
    run_with_searcher(
        service,
        spec,
        seed,
        workers,
        &*crate::searcher_for(&spec.searcher),
    )
}

/// Run a co-optimization study with an explicit (possibly custom)
/// strategy — the pluggable entry point behind [`run_co_opt`].
///
/// # Errors
///
/// Propagates spec validation and candidate evaluation errors.
pub fn run_with_searcher(
    service: &YieldService,
    spec: &CoOptSpec,
    seed: u64,
    workers: usize,
    searcher: &dyn crate::Searcher,
) -> Result<CoOptReport> {
    spec.validate()?;
    let mut ctx = SearchContext::new(spec, service, seed, workers);
    searcher.search(&mut ctx)?;
    ctx.into_report(searcher.name())
}
