//! Fab-space search: axes over **wafer-field hyperparameters**.
//!
//! [`engine::run_co_opt`](crate::engine::run_co_opt) searches scenario
//! fields — knobs a circuit designer picks. This module searches the
//! knobs a *fab* picks: the hyperparameters of the per-die random fields
//! of a [`WaferSpec`] (radial trend slope, correlated-noise amplitude,
//! noise correlation length). The question it answers is Hills et al.'s
//! "rapid co-optimization" loop pointed at process development: *which
//! achievable combination of wafer-uniformity properties yields the best
//! wafer for this design?*
//!
//! A [`FabSpec`] names a base wafer workload plus ordered value lists for
//! hyperparameter keys of the form `<knob>.<param>` (e.g.
//! `density.trend`, `l_cnt_um.correlation_dies`). [`run_fab_search`]
//! evaluates the full cartesian product — every candidate is one
//! deterministic wafer run through the shared caches — and ranks
//! candidates by mean wafer yield (worst-die yield breaks ties). The
//! [`FabReport`] is a pure function of `(spec, seed)`, byte-identical
//! for any worker count, exactly like the wafer engine underneath.

use cnfet_pipeline::wafer::write_wafer_report;
use cnfet_pipeline::{
    Json, PipelineError, Result, WaferReport, WaferSpec, YieldService, STOCHASTIC_KNOBS,
};
use cnt_stats::FieldSpec;
use std::path::{Path, PathBuf};

/// Field hyperparameters a fab axis may vary.
pub const FIELD_PARAMS: [&str; 3] = ["trend", "noise_sd", "correlation_dies"];

/// Cap on the cartesian candidate count (mirrors the co-opt engine's
/// bound; fab candidates are wafer runs, so the guard matters more).
const MAX_CANDIDATES: u64 = 4096;

fn invalid(field: &'static str, msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field,
        msg: msg.into(),
    }
}

/// The valid `<knob>.<param>` axis keys, for suggestions.
fn axis_key_candidates() -> Vec<&'static str> {
    // Static product of STOCHASTIC_KNOBS × FIELD_PARAMS, spelled out so
    // the suggestion machinery can borrow them for the process lifetime.
    vec![
        "density.trend",
        "density.noise_sd",
        "density.correlation_dies",
        "l_cnt_um.trend",
        "l_cnt_um.noise_sd",
        "l_cnt_um.correlation_dies",
        "m_min.trend",
        "m_min.noise_sd",
        "m_min.correlation_dies",
    ]
}

/// One axis of the fab search: a field hyperparameter and its ordered
/// candidate values.
#[derive(Debug, Clone, PartialEq)]
pub struct FabAxis {
    /// Index of the knob in [`STOCHASTIC_KNOBS`].
    pub knob: usize,
    /// Index of the hyperparameter in [`FIELD_PARAMS`].
    pub param: usize,
    /// Ordered candidate values.
    pub values: Vec<f64>,
}

impl FabAxis {
    /// The `<knob>.<param>` key of this axis.
    pub fn key(&self) -> String {
        format!(
            "{}.{}",
            STOCHASTIC_KNOBS[self.knob], FIELD_PARAMS[self.param]
        )
    }

    fn from_json(key: &str, value: &Json) -> Result<Self> {
        let parsed = key.split_once('.').and_then(|(knob, param)| {
            let knob = STOCHASTIC_KNOBS.iter().position(|k| *k == knob)?;
            let param = FIELD_PARAMS.iter().position(|p| *p == param)?;
            Some((knob, param))
        });
        let Some((knob, param)) = parsed else {
            return Err(cnfet_pipeline::builder::unknown_key(
                "fab search axis",
                key,
                &axis_key_candidates(),
            ));
        };
        let values = value
            .as_array()
            .ok_or_else(|| invalid("search", format!("axis `{key}` must be a value array")))?
            .iter()
            .map(|v| {
                v.as_f64().filter(|v| v.is_finite()).ok_or_else(|| {
                    invalid("search", format!("axis `{key}` values must be numbers"))
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        if values.is_empty() {
            return Err(invalid(
                "search",
                format!("axis `{key}` must list at least one value"),
            ));
        }
        Ok(Self {
            knob,
            param,
            values,
        })
    }

    fn to_json(&self) -> (String, Json) {
        (
            self.key(),
            Json::Arr(self.values.iter().map(|v| Json::Num(*v)).collect()),
        )
    }
}

/// A declarative fab-space study: a base wafer plus hyperparameter axes.
///
/// The JSON document form:
///
/// ```text
/// {
///   "name": "uniformity-study",
///   "wafer": { …a wafer spec… },
///   "search": {
///     "density.trend": [-0.3, -0.2, -0.1],
///     "density.correlation_dies": [8, 16, 32]
///   }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FabSpec {
    /// Study name (also names the best candidate's wafer artifact).
    pub name: String,
    /// The wafer workload every candidate starts from.
    pub wafer: WaferSpec,
    /// The hyperparameter axes (cartesian product is the search space).
    pub axes: Vec<FabAxis>,
}

/// Top-level keys of a fab spec document.
pub const FAB_KEYS: [&str; 3] = ["name", "wafer", "search"];

impl FabSpec {
    /// Parse a fab study document.
    ///
    /// # Errors
    ///
    /// As [`FabSpec::from_json`], plus JSON parse errors.
    pub fn parse(src: &str) -> Result<Self> {
        Self::from_json(&Json::parse(src)?)
    }

    /// Build from a parsed document.
    ///
    /// # Errors
    ///
    /// Unknown sections/axis keys get suggestions; invalid values are
    /// rejected with the offending axis named.
    pub fn from_json(doc: &Json) -> Result<Self> {
        let fields = doc
            .as_object()
            .ok_or_else(|| invalid("fab", "document must be an object"))?;
        for (key, _) in fields {
            if !FAB_KEYS.contains(&key.as_str()) {
                return Err(cnfet_pipeline::builder::unknown_key("fab", key, &FAB_KEYS));
            }
        }
        let name = match doc.get("name") {
            None => "fab".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("name", "must be a string"))?
                .to_string(),
        };
        let wafer = WaferSpec::from_json(
            doc.get("wafer")
                .ok_or_else(|| invalid("fab", "a fab spec needs a `wafer` section"))?,
        )?;
        let mut axes = Vec::new();
        let search = doc
            .get("search")
            .and_then(Json::as_object)
            .ok_or_else(|| invalid("search", "a fab spec needs a `search` object"))?;
        for (key, value) in search {
            axes.push(FabAxis::from_json(key, value)?);
        }
        let spec = Self { name, wafer, axes };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize the spec; [`FabSpec::from_json`] inverts this exactly.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("wafer".to_string(), self.wafer.to_json()),
            (
                "search".to_string(),
                Json::Obj(self.axes.iter().map(FabAxis::to_json).collect()),
            ),
        ])
    }

    /// Check the study is executable.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] for an empty or oversized search
    /// space, duplicate axes, or a candidate that fails field validation.
    pub fn validate(&self) -> Result<()> {
        self.wafer.validate()?;
        if self.axes.is_empty() {
            return Err(invalid("search", "needs at least one axis"));
        }
        let mut keys: Vec<String> = self.axes.iter().map(FabAxis::key).collect();
        keys.sort();
        keys.dedup();
        if keys.len() != self.axes.len() {
            return Err(invalid("search", "axis keys must be unique"));
        }
        if self.candidate_count() > MAX_CANDIDATES {
            return Err(invalid(
                "search",
                format!("search space exceeds {MAX_CANDIDATES} candidates"),
            ));
        }
        // Trial-apply every axis value independently so a bad
        // hyperparameter fails at parse time, not mid-study.
        for axis in &self.axes {
            for &v in &axis.values {
                let mut field = self.effective_field(axis.knob)?;
                set_param(&mut field, axis.param, v);
                field.validate().map_err(|e| {
                    invalid("search", format!("axis `{}` value {v}: {e}", axis.key()))
                })?;
            }
        }
        Ok(())
    }

    /// Size of the full search space (product of axis lengths).
    pub fn candidate_count(&self) -> u64 {
        self.axes
            .iter()
            .map(|a| a.values.len() as u64)
            .product::<u64>()
    }

    /// The starting field of an axis' knob: the wafer's explicit field,
    /// or the base knob's distribution as a trivial field.
    fn effective_field(&self, knob: usize) -> Result<FieldSpec> {
        if let Some(f) = &self.wafer.fields[knob] {
            return Ok(*f);
        }
        let dist = match knob {
            0 => self.wafer.base.density,
            1 => self.wafer.base.l_cnt_um,
            _ => match self.wafer.base.m_min {
                cnfet_pipeline::MminSpec::Fraction(d) => d,
                cnfet_pipeline::MminSpec::SelfConsistent => {
                    return Err(invalid(
                        "search",
                        "an `m_min.*` axis needs a fractional base `m_min`, \
                         not \"self-consistent\"",
                    ));
                }
            },
        };
        Ok(FieldSpec::from_dist(dist))
    }

    /// The wafer workload of one choice vector (`choice[i]` indexes
    /// `axes[i].values`).
    ///
    /// # Errors
    ///
    /// Propagates field validation failures.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is shorter than the axis list or an index is
    /// out of range (an engine bug, not bad input).
    pub fn candidate(&self, choice: &[usize]) -> Result<WaferSpec> {
        let mut wafer = self.wafer.clone();
        for (axis, &pick) in self.axes.iter().zip(choice) {
            let mut field = match wafer.fields[axis.knob] {
                Some(f) => f,
                None => self.effective_field(axis.knob)?,
            };
            set_param(&mut field, axis.param, axis.values[pick]);
            wafer.fields[axis.knob] = Some(field);
        }
        Ok(wafer)
    }
}

fn set_param(field: &mut FieldSpec, param: usize, value: f64) {
    match param {
        0 => field.trend = value,
        1 => field.noise_sd = value,
        _ => field.correlation_dies = value,
    }
}

/// One evaluated fab candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FabCandidate {
    /// `key=value` labels of this candidate's hyperparameters, in axis
    /// order.
    pub label: String,
    /// Axis value indices of the candidate.
    pub choice: Vec<usize>,
    /// Mean die yield of the candidate's wafer.
    pub overall_yield: f64,
    /// Worst die yield (the tie-breaker).
    pub min_die_yield: f64,
}

/// The result of a fab-space search.
#[derive(Debug, Clone, PartialEq)]
pub struct FabReport {
    /// The study name.
    pub name: String,
    /// The seed the study ran under.
    pub seed: u64,
    /// Every candidate in canonical (row-major choice) order.
    pub candidates: Vec<FabCandidate>,
    /// Index of the best candidate in `candidates`.
    pub best: usize,
    /// The best candidate's full wafer artifact.
    pub best_wafer: WaferReport,
}

impl FabReport {
    /// Serialize the study artifact (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seed".into(), Json::from_u64(self.seed)),
            (
                "candidates".into(),
                Json::Arr(
                    self.candidates
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(c.label.clone())),
                                (
                                    "choice".into(),
                                    Json::Arr(
                                        c.choice
                                            .iter()
                                            .map(|&i| Json::from_u64(i as u64))
                                            .collect(),
                                    ),
                                ),
                                ("overall_yield".into(), Json::Num(c.overall_yield)),
                                ("min_die_yield".into(), Json::Num(c.min_die_yield)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("best".into(), Json::from_u64(self.best as u64)),
            ("best_wafer".into(), self.best_wafer.to_json()),
        ])
    }

    /// Write the artifact as `<name>.fab.json` (plus the best wafer as a
    /// standalone `<wafer-name>.wafer.json`), returning the fab path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        write_wafer_report(dir, &self.best_wafer)?;
        let path = dir.join(format!("{}.fab.json", self.name));
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

/// Run a fab-space study: evaluate every hyperparameter combination as a
/// deterministic wafer run and rank by mean yield (worst-die yield breaks
/// ties; earlier canonical order breaks exact ties, so the report is a
/// pure function of `(spec, seed)`).
///
/// # Errors
///
/// Propagates spec validation and wafer-engine errors.
pub fn run_fab_search(
    service: &YieldService,
    spec: &FabSpec,
    seed: u64,
    workers: usize,
) -> Result<FabReport> {
    spec.validate()?;
    let total = spec.candidate_count() as usize;
    let mut candidates = Vec::with_capacity(total);
    let mut reports: Vec<WaferReport> = Vec::with_capacity(total);
    let mut choice = vec![0usize; spec.axes.len()];
    loop {
        let wafer = spec.candidate(&choice)?;
        // Every candidate runs under the SAME seed: the comparison
        // isolates the hyperparameters, not the random draw.
        let report = service.wafer_with_workers(&wafer, seed, workers)?;
        let label = spec
            .axes
            .iter()
            .zip(&choice)
            .map(|(a, &i)| format!("{}={}", a.key(), a.values[i]))
            .collect::<Vec<_>>()
            .join(" ");
        candidates.push(FabCandidate {
            label,
            choice: choice.clone(),
            overall_yield: report.overall_yield,
            min_die_yield: report.min_die_yield,
        });
        reports.push(report);

        // Advance the row-major choice vector (last axis fastest).
        let mut i = spec.axes.len();
        loop {
            if i == 0 {
                let best = (0..candidates.len())
                    .max_by(|&a, &b| {
                        let ca = &candidates[a];
                        let cb = &candidates[b];
                        (ca.overall_yield, ca.min_die_yield)
                            .partial_cmp(&(cb.overall_yield, cb.min_die_yield))
                            .expect("yields are finite")
                            // max_by keeps the LAST maximum; prefer the
                            // earliest canonical candidate on exact ties.
                            .then(b.cmp(&a))
                    })
                    .expect("at least one candidate");
                return Ok(FabReport {
                    name: spec.name.clone(),
                    seed,
                    best,
                    best_wafer: reports.swap_remove(best),
                    candidates,
                });
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < spec.axes[i].values.len() {
                break;
            }
            choice[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_pipeline::{BackendSpec, CorrelationSpec, RhoSpec, ScenarioSpec};
    use cnt_stats::DistSpec;

    fn small_fab() -> FabSpec {
        let mut base = ScenarioSpec::baseline("fab-base");
        base.backend = BackendSpec::GaussianSum;
        base.fast_design = true;
        base.rho = RhoSpec::Paper;
        base.correlation = CorrelationSpec::GrowthAlignedLayout;
        let mut wafer = WaferSpec::new("fab-wafer", 16, base);
        wafer.fields[0] = Some(FieldSpec {
            dist: DistSpec::Gaussian {
                mean: 1.0,
                sd: 0.05,
            },
            trend: -0.2,
            noise_sd: 0.04,
            correlation_dies: 6.0,
            clamp_lo: 0.3,
            clamp_hi: 2.0,
        });
        FabSpec {
            name: "fab-study".into(),
            wafer,
            axes: vec![
                FabAxis {
                    knob: 0,
                    param: 0,
                    values: vec![-0.4, -0.2, 0.0],
                },
                FabAxis {
                    knob: 0,
                    param: 2,
                    values: vec![4.0, 12.0],
                },
            ],
        }
    }

    #[test]
    fn fab_spec_round_trips_and_counts() {
        let spec = small_fab();
        assert_eq!(spec.candidate_count(), 6);
        let wire = spec.to_json();
        assert_eq!(FabSpec::from_json(&wire).unwrap(), spec);
        assert_eq!(FabSpec::parse(&wire.to_string_pretty()).unwrap(), spec);
    }

    #[test]
    fn fab_axis_typos_get_suggestions() {
        let err = FabSpec::parse(
            r#"{ "wafer": { "diameter_dies": 8 },
                 "search": { "density.tren": [0.0] } }"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `density.trend`"),
            "{err}"
        );
        // A flat knob name is not a fab axis (that is a co-opt axis).
        assert!(FabSpec::parse(
            r#"{ "wafer": { "diameter_dies": 8 }, "search": { "density": [1.0] } }"#
        )
        .is_err());
    }

    #[test]
    fn search_ranks_trend_zero_best_and_is_deterministic() {
        let spec = small_fab();
        let service = YieldService::new();
        let a = run_fab_search(&service, &spec, 5, 1).unwrap();
        let b = run_fab_search(&service, &spec, 5, 4).unwrap();
        assert_eq!(a, b, "fab search must be worker-count independent");
        assert_eq!(a.candidates.len(), 6);
        // The flattest wafer (trend 0.0) must beat the steepest (−0.4):
        // less center-to-edge density loss ⇒ higher mean yield.
        let best = &a.candidates[a.best];
        assert!(best.label.contains("density.trend=0"), "{}", best.label);
        let worst = a
            .candidates
            .iter()
            .min_by(|x, y| x.overall_yield.partial_cmp(&y.overall_yield).unwrap())
            .unwrap();
        assert!(
            worst.label.contains("density.trend=-0.4"),
            "{}",
            worst.label
        );
        assert!(best.overall_yield > worst.overall_yield);
        assert_eq!(a.best_wafer.overall_yield, best.overall_yield);
    }
}
