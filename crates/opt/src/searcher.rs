//! The pluggable search strategies.
//!
//! A [`Searcher`] decides *which* candidates to evaluate; the
//! [`SearchContext`] decides *how* (batched,
//! memoized, deterministic). Four strategies ship:
//!
//! * [`GridScan`] — evaluate the whole cartesian product. Exhaustive, so
//!   the resulting Pareto front is exact; cost grows with the product of
//!   axis lengths.
//! * [`CoordinateDescent`] — from each of `restarts` seeded start points,
//!   sweep the axes in order, batch-evaluating every value of one axis
//!   with the others held fixed and moving to the cheapest; stop when a
//!   full sweep makes no move. Evaluates `O(restarts · sweeps · Σ axis
//!   lengths)` candidates instead of the product, at the price of an
//!   approximate front (only visited candidates are considered).
//! * [`GeneticSearcher`] — a seeded population evolved by tournament
//!   selection, uniform crossover, per-axis mutation, and elitism. Scales
//!   to joint spaces where per-axis descent stalls on interactions.
//! * [`HalvingLadder`] — successive halving of Monte-Carlo precision
//!   around any inner strategy: explore at coarse `rel_ci`, promote only
//!   the top `1/eta` per rung, confirm the survivors at full precision.
//!
//! All are deterministic by construction: their decision sequences
//! depend only on `(spec, seed)` and the (deterministic) evaluation
//! results — every stochastic-looking choice is a `split_seed` stream.

use crate::engine::{Candidate, SearchContext};
use cnfet_pipeline::{Result, SearcherSpec};
use cnt_stats::seed::split_seed;

/// Seed salt separating restart-start-point derivation from batch seeds.
const RESTART_SALT: u64 = 0x636F_6F70; // "coop"

/// Seed salt separating genetic-operator streams from everything else.
const GENETIC_SALT: u64 = 0x6765_6E65; // "gene"

/// A co-optimization search strategy.
pub trait Searcher {
    /// The canonical strategy name recorded in the report.
    fn name(&self) -> &'static str;

    /// Drive the context until the strategy is satisfied. Everything
    /// evaluated through `ctx` lands in the final report's Pareto set.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()>;
}

/// The strategy instance a [`SearcherSpec`] selects.
pub fn searcher_for(spec: &SearcherSpec) -> Box<dyn Searcher> {
    match spec {
        SearcherSpec::GridScan => Box::new(GridScan),
        SearcherSpec::CoordinateDescent {
            restarts,
            max_sweeps,
        } => Box::new(CoordinateDescent {
            restarts: *restarts,
            max_sweeps: *max_sweeps,
        }),
        SearcherSpec::Genetic {
            population,
            generations,
            tournament_k,
            mutation_rate,
        } => Box::new(GeneticSearcher {
            population: *population,
            generations: *generations,
            tournament_k: *tournament_k,
            mutation_rate: *mutation_rate,
        }),
        SearcherSpec::Halving { inner, rungs, eta } => Box::new(HalvingLadder {
            inner: searcher_for(inner),
            rungs: *rungs,
            eta: *eta,
        }),
    }
}

/// Exhaustive batched scan of the full cartesian product (exact Pareto
/// front).
#[derive(Debug, Clone, Copy, Default)]
pub struct GridScan;

impl Searcher for GridScan {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let total = ctx.spec().candidate_count() as usize;
        // Canonical enumeration: first axis varies slowest (mixed radix,
        // most-significant digit first).
        let mut choices = Vec::with_capacity(total);
        for mut index in 0..total {
            let mut choice = vec![0usize; lens.len()];
            for (slot, len) in choice.iter_mut().zip(&lens).rev() {
                *slot = index % len;
                index /= len;
            }
            choices.push(choice);
        }
        ctx.evaluate(&choices)?;
        Ok(())
    }
}

/// Seeded coordinate descent with restarts (approximate front, far fewer
/// evaluations than the product).
#[derive(Debug, Clone, Copy)]
pub struct CoordinateDescent {
    /// Independent start points; the first is always the base
    /// configuration (index 0 on every axis), the rest are seeded.
    pub restarts: u32,
    /// Hard cap on coordinate sweeps per restart.
    pub max_sweeps: u32,
}

impl Searcher for CoordinateDescent {
    fn name(&self) -> &'static str {
        "coordinate-descent"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let restart_seed = split_seed(ctx.seed(), RESTART_SALT);
        for restart in 0..self.restarts.max(1) {
            let mut current: Vec<usize> = if restart == 0 {
                vec![0; lens.len()]
            } else {
                // A deterministic scattered start: one split stream per
                // (restart, axis) pair, reduced to the axis length.
                lens.iter()
                    .enumerate()
                    .map(|(axis, &len)| {
                        let stream =
                            split_seed(restart_seed, u64::from(restart) * 0x1_0000 + axis as u64);
                        (stream % len as u64) as usize
                    })
                    .collect()
            };
            let mut cost = ctx.evaluate(std::slice::from_ref(&current))?[0].cost;
            for _sweep in 0..self.max_sweeps.max(1) {
                let mut moved = false;
                for axis in 0..lens.len() {
                    let batch: Vec<Vec<usize>> = (0..lens[axis])
                        .map(|value| {
                            let mut choice = current.clone();
                            choice[axis] = value;
                            choice
                        })
                        .collect();
                    let evaluated = ctx.evaluate(&batch)?;
                    // Strict `<` keeps the lowest-index value on ties, so
                    // the walk cannot oscillate between equal-cost values.
                    let (mut best_value, mut best_cost) = (current[axis], cost);
                    for candidate in &evaluated {
                        if candidate.cost < best_cost {
                            best_cost = candidate.cost;
                            best_value = candidate.choice[axis];
                        }
                    }
                    if best_value != current[axis] {
                        current[axis] = best_value;
                        cost = best_cost;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// Map a split-seed stream to a unit float in `[0, 1)` (53 mantissa
/// bits, the standard shift construction).
fn unit_float(stream: u64) -> f64 {
    (stream >> 11) as f64 / (1u64 << 53) as f64
}

/// Population-based genetic search: tournament selection, uniform
/// crossover, per-axis mutation, and elitism, all driven by `split_seed`
/// streams keyed on `(generation, individual, axis)` — the walk is a pure
/// function of `(spec, seed)` like every other strategy.
#[derive(Debug, Clone, Copy)]
pub struct GeneticSearcher {
    /// Individuals per generation (min 2; the first individual of the
    /// initial population is always the base configuration).
    pub population: u32,
    /// Generations evolved after the initial population; 0 degrades to a
    /// plain scan of the seeded initial population.
    pub generations: u32,
    /// Tournament size of the selection operator (min 1; 1 is uniform
    /// random selection, larger presses harder toward low cost).
    pub tournament_k: u32,
    /// Per-axis mutation probability in `[0, 1]`.
    pub mutation_rate: f64,
}

impl GeneticSearcher {
    /// The seeded initial population for a run seed and axis lengths:
    /// individual 0 is the base configuration (index 0 on every axis),
    /// the rest draw each axis from its own `split_seed` stream. Public
    /// so invariants like "`generations = 0` degrades to an
    /// initial-population scan" can be stated without re-deriving it.
    pub fn initial_population(&self, seed: u64, lens: &[usize]) -> Vec<Vec<usize>> {
        let gen_seed = split_seed(split_seed(seed, GENETIC_SALT), 0);
        (0..self.population.max(2) as usize)
            .map(|i| {
                if i == 0 {
                    return vec![0; lens.len()];
                }
                let ind_seed = split_seed(gen_seed, i as u64);
                lens.iter()
                    .enumerate()
                    .map(|(axis, &len)| (split_seed(ind_seed, axis as u64) % len as u64) as usize)
                    .collect()
            })
            .collect()
    }

    /// Tournament selection over the current population: `k` seeded draws
    /// with replacement, lowest cost wins, ties broken by lower
    /// population index.
    fn tournament(&self, population: &[Candidate], seed: u64, salt: u64) -> usize {
        let mut winner = 0usize;
        let mut have = false;
        for draw in 0..self.tournament_k.max(1) as usize {
            let idx = (split_seed(seed, salt + draw as u64) % population.len() as u64) as usize;
            let better = !have
                || population[idx].cost < population[winner].cost
                || (population[idx].cost == population[winner].cost && idx < winner);
            if better {
                winner = idx;
                have = true;
            }
        }
        winner
    }
}

impl Searcher for GeneticSearcher {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        ctx.record_search();
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let base = split_seed(ctx.seed(), GENETIC_SALT);
        let pop_n = self.population.max(2) as usize;
        let mut population = ctx.evaluate(&self.initial_population(ctx.seed(), &lens))?;
        for generation in 1..=u64::from(self.generations) {
            let gen_seed = split_seed(base, generation);
            // Rank the parents by (cost, choice) — elitism carries the
            // best choices into the next generation unchanged.
            let mut ranked: Vec<usize> = (0..population.len()).collect();
            ranked.sort_by(|&a, &b| {
                population[a]
                    .cost
                    .total_cmp(&population[b].cost)
                    .then(population[a].choice.cmp(&population[b].choice))
            });
            let elite_n = 2.min(pop_n);
            let mut next: Vec<Vec<usize>> = ranked
                .iter()
                .take(elite_n)
                .map(|&i| population[i].choice.clone())
                .collect();
            for individual in elite_n..pop_n {
                let ind_seed = split_seed(gen_seed, individual as u64);
                let pa = self.tournament(&population, ind_seed, 0x100);
                let pb = self.tournament(&population, ind_seed, 0x200);
                let child: Vec<usize> = lens
                    .iter()
                    .enumerate()
                    .map(|(axis, &len)| {
                        // Uniform crossover, then mutation: a fresh seeded
                        // draw of the axis with probability mutation_rate.
                        let gene = if split_seed(ind_seed, 0x300 + axis as u64) & 1 == 0 {
                            population[pa].choice[axis]
                        } else {
                            population[pb].choice[axis]
                        };
                        if unit_float(split_seed(ind_seed, 0x400 + axis as u64))
                            < self.mutation_rate
                        {
                            (split_seed(ind_seed, 0x500 + axis as u64) % len as u64) as usize
                        } else {
                            gene
                        }
                    })
                    .collect();
                next.push(child);
            }
            population = ctx.evaluate(&next)?;
            ctx.record_generation();
        }
        Ok(())
    }
}

/// Successive-halving precision ladder around an inner strategy: the
/// inner searcher explores at the coarsest Monte-Carlo precision
/// (`rel_ci` relaxed by `eta^(rungs-1)`), then each rung promotes only
/// the top `1/eta` fraction of its candidates to the next-tighter rung,
/// so the spec's own (expensive) precision is spent only on the
/// survivors. On analytic back-ends the relaxation is a no-op and the
/// ladder degenerates to the inner search plus free memoized re-reads.
pub struct HalvingLadder {
    /// The strategy that explores the space at the coarsest rung.
    pub inner: Box<dyn Searcher>,
    /// Precision rungs, coarsest to exact (min 1; clamped, the declarative
    /// parser already rejects 0).
    pub rungs: u32,
    /// Promotion divisor per rung (min 2; clamped, the declarative parser
    /// already rejects smaller values).
    pub eta: u32,
}

impl Searcher for HalvingLadder {
    fn name(&self) -> &'static str {
        // `name()` returns a static str, so the composed name is matched
        // rather than formatted; unknown custom inners fall back to the
        // bare ladder name.
        match self.inner.name() {
            "genetic" => "halving+genetic",
            "grid" => "halving+grid",
            "coordinate-descent" => "halving+coordinate-descent",
            _ => "halving",
        }
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        ctx.record_search();
        let rungs = self.rungs.max(1);
        let eta = u64::from(self.eta.max(2));
        let mut survivors: Option<Vec<Vec<usize>>> = None;
        for rung in 0..rungs {
            // Rung 0 is the coarsest; the final rung always runs at the
            // spec's own precision (relax factor eta^0 = 1).
            let relax = (eta as f64).powi((rungs - 1 - rung) as i32);
            ctx.set_precision_relax(relax);
            let before = ctx.fresh_evaluations();
            let mut ranked: Vec<(f64, Vec<usize>)> = match &survivors {
                None => {
                    self.inner.search(ctx)?;
                    ctx.evaluated_at_current_precision()
                        .into_iter()
                        .map(|c| (c.cost, c.choice.clone()))
                        .collect()
                }
                Some(choices) => ctx
                    .evaluate(choices)?
                    .into_iter()
                    .map(|c| (c.cost, c.choice))
                    .collect(),
            };
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            ranked.dedup_by(|a, b| a.1 == b.1);
            let spent = ctx.fresh_evaluations() - before;
            let last = rung + 1 == rungs;
            let promoted = if last {
                0
            } else {
                ranked.len().div_ceil(eta as usize).max(1)
            };
            ctx.record_rung(ctx.precision_relax(), spent, promoted as u64);
            if last {
                break;
            }
            survivors = Some(
                ranked
                    .into_iter()
                    .take(promoted)
                    .map(|(_, choice)| choice)
                    .collect(),
            );
        }
        ctx.set_precision_relax(1.0);
        Ok(())
    }
}
