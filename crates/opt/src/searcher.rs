//! The pluggable search strategies.
//!
//! A [`Searcher`] decides *which* candidates to evaluate; the
//! [`SearchContext`] decides *how* (batched,
//! memoized, deterministic). Two strategies ship:
//!
//! * [`GridScan`] — evaluate the whole cartesian product. Exhaustive, so
//!   the resulting Pareto front is exact; cost grows with the product of
//!   axis lengths.
//! * [`CoordinateDescent`] — from each of `restarts` seeded start points,
//!   sweep the axes in order, batch-evaluating every value of one axis
//!   with the others held fixed and moving to the cheapest; stop when a
//!   full sweep makes no move. Evaluates `O(restarts · sweeps · Σ axis
//!   lengths)` candidates instead of the product, at the price of an
//!   approximate front (only visited candidates are considered).
//!
//! Both are deterministic by construction: their decision sequences
//! depend only on `(spec, seed)` and the (deterministic) evaluation
//! results.

use crate::engine::SearchContext;
use cnfet_pipeline::{Result, SearcherSpec};
use cnt_stats::seed::split_seed;

/// Seed salt separating restart-start-point derivation from batch seeds.
const RESTART_SALT: u64 = 0x636F_6F70; // "coop"

/// A co-optimization search strategy.
pub trait Searcher {
    /// The canonical strategy name recorded in the report.
    fn name(&self) -> &'static str;

    /// Drive the context until the strategy is satisfied. Everything
    /// evaluated through `ctx` lands in the final report's Pareto set.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()>;
}

/// The strategy instance a [`SearcherSpec`] selects.
pub fn searcher_for(spec: SearcherSpec) -> Box<dyn Searcher> {
    match spec {
        SearcherSpec::GridScan => Box::new(GridScan),
        SearcherSpec::CoordinateDescent {
            restarts,
            max_sweeps,
        } => Box::new(CoordinateDescent {
            restarts,
            max_sweeps,
        }),
    }
}

/// Exhaustive batched scan of the full cartesian product (exact Pareto
/// front).
#[derive(Debug, Clone, Copy, Default)]
pub struct GridScan;

impl Searcher for GridScan {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let total = ctx.spec().candidate_count() as usize;
        // Canonical enumeration: first axis varies slowest (mixed radix,
        // most-significant digit first).
        let mut choices = Vec::with_capacity(total);
        for mut index in 0..total {
            let mut choice = vec![0usize; lens.len()];
            for (slot, len) in choice.iter_mut().zip(&lens).rev() {
                *slot = index % len;
                index /= len;
            }
            choices.push(choice);
        }
        ctx.evaluate(&choices)?;
        Ok(())
    }
}

/// Seeded coordinate descent with restarts (approximate front, far fewer
/// evaluations than the product).
#[derive(Debug, Clone, Copy)]
pub struct CoordinateDescent {
    /// Independent start points; the first is always the base
    /// configuration (index 0 on every axis), the rest are seeded.
    pub restarts: u32,
    /// Hard cap on coordinate sweeps per restart.
    pub max_sweeps: u32,
}

impl Searcher for CoordinateDescent {
    fn name(&self) -> &'static str {
        "coordinate-descent"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let restart_seed = split_seed(ctx.seed(), RESTART_SALT);
        for restart in 0..self.restarts.max(1) {
            let mut current: Vec<usize> = if restart == 0 {
                vec![0; lens.len()]
            } else {
                // A deterministic scattered start: one split stream per
                // (restart, axis) pair, reduced to the axis length.
                lens.iter()
                    .enumerate()
                    .map(|(axis, &len)| {
                        let stream =
                            split_seed(restart_seed, u64::from(restart) * 0x1_0000 + axis as u64);
                        (stream % len as u64) as usize
                    })
                    .collect()
            };
            let mut cost = ctx.evaluate(std::slice::from_ref(&current))?[0].cost;
            for _sweep in 0..self.max_sweeps.max(1) {
                let mut moved = false;
                for axis in 0..lens.len() {
                    let batch: Vec<Vec<usize>> = (0..lens[axis])
                        .map(|value| {
                            let mut choice = current.clone();
                            choice[axis] = value;
                            choice
                        })
                        .collect();
                    let evaluated = ctx.evaluate(&batch)?;
                    // Strict `<` keeps the lowest-index value on ties, so
                    // the walk cannot oscillate between equal-cost values.
                    let (mut best_value, mut best_cost) = (current[axis], cost);
                    for candidate in &evaluated {
                        if candidate.cost < best_cost {
                            best_cost = candidate.cost;
                            best_value = candidate.choice[axis];
                        }
                    }
                    if best_value != current[axis] {
                        current[axis] = best_value;
                        cost = best_cost;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
        }
        Ok(())
    }
}
