//! Acceptance contract of the adaptive searchers on the shipped 7-axis
//! example: the halving+genetic ladder must match coordinate descent's
//! best objective while spending at most half of its full-precision
//! Monte-Carlo evaluations — the whole point of exploring at coarse
//! `rel_ci` first.

use cnfet_opt::run_co_opt;
use cnfet_pipeline::{CoOptSpec, SearcherSpec, YieldService};

const SEED: u64 = 20100613; // the repro default

fn example() -> CoOptSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/coopt/genetic_7axis.json"
    );
    CoOptSpec::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

#[test]
fn halving_genetic_matches_descent_at_half_the_full_precision_cost() {
    let spec = example();
    assert_eq!(spec.axes.len(), 7, "the example exercises seven axes");
    assert_eq!(spec.candidate_count(), 288);
    let halving = run_co_opt(&YieldService::new(), &spec, SEED, 4).unwrap();
    assert_eq!(halving.searcher, "halving+genetic");

    let mut descent_spec = spec.clone();
    descent_spec.searcher = SearcherSpec::CoordinateDescent {
        restarts: 3,
        max_sweeps: 8,
    };
    let descent = run_co_opt(&YieldService::new(), &descent_spec, SEED, 4).unwrap();

    // The acceptance bound: no worse an optimum, at most half the
    // high-CI evaluation spend (`evaluations` counts only full-precision
    // candidates for adaptive strategies).
    assert!(
        halving.best.cost <= descent.best.cost,
        "halving+genetic best {:.4} must not trail descent's {:.4}",
        halving.best.cost,
        descent.best.cost
    );
    assert!(
        halving.evaluations * 2 <= descent.evaluations,
        "halving spent {} full-precision evaluations vs descent's {} — \
         the precision ladder must at least halve the high-CI spend",
        halving.evaluations,
        descent.evaluations
    );

    // Provenance block sanity: three rungs, coarsest relax eta^2 = 9,
    // final rung at the spec's own precision with nothing left to promote.
    let search = halving.search.expect("adaptive runs report provenance");
    assert_eq!(search.rungs.len(), 3);
    assert!((search.rungs[0].relax - 9.0).abs() < 1e-12);
    assert_eq!(search.rungs.last().unwrap().relax, 1.0);
    assert_eq!(search.rungs.last().unwrap().promoted, 0);
    assert_eq!(search.final_evaluations, halving.evaluations);
    assert!(search.coarse_evaluations > 0, "rungs 0/1 run at coarse CI");
    assert!(descent.search.is_none(), "descent records no provenance");
}
