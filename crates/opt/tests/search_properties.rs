//! Search-invariant property tests: the Pareto front is a canonical set
//! (no dominated survivors, insertion-order independent), and the
//! genetic searcher's `generations = 0` edge degrades to exactly the
//! seeded initial-population scan it documents.

use cnfet_opt::{run_with_searcher, GeneticSearcher, SearchContext, Searcher};
use cnfet_pipeline::{CoOptSpec, ParetoFront, ParetoPoint, Result, YieldService};
use cnt_stats::seed::split_seed;
use proptest::prelude::*;

/// A synthetic candidate: only `(demand, cost)` drive front membership,
/// the scenario name keeps equal pairs distinguishable.
fn point(i: usize, demand: f64, cost: f64) -> ParetoPoint {
    ParetoPoint {
        scenario: format!("candidate-{i}"),
        choice: vec![i as u64, 0],
        demand,
        cost,
        w_min_nm: 100.0 + cost,
        upsizing_penalty: 0.05,
        p_req: 1.0e-6,
        p_at_w_min: 9.0e-7,
        relaxation: 1.0,
    }
}

/// Deterministic Fisher–Yates driven by a split-seed stream.
fn permute(points: &[ParetoPoint], seed: u64) -> Vec<ParetoPoint> {
    let mut out = points.to_vec();
    for i in (1..out.len()).rev() {
        let j = (split_seed(seed, i as u64) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #[test]
    fn front_never_retains_a_dominated_point(
        values in prop::collection::vec(0.0f64..1.0, 0..48),
    ) {
        // The vendored proptest has no tuple strategies: interpret the
        // flat draw as consecutive (demand, cost) pairs.
        let candidates: Vec<ParetoPoint> = values
            .chunks_exact(2)
            .enumerate()
            .map(|(i, pair)| point(i, pair[0], pair[1]))
            .collect();
        let front = ParetoFront::from_points(candidates.clone());
        let kept = front.points();
        for a in kept {
            prop_assert!(
                !kept.iter().any(|b| b.dominates(a)),
                "front retained a dominated point: {a:?}"
            );
            // Nothing pruned from the input dominates a survivor either —
            // the front really is the non-dominated subset.
            prop_assert!(
                !candidates.iter().any(|b| b.dominates(a)),
                "a pruned candidate dominates survivor {a:?}"
            );
        }
        // Every pruned candidate is dominated or a (demand, cost) duplicate.
        for c in &candidates {
            let survived = kept.iter().any(|k| k.scenario == c.scenario);
            if !survived {
                let explained = kept.iter().any(|k| {
                    k.dominates(c) || (k.demand == c.demand && k.cost == c.cost)
                });
                prop_assert!(explained, "{c:?} was pruned without cause");
            }
        }
    }

    #[test]
    fn front_is_insertion_order_independent(
        values in prop::collection::vec(0.0f64..1.0, 2..32),
        seed in 0u64..u64::MAX,
    ) {
        let candidates: Vec<ParetoPoint> = values
            .chunks_exact(2)
            .enumerate()
            .map(|(i, pair)| point(i, pair[0], pair[1]))
            .collect();
        let canonical = ParetoFront::from_points(candidates.clone());
        for shuffled in [
            candidates.iter().rev().cloned().collect::<Vec<_>>(),
            permute(&candidates, seed),
        ] {
            let front = ParetoFront::from_points(shuffled);
            prop_assert_eq!(
                front.to_json().to_string_pretty(),
                canonical.to_json().to_string_pretty(),
                "the front must not depend on candidate order"
            );
        }
    }
}

/// The documented degradation target: evaluate exactly the seeded
/// initial population, nothing else.
struct PopulationScan(GeneticSearcher);

impl Searcher for PopulationScan {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(&self, ctx: &mut SearchContext<'_>) -> Result<()> {
        let lens: Vec<usize> = ctx.spec().axes.iter().map(|a| a.values.len()).collect();
        let seed = ctx.seed();
        ctx.evaluate(&self.0.initial_population(seed, &lens))?;
        Ok(())
    }
}

fn cheap_spec() -> CoOptSpec {
    CoOptSpec::parse(
        r#"{
            "name": "degenerate",
            "base": {
                "backend": "gaussian-sum",
                "rho": "paper",
                "fast_design": true,
                "correlation": "growth+aligned-layout"
            },
            "search": { "l_cnt_um": [50, 100, 200], "grid": ["single", "dual"] },
            "searcher": "grid"
        }"#,
    )
    .unwrap()
}

#[test]
fn zero_generations_degrades_to_an_initial_population_scan() {
    // Each case runs real (analytic, fast-design) yield evaluations, so
    // this invariant is pinned over a seeded spread of cases rather than
    // a full proptest sweep; the shared service keeps re-runs warm.
    let spec = cheap_spec();
    let service = YieldService::new();
    for (case, &(seed, population)) in [
        (20100613u64, 2u32),
        (0, 3),
        (u64::MAX, 5),
        (0x5EED_CAFE, 8),
        (7, 9),
        (0xDEAD_BEEF_DEAD_BEEF, 6),
    ]
    .iter()
    .enumerate()
    {
        let genetic = GeneticSearcher {
            population,
            generations: 0,
            tournament_k: 3.min(population),
            mutation_rate: 0.25,
        };
        let evolved = run_with_searcher(&service, &spec, seed, 2, &genetic).unwrap();
        let scanned =
            run_with_searcher(&service, &spec, seed, 2, &PopulationScan(genetic)).unwrap();
        // Identical evaluation set => identical best, front, and counts.
        assert_eq!(evolved.evaluations, scanned.evaluations, "case {case}");
        assert_eq!(&evolved.best, &scanned.best, "case {case}");
        assert_eq!(
            evolved.front.to_json().to_string_pretty(),
            scanned.front.to_json().to_string_pretty(),
            "case {case}"
        );
        // The only report difference is the provenance block the adaptive
        // strategy records (zero generations evolved).
        let search = evolved.search.expect("genetic reports provenance");
        assert_eq!(search.generations, 0, "case {case}");
        assert!(scanned.search.is_none(), "case {case}");
    }
}
