//! Integration contract of the co-optimization engine: the paper's
//! qualitative result re-emerges from the search, reports are
//! byte-deterministic for any worker count, and both strategies agree on
//! the optimum of a space small enough to enumerate.

use cnfet_opt::{run_co_opt, OptService};
use cnfet_pipeline::{
    CoOptSpec, ErrorCode, RequestBody, ResponseBody, SearcherSpec, YieldRequest, YieldService,
};

/// A fast base: gaussian-sum back-end, reduced design, paper density.
fn spec(search: &str, searcher: &str) -> CoOptSpec {
    CoOptSpec::parse(&format!(
        r#"{{
            "name": "study",
            "base": {{
                "backend": "gaussian-sum",
                "rho": "paper",
                "fast_design": true,
                "correlation": "growth+aligned-layout"
            }},
            "search": {{ {search} }},
            "searcher": {searcher}
        }}"#
    ))
    .unwrap()
}

#[test]
fn wmin_strictly_decreases_with_correlation_length() {
    // The acceptance contract: at a fixed yield target, the optimal W_min
    // strictly decreases as the CNT correlation length grows, across at
    // least three correlation settings.
    let spec = spec(r#""l_cnt_um": [50, 100, 200, 400]"#, r#""grid""#);
    let report = run_co_opt(&YieldService::new(), &spec, 20100613, 4).unwrap();
    assert_eq!(report.evaluations, 4);
    let front = report.front.points();
    assert_eq!(
        front.len(),
        4,
        "every correlation length is Pareto-optimal in a 1-axis study: {front:?}"
    );
    for pair in front.windows(2) {
        assert!(
            pair[1].w_min_nm < pair[0].w_min_nm,
            "W_min must strictly decrease with correlation length: {} nm then {} nm",
            pair[0].w_min_nm,
            pair[1].w_min_nm
        );
        assert!(pair[1].relaxation > pair[0].relaxation);
    }
    // The paper's own numbers sit on this curve: L_CNT = 200 µm lands at
    // the correlated threshold (≈103 nm), far below the uncorrelated one.
    let at_200 = front
        .iter()
        .find(|p| p.scenario.contains("l_cnt_um=200"))
        .expect("200 µm candidate present");
    assert!(
        (at_200.w_min_nm - 103.0).abs() < 8.0,
        "W_min at the paper's correlation length: {} nm",
        at_200.w_min_nm
    );
}

#[test]
fn reports_are_byte_identical_for_any_worker_count() {
    let spec = spec(
        r#""l_cnt_um": [50, 200], "grid": ["single", "dual"]"#,
        r#""grid""#,
    );
    let runs: Vec<String> = [1usize, 8]
        .iter()
        .map(|&workers| {
            run_co_opt(&YieldService::new(), &spec, 9, workers)
                .unwrap()
                .to_json()
                .to_string_pretty()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "workers 1 vs 8 must not change a byte");
    // A warm shared cache must not change bytes either.
    let service = YieldService::new();
    let cold = run_co_opt(&service, &spec, 9, 2).unwrap();
    let warm = run_co_opt(&service, &spec, 9, 2).unwrap();
    assert_eq!(
        cold.to_json().to_string_pretty(),
        warm.to_json().to_string_pretty()
    );
}

#[test]
fn coordinate_descent_finds_the_grid_optimum() {
    let search = r#""l_cnt_um": [50, 100, 200], "grid": ["dual", "single"]"#;
    let exhaustive = run_co_opt(&YieldService::new(), &spec(search, r#""grid""#), 3, 2).unwrap();
    let descent = run_co_opt(
        &YieldService::new(),
        &spec(
            search,
            r#"{ "kind": "coordinate-descent", "restarts": 2, "max_sweeps": 4 }"#,
        ),
        3,
        2,
    )
    .unwrap();
    assert_eq!(exhaustive.searcher, "grid");
    assert_eq!(descent.searcher, "coordinate-descent");
    assert_eq!(exhaustive.candidates, 6);
    assert_eq!(exhaustive.evaluations, 6, "grid scan is exhaustive");
    assert!(
        descent.evaluations <= exhaustive.evaluations,
        "descent must not evaluate more than the grid"
    );
    // On this unimodal landscape the descent lands on the same optimum.
    assert_eq!(descent.best.scenario, exhaustive.best.scenario);
    assert_eq!(descent.best.cost, exhaustive.best.cost);
}

#[test]
fn front_prunes_dominated_points() {
    // Two axes where one direction is pure gain: at fixed correlation
    // length, the dual grid halves the relaxation and only costs W_min.
    // Dual-grid candidates are therefore dominated whenever a cheaper
    // same-demand point exists; the front must stay monotone.
    let spec = spec(
        r#""l_cnt_um": [50, 200, 400], "grid": ["single", "dual"]"#,
        r#""grid""#,
    );
    let report = run_co_opt(&YieldService::new(), &spec, 5, 4).unwrap();
    assert_eq!(report.evaluations, 6);
    let front = report.front.points();
    assert!(!front.is_empty() && front.len() < 6, "front: {front:?}");
    for pair in front.windows(2) {
        assert!(pair[0].demand <= pair[1].demand);
        assert!(
            pair[1].cost < pair[0].cost,
            "along the front, more demand must buy strictly lower cost"
        );
    }
    // No surviving point is dominated by any other.
    for a in front {
        assert!(!front.iter().any(|b| b.dominates(a)), "{a:?} is dominated");
    }
}

#[test]
fn opt_service_serves_co_opt_and_bare_service_declines() {
    let spec = spec(r#""l_cnt_um": [50, 200]"#, r#""grid""#);
    let request = YieldRequest::co_opt("c-1", spec, 7, Some(2));
    // Round trip the request like a wire client would.
    let wire = request.to_json().to_string_compact();
    let parsed = YieldRequest::from_json(&cnfet_pipeline::Json::parse(&wire).unwrap()).unwrap();
    assert_eq!(parsed, request);
    assert!(matches!(parsed.body, RequestBody::CoOpt { .. }));

    let opt = OptService::new();
    let responses = opt.handle(&request);
    assert_eq!(responses.len(), 1);
    let ResponseBody::CoOpt(report) = &responses[0].body else {
        panic!("expected a co_opt report, got {:?}", responses[0].body);
    };
    assert_eq!(report.evaluations, 2);
    // The response round-trips as a typed client artifact.
    let wire = responses[0].to_json().to_string_compact();
    let back =
        cnfet_pipeline::YieldResponse::from_json(&cnfet_pipeline::Json::parse(&wire).unwrap())
            .unwrap();
    assert_eq!(&back, &responses[0]);

    // Capability discovery tells the two front ends apart.
    assert!(opt.describe().requests.contains(&"co_opt".to_string()));
    let bare = YieldService::new();
    assert!(!bare.describe().requests.contains(&"co_opt".to_string()));

    // A bare service answers the same request with a structured decline.
    let responses = bare.handle(&request);
    assert_eq!(responses.len(), 1);
    match &responses[0].body {
        ResponseBody::Error(e) => {
            assert_eq!(
                e.code,
                ErrorCode::UnsupportedBody {
                    body: "co_opt".into()
                }
            );
        }
        other => panic!("expected unsupported_body, got {other:?}"),
    }
}

#[test]
fn searcher_spec_forms_round_trip() {
    for (form, expected) in [
        (r#""grid""#, SearcherSpec::GridScan),
        (
            r#"{ "kind": "coordinate-descent", "restarts": 5 }"#,
            SearcherSpec::CoordinateDescent {
                restarts: 5,
                max_sweeps: 8,
            },
        ),
        (
            // Nested single-key form; omitted params take the defaults.
            r#"{ "genetic": { "population": 12, "mutation_rate": 0.5 } }"#,
            SearcherSpec::Genetic {
                population: 12,
                generations: 8,
                tournament_k: 3,
                mutation_rate: 0.5,
            },
        ),
        (
            r#"{ "kind": "genetic", "population": 6, "generations": 2, "tournament_k": 2, "mutation_rate": 0.1 }"#,
            SearcherSpec::Genetic {
                population: 6,
                generations: 2,
                tournament_k: 2,
                mutation_rate: 0.1,
            },
        ),
        (
            r#"{ "halving": { "inner": "grid", "rungs": 2, "eta": 4 } }"#,
            SearcherSpec::Halving {
                inner: Box::new(SearcherSpec::GridScan),
                rungs: 2,
                eta: 4,
            },
        ),
        (
            // A bare "halving" wraps the default genetic searcher.
            r#""halving""#,
            SearcherSpec::Halving {
                inner: Box::new(SearcherSpec::Genetic {
                    population: 24,
                    generations: 8,
                    tournament_k: 3,
                    mutation_rate: 0.25,
                }),
                rungs: 3,
                eta: 2,
            },
        ),
    ] {
        let spec = spec(r#""l_cnt_um": [50, 200]"#, form);
        assert_eq!(spec.searcher, expected);
        let back = CoOptSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec, "normal form must round-trip");
    }
}

#[test]
fn genetic_and_halving_reports_are_byte_identical_for_any_worker_count() {
    // The determinism contract extends to the adaptive strategies: the
    // genetic walk and the halving ladder make sequential seeded
    // decisions, so worker count must not change a byte of the report —
    // including the new `search` provenance block.
    for searcher in [
        r#"{ "genetic": { "population": 6, "generations": 3, "tournament_k": 2, "mutation_rate": 0.3 } }"#,
        r#"{ "halving": { "inner": { "genetic": { "population": 6, "generations": 2 } }, "rungs": 2, "eta": 2 } }"#,
    ] {
        let spec = spec(
            r#""l_cnt_um": [50, 100, 200], "grid": ["single", "dual"]"#,
            searcher,
        );
        let runs: Vec<String> = [1usize, 8]
            .iter()
            .map(|&workers| {
                run_co_opt(&YieldService::new(), &spec, 20100613, workers)
                    .unwrap()
                    .to_json()
                    .to_string_pretty()
            })
            .collect();
        assert_eq!(
            runs[0], runs[1],
            "workers 1 vs 8 must not change a byte ({searcher})"
        );
        assert!(
            runs[0].contains("\"search\""),
            "adaptive searchers must emit the search provenance block"
        );
    }
}

#[test]
fn halving_ladder_is_free_on_analytic_backends_and_finds_the_optimum() {
    // On an analytic back-end the precision relaxation is a no-op: every
    // rung re-reads the memo, so the ladder costs exactly what its inner
    // strategy costs — and the grid inner makes the front exact.
    let search = r#""l_cnt_um": [50, 100, 200], "grid": ["dual", "single"]"#;
    let exhaustive = run_co_opt(&YieldService::new(), &spec(search, r#""grid""#), 3, 2).unwrap();
    let ladder = run_co_opt(
        &YieldService::new(),
        &spec(
            search,
            r#"{ "halving": { "inner": "grid", "rungs": 3, "eta": 2 } }"#,
        ),
        3,
        2,
    )
    .unwrap();
    assert_eq!(ladder.searcher, "halving+grid");
    assert_eq!(
        ladder.evaluations, exhaustive.evaluations,
        "analytic rungs must not add evaluations"
    );
    assert_eq!(ladder.best.scenario, exhaustive.best.scenario);
    assert_eq!(ladder.best.cost, exhaustive.best.cost);
    let search_block = ladder.search.expect("ladder reports provenance");
    assert_eq!(search_block.rungs.len(), 3);
    assert_eq!(search_block.rungs.last().unwrap().relax, 1.0);
    assert_eq!(search_block.rungs.last().unwrap().promoted, 0);
}
