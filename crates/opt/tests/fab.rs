//! Integration contract of the fab-space search: the shipped example
//! spec parses and executes, the ranking matches physical expectation
//! (flatter density profile → higher wafer yield), and dist-valued
//! co-opt axes — the scalar knobs' new distribution forms — parse and
//! evaluate end to end.

use cnfet_opt::{run_co_opt, run_fab_search, FabSpec};
use cnfet_pipeline::{CoOptSpec, YieldService};

#[test]
fn shipped_example_spec_runs_and_ranks_flat_trend_best() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/coopt/field_hyperparameters.json"
    ))
    .expect("example spec must ship");
    let spec = FabSpec::parse(&src).expect("example spec must parse");
    assert_eq!(spec.candidate_count(), 9);

    let service = YieldService::new();
    let report = run_fab_search(&service, &spec, 20100613, 2).unwrap();
    assert_eq!(report.candidates.len(), 9);
    let best = &report.candidates[report.best];
    assert!(
        best.label.contains("density.trend=0"),
        "flattest wafer must win: {}",
        best.label
    );
    // The artifact round-trips as stable JSON (same run, same bytes).
    let again = run_fab_search(&service, &spec, 20100613, 4).unwrap();
    assert_eq!(
        report.to_json().to_string_pretty(),
        again.to_json().to_string_pretty()
    );
}

#[test]
fn coopt_axes_accept_distribution_values() {
    // A scenario axis may now carry distribution objects: the candidates
    // realize per-seed draws through the stochastic knob layer.
    let spec = CoOptSpec::parse(
        r#"{
            "name": "dist-axis",
            "base": {
                "backend": "gaussian-sum",
                "rho": "paper",
                "fast_design": true,
                "correlation": "growth+aligned-layout"
            },
            "search": {
                "density": [1.0, { "gaussian": { "mean": 1.0, "sd": 0.05 } }],
                "l_cnt_um": [100, 200]
            },
            "searcher": "grid"
        }"#,
    )
    .unwrap();
    let report = run_co_opt(&YieldService::new(), &spec, 7, 2).unwrap();
    assert_eq!(report.evaluations, 4);
    // Same spec, same seed → byte-identical artifact even though half the
    // candidates sample their density.
    let again = run_co_opt(&YieldService::new(), &spec, 7, 1).unwrap();
    assert_eq!(
        report.to_json().to_string_pretty(),
        again.to_json().to_string_pretty()
    );
}
