//! # cnfet-fault
//!
//! s-CNT purity defects and redundancy-aware yield recovery — the
//! fault-tolerance workload axis the source paper could not ask about.
//!
//! The DAC 2010 paper treats every CNT as semiconducting once the
//! metallic ones are etched, so the only failure mode is the *open*
//! (CNT-count) failure its correlation idea relaxes. Two related lines of
//! work open the other half of the trade space:
//!
//! * **Purity** (Islam et al., high-yield s-CNT fabrication): a fraction
//!   `1 − purity` of the CNTs under a gate are metallic. They either
//!   **short** the transistor (they conduct regardless of gate bias) or
//!   are **removed** by a purification step — which thins the CNT count
//!   and feeds the paper's existing open-failure path. [`purity`] models
//!   both.
//! * **Redundancy** (Lu et al., CNT-FPGA testing and fault tolerance):
//!   architectural spares recover yield from imperfect cells — TMR
//!   voting, spare units, and repairable tiles with imperfect test
//!   coverage. [`redundancy`] is the composable scheme algebra: exact
//!   log-space k-of-n tails where closed-form, the adaptive Monte-Carlo
//!   driver of `cnfet-sim` otherwise, byte-deterministic for any worker
//!   count either way.
//!
//! Together they let the co-optimizer trade *processing* spend (purity,
//! CNT correlation length) against *architecture* spend (redundant area)
//! at a fixed chip-yield target.
//!
//! ## Example
//!
//! ```
//! use cnfet_fault::purity::short_probability;
//! use cnfet_fault::redundancy::RedundancyScheme;
//!
//! # fn main() -> cnfet_fault::Result<()> {
//! // ~30 CNTs under a gate at 99.9999 % purity: ~3e-5 short probability.
//! let p_short = short_probability(0.999_999, 30.0)?;
//! assert!((p_short - 3e-5).abs() / 3e-5 < 0.01);
//!
//! // A repairable-tile fabric tolerates a far leakier cell than raw
//! // yield does: the per-cell budget grows by orders of magnitude.
//! let none = RedundancyScheme::None.required_p_cell(0.9, 1e8)?;
//! let tiles = RedundancyScheme::RepairableTile {
//!     tiles: 64,
//!     spare_tiles: 8,
//!     test_coverage: 0.99,
//! };
//! let repaired = tiles.required_p_cell(0.9, 1e8)?;
//! assert!(repaired > 10.0 * none);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod purity;
pub mod redundancy;

pub use purity::{short_probability, PurityMode};
pub use redundancy::{ComposeMethod, ComposeOutcome, McFallback, RedundancyScheme};

use std::error::Error;
use std::fmt;

/// Error type of the fault subsystem.
#[derive(Debug)]
pub enum FaultError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The adaptive Monte-Carlo fallback failed.
    Mc(cnfet_sim::SimError),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid {name} = {value}: {constraint}"),
            FaultError::Mc(e) => write!(f, "redundancy MC fallback: {e}"),
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Mc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnfet_sim::SimError> for FaultError {
    fn from(e: cnfet_sim::SimError) -> Self {
        FaultError::Mc(e)
    }
}

/// Result alias of the fault subsystem.
pub type Result<T> = std::result::Result<T, FaultError>;
