//! The composable redundancy-scheme algebra.
//!
//! A [`RedundancyScheme`] maps a raw per-cell failure probability `p`
//! (opens + shorts combined) over a circuit of `M` cells to the
//! *effective* circuit yield after architectural recovery. Every scheme
//! has an exact closed form — log-space k-of-n binomial tails via
//! [`cnt_stats::special::binomial_tail_le`] — up to
//! [`EXACT_TERM_LIMIT`] tail terms; beyond that, [`RedundancyScheme::compose`]
//! falls back to the adaptive Monte-Carlo driver of `cnfet-sim`
//! (geometric-skip binomial sampling, so a trial costs `O(n·q)` expected
//! work, not `O(n)`), which is byte-deterministic for any worker count.
//!
//! The inverse direction, [`RedundancyScheme::required_p_cell`], is what
//! the `W_min` solver consumes: the largest per-cell failure budget that
//! still meets a chip-yield target under the scheme. It always uses the
//! exact tail (deterministic bisection), and therefore refuses schemes
//! beyond [`INVERT_TERM_LIMIT`] terms.

use crate::{FaultError, Result};
use cnfet_sim::McPrecision;
use cnt_stats::special::binomial_tail_le;
use rand::Rng;

/// Largest number of exact tail terms [`RedundancyScheme::compose`]
/// evaluates before switching to the Monte-Carlo fallback.
pub const EXACT_TERM_LIMIT: u64 = 4096;

/// Largest number of exact tail terms [`RedundancyScheme::required_p_cell`]
/// will bisect over (the inversion is exact-only).
pub const INVERT_TERM_LIMIT: u64 = 65_536;

/// Bisection steps of [`RedundancyScheme::required_p_cell`]: enough to
/// pin budgets down to ~1e-30 absolute, far below any physical `p`.
const INVERT_STEPS: u32 = 200;

/// An architectural redundancy scheme over `M` identical cells.
///
/// The canonical kind strings of [`RedundancyScheme::KINDS`] are the wire
/// names used by the scenario layer and enumerated by `describe`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RedundancyScheme {
    /// No redundancy: `Y = (1 − p)^M`.
    None,
    /// Cell-level triple modular redundancy with an ideal majority
    /// voter: a voted cell fails only when ≥ 2 of its 3 replicas fail
    /// (`p_v = p²(3 − 2p)`), at 3× area.
    Tmr,
    /// `spares` cold spare units over units of `unit_size` cells: the
    /// circuit's `ceil(M/unit_size)` units plus the spares all fail
    /// independently, and the chip works while at most `spares` of them
    /// fail (a k-of-n tail).
    SpareUnits {
        /// Number of spare units available for remapping.
        spares: u64,
        /// Cells per replaceable unit.
        unit_size: u64,
    },
    /// An FPGA-like repairable fabric of `tiles` tiles plus
    /// `spare_tiles` spares, repaired by test-and-remap with imperfect
    /// `test_coverage`: a failed tile escapes the test (and kills the
    /// chip) with probability `1 − test_coverage`, otherwise it is
    /// remapped onto a spare. The chip works when no failure escapes and
    /// at most `spare_tiles` detected failures occur.
    RepairableTile {
        /// Working tiles the design needs.
        tiles: u64,
        /// Spare tiles available for remapping.
        spare_tiles: u64,
        /// Probability a failed tile is caught by test, in `[0, 1]`.
        test_coverage: f64,
    },
}

/// How [`RedundancyScheme::compose`] obtained its yield value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposeMethod {
    /// Exact log-space closed form.
    Exact,
    /// Adaptive Monte-Carlo fallback.
    MonteCarlo,
}

impl ComposeMethod {
    /// Canonical method names, in declaration order.
    pub const KINDS: [&'static str; 2] = ["exact", "monte-carlo"];

    /// The canonical name of this method.
    pub fn name(&self) -> &'static str {
        match self {
            ComposeMethod::Exact => Self::KINDS[0],
            ComposeMethod::MonteCarlo => Self::KINDS[1],
        }
    }

    /// Parse a canonical method name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(ComposeMethod::Exact),
            "monte-carlo" => Some(ComposeMethod::MonteCarlo),
            _ => None,
        }
    }
}

/// The result of one [`RedundancyScheme::compose`] evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeOutcome {
    /// Effective circuit yield after redundancy recovery.
    pub circuit_yield: f64,
    /// Whether the value is exact or Monte-Carlo estimated.
    pub method: ComposeMethod,
    /// Trials consumed (0 on the exact path).
    pub trials: u64,
}

/// Seeding and precision of the Monte-Carlo fallback path.
///
/// The outcome is a pure function of `(scheme, p, m, seed, precision)` —
/// `workers` only changes wall-clock, exactly like every other adaptive
/// driver call in the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McFallback {
    /// Base RNG seed of the adaptive run.
    pub seed: u64,
    /// Worker threads (wall-clock only, never the result).
    pub workers: usize,
    /// Convergence target of the adaptive driver.
    pub precision: McPrecision,
}

impl Default for McFallback {
    fn default() -> Self {
        Self {
            seed: 0,
            workers: 1,
            precision: McPrecision::default(),
        }
    }
}

impl RedundancyScheme {
    /// Canonical kind strings, in declaration order. The JSON layer and
    /// `describe` enumeration both derive from this one constant.
    ///
    /// ```
    /// use cnfet_fault::RedundancyScheme;
    /// assert_eq!(
    ///     RedundancyScheme::KINDS,
    ///     ["none", "tmr", "spare-units", "repairable-tile"]
    /// );
    /// ```
    pub const KINDS: [&'static str; 4] = ["none", "tmr", "spare-units", "repairable-tile"];

    /// The canonical kind name of this scheme.
    pub fn name(&self) -> &'static str {
        match self {
            RedundancyScheme::None => Self::KINDS[0],
            RedundancyScheme::Tmr => Self::KINDS[1],
            RedundancyScheme::SpareUnits { .. } => Self::KINDS[2],
            RedundancyScheme::RepairableTile { .. } => Self::KINDS[3],
        }
    }

    /// Validate the scheme's parameters.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidParameter`] for zero-sized units/tiles or a
    /// test coverage outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            RedundancyScheme::None | RedundancyScheme::Tmr => Ok(()),
            RedundancyScheme::SpareUnits { spares, unit_size } => {
                if unit_size == 0 {
                    return Err(FaultError::InvalidParameter {
                        name: "unit_size",
                        value: 0.0,
                        constraint: "must be >= 1 cell",
                    });
                }
                if spares == 0 {
                    return Err(FaultError::InvalidParameter {
                        name: "spares",
                        value: 0.0,
                        constraint: "must be >= 1 (use `none` for no spares)",
                    });
                }
                Ok(())
            }
            RedundancyScheme::RepairableTile {
                tiles,
                spare_tiles,
                test_coverage,
            } => {
                if tiles == 0 {
                    return Err(FaultError::InvalidParameter {
                        name: "tiles",
                        value: 0.0,
                        constraint: "must be >= 1",
                    });
                }
                if spare_tiles == 0 {
                    return Err(FaultError::InvalidParameter {
                        name: "spare_tiles",
                        value: 0.0,
                        constraint: "must be >= 1 (use `none` for no spares)",
                    });
                }
                if !(0.0..=1.0).contains(&test_coverage) {
                    return Err(FaultError::InvalidParameter {
                        name: "test_coverage",
                        value: test_coverage,
                        constraint: "must be in [0, 1]",
                    });
                }
                Ok(())
            }
        }
    }

    /// Exact tail terms an evaluation needs (1 for the closed-form
    /// `None`/`Tmr` schemes, `spares + 1` for the k-of-n ones).
    pub fn exact_terms(&self) -> u64 {
        match *self {
            RedundancyScheme::None | RedundancyScheme::Tmr => 1,
            RedundancyScheme::SpareUnits { spares, .. } => spares + 1,
            RedundancyScheme::RepairableTile { spare_tiles, .. } => spare_tiles + 1,
        }
    }

    /// Area multiplier of the scheme over a circuit of `m_cells` cells
    /// (≥ 1.0; voters and test logic are not charged).
    pub fn area_overhead(&self, m_cells: f64) -> f64 {
        match *self {
            RedundancyScheme::None => 1.0,
            RedundancyScheme::Tmr => 3.0,
            RedundancyScheme::SpareUnits { spares, unit_size } => {
                let n = (m_cells / unit_size as f64).ceil().max(1.0);
                (n + spares as f64) / n
            }
            RedundancyScheme::RepairableTile {
                tiles, spare_tiles, ..
            } => (tiles + spare_tiles) as f64 / tiles as f64,
        }
    }

    /// The scheme's redundant-group parameters at `(p, m)`:
    /// `(n_total, spares_allowed, ln q, ln(1 − q))` of the governing
    /// binomial tail, where `q` is the per-group failure probability.
    fn tail_parameters(&self, p: f64, m: f64) -> (u64, u64, f64, f64) {
        match *self {
            RedundancyScheme::None => {
                // Degenerate 0-of-1 tail over the whole circuit.
                let ln_1mq = m * (-p).ln_1p();
                let q = -ln_1mq.exp_m1();
                (1, 0, q.ln(), ln_1mq)
            }
            RedundancyScheme::Tmr => {
                // Voted-cell failure p_v = p²(3 − 2p); 0-of-1 over M
                // voted cells.
                let p_v = (p * p * (3.0 - 2.0 * p)).min(1.0);
                let ln_1mq = m * (-p_v).ln_1p();
                let q = -ln_1mq.exp_m1();
                (1, 0, q.ln(), ln_1mq)
            }
            RedundancyScheme::SpareUnits { spares, unit_size } => {
                let n = (m / unit_size as f64).ceil().max(1.0) as u64;
                let ln_unit_ok = unit_size as f64 * (-p).ln_1p();
                let q = -ln_unit_ok.exp_m1();
                (n + spares, spares, q.ln(), ln_unit_ok)
            }
            RedundancyScheme::RepairableTile {
                tiles,
                spare_tiles,
                test_coverage,
            } => {
                // Per-tile failure q over m/tiles cells; only *detected*
                // failures (q·c) are repairable. An escape anywhere kills
                // the chip, which the tail encodes by keeping the
                // per-tile "good" weight at 1 − q (not 1 − q·c): states
                // with any undetected failure are excluded from every
                // term.
                let ln_tile_ok = (m / tiles as f64) * (-p).ln_1p();
                let q = -ln_tile_ok.exp_m1();
                (
                    (tiles + spare_tiles),
                    spare_tiles,
                    (q * test_coverage).ln(),
                    ln_tile_ok,
                )
            }
        }
    }

    /// Exact effective circuit yield at per-cell failure `p` over
    /// `m_cells` cells, whatever the term count.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidParameter`] unless `p ∈ [0, 1]` and
    /// `m_cells` is finite and ≥ 1, or the scheme itself is invalid.
    pub fn circuit_yield(&self, p: f64, m_cells: f64) -> Result<f64> {
        self.validate()?;
        check_pm(p, m_cells)?;
        if p == 0.0 {
            return Ok(1.0);
        }
        let (n, s, ln_q, ln_1mq) = self.tail_parameters(p, m_cells);
        Ok(binomial_tail_le(n, s, ln_q, ln_1mq))
    }

    /// Effective circuit yield with provenance: exact while the tail has
    /// at most [`EXACT_TERM_LIMIT`] terms, the adaptive Monte-Carlo
    /// driver beyond that. Byte-deterministic for any `mc.workers`.
    ///
    /// # Errors
    ///
    /// As [`RedundancyScheme::circuit_yield`], plus
    /// [`FaultError::Mc`] when the fallback driver rejects its
    /// precision parameters.
    pub fn compose(&self, p: f64, m_cells: f64, mc: &McFallback) -> Result<ComposeOutcome> {
        self.validate()?;
        check_pm(p, m_cells)?;
        if p == 0.0 || self.exact_terms() <= EXACT_TERM_LIMIT {
            return Ok(ComposeOutcome {
                circuit_yield: self.circuit_yield(p, m_cells)?,
                method: ComposeMethod::Exact,
                trials: 0,
            });
        }
        let (n, s, ln_q, ln_1mq) = self.tail_parameters(p, m_cells);
        let q = -ln_1mq.exp_m1();
        // Detection probability folded into ln_q by tail_parameters;
        // recover it for the per-failure Bernoulli draw.
        let detect = if q > 0.0 {
            (ln_q.exp() / q).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let outcome =
            cnfet_sim::run_adaptive_affine(&mc.precision, mc.workers, mc.seed, 0.0, 1.0, |rng| {
                let mut detected = 0u64;
                let mut i = 0u64;
                if q >= 1.0 {
                    detected = n;
                } else if q > 0.0 {
                    let ln_skip = (-q).ln_1p();
                    loop {
                        // Geometric skip to the next failed group:
                        // O(n·q) expected work per trial.
                        let u: f64 = rng.gen();
                        let skip = (u.ln() / ln_skip).floor();
                        if !skip.is_finite() || skip >= (n - i) as f64 {
                            break;
                        }
                        i += skip as u64 + 1;
                        let caught = detect >= 1.0 || rng.gen::<f64>() < detect;
                        if !caught {
                            // An escaped failure kills the chip outright.
                            detected = n;
                            break;
                        }
                        detected += 1;
                        if i >= n || detected > s {
                            break;
                        }
                    }
                }
                if detected <= s {
                    1.0
                } else {
                    0.0
                }
            })?;
        Ok(ComposeOutcome {
            circuit_yield: outcome.ci.estimate,
            method: ComposeMethod::MonteCarlo,
            trials: outcome.trials,
        })
    }

    /// The largest per-cell failure budget `p` that still meets
    /// `yield_target` over `m_cells` cells under this scheme — the
    /// quantity the `W_min` solver consumes. `None` uses the closed form
    /// `1 − Y^(1/M)` (byte-identical to the un-redundant pipeline);
    /// every other scheme bisects the exact tail, deterministically.
    ///
    /// # Errors
    ///
    /// [`FaultError::InvalidParameter`] unless `yield_target ∈ (0, 1)`
    /// and `m_cells ≥ 1`, or when the scheme needs more than
    /// [`INVERT_TERM_LIMIT`] exact terms.
    pub fn required_p_cell(&self, yield_target: f64, m_cells: f64) -> Result<f64> {
        self.validate()?;
        if !(yield_target > 0.0 && yield_target < 1.0) {
            return Err(FaultError::InvalidParameter {
                name: "yield_target",
                value: yield_target,
                constraint: "must be in (0, 1)",
            });
        }
        if !(m_cells.is_finite() && m_cells >= 1.0) {
            return Err(FaultError::InvalidParameter {
                name: "m_cells",
                value: m_cells,
                constraint: "must be finite and >= 1",
            });
        }
        if let RedundancyScheme::None = self {
            return Ok(1.0 - yield_target.powf(1.0 / m_cells));
        }
        if self.exact_terms() > INVERT_TERM_LIMIT {
            return Err(FaultError::InvalidParameter {
                name: "spares",
                value: self.exact_terms() as f64,
                constraint: "scheme too large for exact inversion (INVERT_TERM_LIMIT terms)",
            });
        }
        // Yield is monotone non-increasing in p; bisect the largest p
        // with Y(p) >= target. Fixed step count keeps it deterministic.
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..INVERT_STEPS {
            let mid = 0.5 * (lo + hi);
            let (n, s, ln_q, ln_1mq) = self.tail_parameters(mid, m_cells);
            if binomial_tail_le(n, s, ln_q, ln_1mq) >= yield_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

fn check_pm(p: f64, m_cells: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultError::InvalidParameter {
            name: "p",
            value: p,
            constraint: "must be in [0, 1]",
        });
    }
    if !(m_cells.is_finite() && m_cells >= 1.0) {
        return Err(FaultError::InvalidParameter {
            name: "m_cells",
            value: m_cells,
            constraint: "must be finite and >= 1",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: f64 = 1e8;

    /// `(1 − p)^m` with full tail precision.
    fn survival(p: f64, m: f64) -> f64 {
        (m * (-p).ln_1p()).exp()
    }

    #[test]
    fn none_matches_raw_survival() {
        let p = 3e-9;
        let y = RedundancyScheme::None.circuit_yield(p, M).unwrap();
        assert!((y - survival(p, M)).abs() < 1e-12, "{y}");
    }

    #[test]
    fn none_inversion_matches_closed_form() {
        let req = RedundancyScheme::None.required_p_cell(0.9, M).unwrap();
        assert_eq!(req, 1.0 - 0.9_f64.powf(1.0 / M));
    }

    #[test]
    fn tmr_beats_none_and_costs_3x() {
        let p = 1e-5;
        let none = RedundancyScheme::None.circuit_yield(p, M).unwrap();
        let tmr = RedundancyScheme::Tmr.circuit_yield(p, M).unwrap();
        assert!(tmr > none);
        // p_v ≈ 3p² = 3e-10 → Y ≈ exp(−0.03) ≈ 0.97.
        assert!((tmr - (-(3.0 * p * p) * M).exp()).abs() < 1e-3, "{tmr}");
        assert_eq!(RedundancyScheme::Tmr.area_overhead(M), 3.0);
    }

    #[test]
    fn spare_units_tail_is_exact() {
        // 4 units of 1 cell + 2 spares at p = 0.1: P(Bin(6, 0.1) <= 2).
        let scheme = RedundancyScheme::SpareUnits {
            spares: 2,
            unit_size: 1,
        };
        let y = scheme.circuit_yield(0.1, 4.0).unwrap();
        let q: f64 = 0.1;
        let exact: f64 = (0..=2)
            .map(|k| {
                let c = [1.0, 6.0, 15.0][k as usize];
                c * q.powi(k) * (1.0 - q).powi(6 - k)
            })
            .sum();
        assert!((y - exact).abs() < 1e-12, "{y} vs {exact}");
        assert!((scheme.area_overhead(4.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn repairable_tile_full_coverage_equals_spare_units() {
        let tiles = RedundancyScheme::RepairableTile {
            tiles: 50,
            spare_tiles: 5,
            test_coverage: 1.0,
        };
        let spares = RedundancyScheme::SpareUnits {
            spares: 5,
            unit_size: 2_000_000, // M / 50 cells per unit
        };
        let y_t = tiles.circuit_yield(2e-8, M).unwrap();
        let y_s = spares.circuit_yield(2e-8, M).unwrap();
        assert!((y_t - y_s).abs() < 1e-9, "{y_t} vs {y_s}");
    }

    #[test]
    fn imperfect_coverage_hurts() {
        let mk = |c| RedundancyScheme::RepairableTile {
            tiles: 50,
            spare_tiles: 5,
            test_coverage: c,
        };
        let perfect = mk(1.0).circuit_yield(2e-8, M).unwrap();
        let leaky = mk(0.9).circuit_yield(2e-8, M).unwrap();
        let blind = mk(0.0).circuit_yield(2e-8, M).unwrap();
        let none = RedundancyScheme::None.circuit_yield(2e-8, M).unwrap();
        assert!(perfect > leaky && leaky > blind);
        // Zero coverage = no repair at all, and the spare tiles are
        // extra silicon that must also be defect-free: strictly worse
        // than no redundancy, equal to survival over t + s tiles.
        assert!(blind < none, "{blind} vs {none}");
        let q = -((M / 50.0) * (-2e-8_f64).ln_1p()).exp_m1();
        let expected = (55.0 * (-q).ln_1p()).exp();
        assert!((blind - expected).abs() < 1e-12, "{blind} vs {expected}");
    }

    #[test]
    fn required_p_cell_is_consistent_with_forward_yield() {
        for scheme in [
            RedundancyScheme::Tmr,
            RedundancyScheme::SpareUnits {
                spares: 8,
                unit_size: 100_000,
            },
            RedundancyScheme::RepairableTile {
                tiles: 64,
                spare_tiles: 8,
                test_coverage: 0.99,
            },
        ] {
            let p = scheme.required_p_cell(0.9, M).unwrap();
            let y = scheme.circuit_yield(p, M).unwrap();
            assert!((y - 0.9).abs() < 1e-6, "{scheme:?}: p={p:e} y={y}");
            // Redundancy must relax the budget vs. no redundancy.
            let raw = RedundancyScheme::None.required_p_cell(0.9, M).unwrap();
            assert!(p > raw, "{scheme:?}: {p:e} <= {raw:e}");
        }
    }

    #[test]
    fn compose_switches_to_mc_and_stays_deterministic() {
        let scheme = RedundancyScheme::SpareUnits {
            spares: EXACT_TERM_LIMIT + 64,
            unit_size: 1000,
        };
        // A p so large the exact path would need the MC driver's regime.
        let p = 1e-5;
        let mc = McFallback {
            seed: 7,
            workers: 1,
            precision: McPrecision {
                rel_ci: 0.1,
                max_trials: 40_000,
                batch: 2_000,
                level: 0.95,
            },
        };
        let a = scheme.compose(p, M, &mc).unwrap();
        assert_eq!(a.method, ComposeMethod::MonteCarlo);
        assert!(a.trials > 0);
        let b = scheme
            .compose(p, M, &McFallback { workers: 4, ..mc })
            .unwrap();
        assert_eq!(a, b, "MC fallback must be worker-count independent");
        // The estimate must agree with the exact tail it replaced.
        let exact = scheme.circuit_yield(p, M).unwrap();
        assert!(
            (a.circuit_yield - exact).abs() < 0.05,
            "mc {} vs exact {exact}",
            a.circuit_yield
        );
    }

    #[test]
    fn small_schemes_compose_exactly() {
        let scheme = RedundancyScheme::SpareUnits {
            spares: 4,
            unit_size: 1_000_000,
        };
        let out = scheme.compose(1e-8, M, &McFallback::default()).unwrap();
        assert_eq!(out.method, ComposeMethod::Exact);
        assert_eq!(out.trials, 0);
        assert_eq!(out.circuit_yield, scheme.circuit_yield(1e-8, M).unwrap());
    }

    #[test]
    fn validation_rejects_degenerate_schemes() {
        assert!(RedundancyScheme::SpareUnits {
            spares: 0,
            unit_size: 10
        }
        .validate()
        .is_err());
        assert!(RedundancyScheme::SpareUnits {
            spares: 1,
            unit_size: 0
        }
        .validate()
        .is_err());
        assert!(RedundancyScheme::RepairableTile {
            tiles: 0,
            spare_tiles: 1,
            test_coverage: 0.9
        }
        .validate()
        .is_err());
        assert!(RedundancyScheme::RepairableTile {
            tiles: 4,
            spare_tiles: 1,
            test_coverage: 1.5
        }
        .validate()
        .is_err());
        assert!(RedundancyScheme::None.circuit_yield(1.5, M).is_err());
        assert!(RedundancyScheme::None.circuit_yield(0.5, 0.5).is_err());
    }

    #[test]
    fn kinds_name_every_variant() {
        let schemes = [
            RedundancyScheme::None,
            RedundancyScheme::Tmr,
            RedundancyScheme::SpareUnits {
                spares: 1,
                unit_size: 1,
            },
            RedundancyScheme::RepairableTile {
                tiles: 1,
                spare_tiles: 1,
                test_coverage: 1.0,
            },
        ];
        for (scheme, kind) in schemes.iter().zip(RedundancyScheme::KINDS) {
            assert_eq!(scheme.name(), kind);
        }
    }
}
