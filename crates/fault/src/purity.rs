//! The s-CNT purity defect model.
//!
//! A growth process of purity `p ∈ (0, 1]` leaves a fraction `1 − p` of
//! CNTs metallic. What a metallic CNT does to the transistor above it
//! depends on the processing flow, captured by [`PurityMode`]:
//!
//! * [`PurityMode::Short`] — the metallic CNT stays and conducts
//!   regardless of gate bias. One metallic CNT anywhere under the gate
//!   shorts the device, so with an expected `N̄(W)` CNTs under a gate of
//!   width `W` the short probability is `1 − p^N̄(W)`
//!   ([`short_probability`]). Shorts are *per-device* defects: unlike
//!   CNT-count opens they are **not** relaxed by spatial correlation,
//!   and widening the device makes them *worse* (more CNTs, more
//!   chances) — the opposite pull of the open-failure path, which is
//!   what makes the purity × upsizing trade-off non-trivial.
//! * [`PurityMode::Removal`] — a purification step (e.g. selective
//!   etching / sorting) removes the metallic CNTs instead. The device
//!   never shorts, but the removal thins the CNT count, feeding the
//!   paper's existing *open* (count) failure path: the effective
//!   metallic fraction handed to the processing corner becomes `1 − p`.

use crate::{FaultError, Result};

/// How metallic CNTs manifest electrically. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurityMode {
    /// Metallic CNTs stay and short the device.
    Short,
    /// Metallic CNTs are removed, thinning the CNT count (the existing
    /// open-failure path).
    Removal,
}

impl PurityMode {
    /// Canonical mode names, in declaration order. The JSON layer and
    /// `describe` enumeration both derive from this one constant.
    pub const KINDS: [&'static str; 2] = ["short", "removal"];

    /// The canonical name of this mode.
    pub fn name(&self) -> &'static str {
        match self {
            PurityMode::Short => Self::KINDS[0],
            PurityMode::Removal => Self::KINDS[1],
        }
    }

    /// Parse a canonical mode name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "short" => Some(PurityMode::Short),
            "removal" => Some(PurityMode::Removal),
            _ => None,
        }
    }
}

/// Per-device short probability `1 − purity^mean_count`, evaluated as
/// `−expm1(mean_count · ln1p(purity − 1))` so that purities within
/// `1e-15` of 1 keep full relative precision (the chip-scale regime:
/// useful purities are `1 − 1e-5 … 1 − 1e-12`).
///
/// # Errors
///
/// [`FaultError::InvalidParameter`] unless `purity ∈ (0, 1]` and
/// `mean_count` is finite and `≥ 0`.
///
/// ```
/// use cnfet_fault::purity::short_probability;
/// // Perfect purity never shorts, regardless of device width.
/// assert_eq!(short_probability(1.0, 1e9).unwrap(), 0.0);
/// // Tiny impurity × many CNTs ≈ impurity · count.
/// let p = short_probability(1.0 - 1e-9, 25.0).unwrap();
/// assert!((p - 25e-9).abs() / 25e-9 < 1e-6);
/// ```
pub fn short_probability(purity: f64, mean_count: f64) -> Result<f64> {
    if !(purity > 0.0 && purity <= 1.0) {
        return Err(FaultError::InvalidParameter {
            name: "purity",
            value: purity,
            constraint: "must be in (0, 1]",
        });
    }
    if !(mean_count.is_finite() && mean_count >= 0.0) {
        return Err(FaultError::InvalidParameter {
            name: "mean_count",
            value: mean_count,
            constraint: "must be finite and >= 0",
        });
    }
    Ok(-((mean_count * (purity - 1.0).ln_1p()).exp_m1()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_round_trip_their_names() {
        for kind in PurityMode::KINDS {
            let mode = PurityMode::parse(kind).unwrap();
            assert_eq!(mode.name(), kind);
        }
        assert_eq!(PurityMode::parse("shortt"), None);
    }

    #[test]
    fn short_probability_limits() {
        assert_eq!(short_probability(1.0, 30.0).unwrap(), 0.0);
        assert_eq!(short_probability(0.5, 0.0).unwrap(), 0.0);
        // One CNT at purity p: short probability exactly 1 − p.
        let p = short_probability(0.9, 1.0).unwrap();
        assert!((p - 0.1).abs() < 1e-12, "{p}");
        // Monotone: more CNTs, more shorts; lower purity, more shorts.
        let a = short_probability(0.999, 10.0).unwrap();
        let b = short_probability(0.999, 20.0).unwrap();
        let c = short_probability(0.99, 10.0).unwrap();
        assert!(a < b && a < c);
    }

    #[test]
    fn short_probability_keeps_tail_precision() {
        // purity = 1 − 1e-12, N = 25: p_short ≈ 25 × impurity with full
        // relative precision (naive 1 − powf would keep only ~4
        // significant digits at this scale). Compare against the actual
        // rounded impurity of the f64 input.
        let purity = 1.0 - 1e-12_f64;
        let impurity = 1.0 - purity;
        let p = short_probability(purity, 25.0).unwrap();
        assert!(
            (p - 25.0 * impurity).abs() / (25.0 * impurity) < 1e-9,
            "{p:e}"
        );
    }

    #[test]
    fn rejects_bad_domains() {
        assert!(short_probability(0.0, 10.0).is_err());
        assert!(short_probability(1.1, 10.0).is_err());
        assert!(short_probability(f64::NAN, 10.0).is_err());
        assert!(short_probability(0.9, -1.0).is_err());
        assert!(short_probability(0.9, f64::INFINITY).is_err());
    }
}
