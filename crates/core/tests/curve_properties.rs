//! Property tests for the memoized `pF(W)` curve: interpolation accuracy
//! against the exact model, and `W_min`-solver agreement on the paper's
//! case studies.

use cnfet_core::corner::ProcessCorner;
use cnfet_core::curve::{FailureCurve, PFailure};
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::stochastic::McFailure;
use cnfet_core::wmin::WminSolver;
use cnfet_sim::adaptive::McPrecision;
use cnt_stats::renewal::CountModel;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Replica of the [`PFailure::width_for_failure`] default serial
/// bisection, probing `eval` directly. Memoized/batched overrides promise
/// bit-identical results to this sequence.
fn serial_bisection<E: PFailure>(eval: &E, target: f64, w_lo: f64, w_hi: f64) -> f64 {
    let f_lo = eval.p_failure(w_lo).unwrap();
    let f_hi = eval.p_failure(w_hi).unwrap();
    assert!(f_hi <= target && target <= f_lo, "target not bracketed");
    let (mut lo, mut hi) = (w_lo, w_hi);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if eval.p_failure(mid).unwrap() > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 0.01 {
            break;
        }
    }
    hi
}

fn corners() -> [ProcessCorner; 3] {
    [
        ProcessCorner::aggressive().unwrap(),
        ProcessCorner::ideal_removal().unwrap(),
        ProcessCorner::all_semiconducting().unwrap(),
    ]
}

/// Shared warm curves over the exact convolution back-end (the CLT
/// back-end is itself pointwise-noisy at extreme underflow magnitudes, so
/// "within 1 % of exact" is only meaningful against the exact model).
/// Sharing across cases also stresses the memoized state.
fn curves() -> &'static Vec<(FailureModel, FailureCurve)> {
    static CURVES: OnceLock<Vec<(FailureModel, FailureCurve)>> = OnceLock::new();
    CURVES.get_or_init(|| {
        corners()
            .into_iter()
            .map(|corner| {
                let model = FailureModel::paper_default(corner).unwrap();
                (model.clone(), FailureCurve::new(model))
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn curve_matches_exact_pf_within_1_percent(
        w in 5.0f64..2000.0,
        which in 0usize..3,
    ) {
        let (model, curve) = &curves()[which];
        let exact = model.p_failure(w).unwrap();
        let interp = curve.p_failure(w).unwrap();
        if exact > 1e-290 {
            let rel = (interp / exact - 1.0).abs();
            prop_assert!(
                rel <= 0.01,
                "corner {which}, W = {w:.3} nm: exact {exact:.6e} vs curve {interp:.6e} \
                 (rel err {rel:.4})"
            );
        } else {
            // Deep underflow territory: both must agree it is negligible.
            prop_assert!(interp < 1e-280, "W = {w:.3}: {interp:.3e} not negligible");
        }
    }

    #[test]
    fn curve_inversion_matches_model_inversion(target_exp in -8.0f64..-2.0) {
        let target = 10f64.powf(target_exp);
        let (model, curve) = &curves()[0];
        let from_curve = curve.width_for_failure(target, 5.0, 2000.0).unwrap();
        let from_model = model.width_for_failure(target, 5.0, 2000.0).unwrap();
        prop_assert!(
            (from_curve - from_model).abs() < 0.5,
            "target {target:.2e}: curve {from_curve:.2} vs model {from_model:.2}"
        );
    }

    #[test]
    fn curve_batched_queries_are_bit_identical_to_scalar(
        ws in prop::collection::vec(5.0f64..2000.0, 1..8),
        which in 0usize..3,
    ) {
        let (_, curve) = &curves()[which];
        let batch = curve.p_failures(&ws).unwrap();
        for (&w, &b) in ws.iter().zip(&batch) {
            let scalar = curve.p_failure(w).unwrap();
            prop_assert_eq!(b.to_bits(), scalar.to_bits(),
                "corner {}, W = {}: batch {:.17e} vs scalar {:.17e}", which, w, b, scalar);
        }
    }

    #[test]
    fn model_batched_queries_are_bit_identical_to_scalar(
        ws in prop::collection::vec(5.0f64..2000.0, 1..6),
        which in 0usize..3,
        gaussian in prop::bool::ANY,
    ) {
        let mut model = FailureModel::paper_default(corners()[which]).unwrap();
        if gaussian {
            model = model.with_backend(CountModel::GaussianSum);
        }
        let batch = model.p_failures(&ws).unwrap();
        for (&w, &b) in ws.iter().zip(&batch) {
            let scalar = model.p_failure(w).unwrap();
            prop_assert_eq!(b.to_bits(), scalar.to_bits(),
                "corner {}, W = {}: batch {:.17e} vs scalar {:.17e}", which, w, b, scalar);
        }
    }

    #[test]
    fn curve_inversion_is_bit_identical_to_serial_bisection(target_exp in -8.0f64..-2.0) {
        let target = 10f64.powf(target_exp);
        let (_, curve) = &curves()[0];
        // The memoized, prefetch-batched override...
        let from_curve = curve.width_for_failure(target, 5.0, 2000.0).unwrap();
        // ...must reproduce the default decision sequence on the same
        // evaluator to the bit (probe values are pure, so cache hits and
        // fresh evaluations are interchangeable).
        let replica = serial_bisection(curve, target, 5.0, 2000.0);
        prop_assert_eq!(from_curve.to_bits(), replica.to_bits(),
            "target {:.2e}: override {} vs serial {}", target, from_curve, replica);
    }
}

/// The third back-end: batched queries and the memoized inversion on a
/// curve over the Monte-Carlo evaluator must be bit-identical to the
/// scalar paths (per-width seeding makes every MC point a pure function of
/// the model, so the determinism argument carries over unchanged).
#[test]
fn mc_backend_batched_paths_are_bit_identical_to_scalar() {
    let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
    let precision = McPrecision {
        rel_ci: 0.25,
        max_trials: 50_000,
        batch: 1_000,
        level: 0.95,
    };
    let mc = McFailure::new(model, precision, 7).unwrap();
    let ws = [60.0, 103.0, 155.0, 60.0, 900.0];
    let batch = mc.p_failures(&ws).unwrap();
    for (&w, &b) in ws.iter().zip(&batch) {
        assert_eq!(
            b.to_bits(),
            mc.p_failure(w).unwrap().to_bits(),
            "MC batch vs scalar at W = {w}"
        );
    }
    let curve = FailureCurve::new(mc).with_rel_tol(0.25).unwrap();
    let target = 1e-5;
    let from_curve = curve.width_for_failure(target, 5.0, 2000.0).unwrap();
    let replica = serial_bisection(&curve, target, 5.0, 2000.0);
    assert_eq!(
        from_curve.to_bits(),
        replica.to_bits(),
        "MC curve inversion {from_curve} vs serial bisection {replica}"
    );
}

/// The paper's two case studies, solved on the exact convolution back-end:
/// curve-backed and model-backed solvers must land within 0.5 nm.
#[test]
fn wmin_on_curve_matches_wmin_on_model_for_paper_cases() {
    let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
    let curve = FailureCurve::new(model.clone());
    let on_model = WminSolver::new(model);
    let on_curve = WminSolver::new(&curve);
    let m_min = paper::MMIN_FRACTION * paper::M_TRANSISTORS;

    // 155 nm case: no correlation.
    let a = on_model.solve(paper::YIELD_TARGET, m_min).unwrap();
    let b = on_curve.solve(paper::YIELD_TARGET, m_min).unwrap();
    assert!(
        (a.w_min - b.w_min).abs() < 0.5,
        "155 nm case: model {:.3} vs curve {:.3}",
        a.w_min,
        b.w_min
    );
    assert!((a.w_min - paper::WMIN_UNCORRELATED_NM).abs() < 8.0);

    // 103 nm case: the 350× correlation relaxation.
    let a = on_model
        .solve_relaxed(paper::YIELD_TARGET, m_min, paper::RELAXATION_FACTOR)
        .unwrap();
    let b = on_curve
        .solve_relaxed(paper::YIELD_TARGET, m_min, paper::RELAXATION_FACTOR)
        .unwrap();
    assert!(
        (a.w_min - b.w_min).abs() < 0.5,
        "103 nm case: model {:.3} vs curve {:.3}",
        a.w_min,
        b.w_min
    );
    assert!((a.w_min - paper::WMIN_CORRELATED_NM).abs() < 6.0);

    // The second and later solves on the shared curve are nearly free:
    // far fewer exact evaluations than the four bisections would need.
    let evals = curve.evaluations();
    let _ = on_curve.solve(paper::YIELD_TARGET, m_min).unwrap();
    let _ = on_curve
        .solve_relaxed(paper::YIELD_TARGET, m_min, paper::RELAXATION_FACTOR)
        .unwrap();
    assert_eq!(
        curve.evaluations(),
        evals,
        "repeat solves must be pure cache hits"
    );
}

/// Accuracy spot check on a cold (unshared) curve at the anchors the
/// figures print.
#[test]
fn convolution_curve_accuracy_at_figure_anchors() {
    let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
    let curve = FailureCurve::new(model.clone());
    for w in [20.0, 60.0, 103.0, 155.0, 180.0, 400.0, 1200.0] {
        let exact = model.p_failure(w).unwrap();
        let interp = curve.p_failure(w).unwrap();
        if exact > 1e-290 {
            let rel = (interp / exact - 1.0).abs();
            assert!(
                rel <= 0.01,
                "W = {w}: exact {exact:.6e} vs curve {interp:.6e} (rel {rel:.4})"
            );
        }
    }
}
