//! Grid-policy trade-off analysis — Sec 3.3's closing discussion, made
//! quantitative.
//!
//! One aligned active region per polarity maximizes the correlation
//! benefit but widens colliding cells; two regions eliminate the area
//! penalty at a 2× benefit loss ("corresponding to < 5 % increase in
//! W_min"). This module evaluates both sides of that trade for a concrete
//! library + design, producing the numbers a design team would weigh.

use crate::curve::{FailureCurve, PFailure};
use crate::failure::FailureModel;
use crate::penalty::upsizing_penalty;
use crate::rowmodel::RowModel;
use crate::wmin::WminSolver;
use crate::{CoreError, Result};
use cnfet_celllib::CellLibrary;
use cnfet_device::GateCapModel;
use cnfet_layout::{align_library, AlignmentOptions, GridPolicy};

/// One evaluated grid policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// The policy evaluated.
    pub policy: GridPolicy,
    /// Fraction of library cells that widen.
    pub cells_penalized: f64,
    /// Mean cell-area increase across the whole library (area-weighted).
    pub library_area_increase: f64,
    /// Relaxation factor after the policy's benefit division.
    pub relaxation: f64,
    /// Resulting `W_min` (nm).
    pub w_min: f64,
    /// Upsizing (gate-capacitance) penalty at that `W_min`.
    pub upsizing_penalty: f64,
}

/// Inputs for the trade-off study.
#[derive(Debug, Clone)]
pub struct GridTradeoff<'a> {
    /// The library to transform.
    pub library: &'a CellLibrary,
    /// Device failure model.
    pub model: FailureModel,
    /// Base row-correlation model (before grid division).
    pub row: RowModel,
    /// The design's `(width, count)` distribution.
    pub widths: Vec<(f64, u64)>,
    /// Yield target.
    pub yield_target: f64,
    /// Minimum-sized device count.
    pub m_min: f64,
}

impl GridTradeoff<'_> {
    /// Evaluate one policy with a fresh (cold) curve.
    ///
    /// # Errors
    ///
    /// Propagates alignment and solver errors.
    pub fn evaluate(&self, policy: GridPolicy) -> Result<TradeoffPoint> {
        self.evaluate_with(&FailureCurve::new(self.model.clone()), policy)
    }

    /// Evaluate one policy on a caller-provided `pF(W)` evaluator (share a
    /// [`FailureCurve`] to amortize exact evaluations across policies).
    ///
    /// # Errors
    ///
    /// Propagates alignment and solver errors.
    pub fn evaluate_with<E: PFailure>(
        &self,
        eval: &E,
        policy: GridPolicy,
    ) -> Result<TradeoffPoint> {
        if self.widths.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "widths",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        let aligned = align_library(
            self.library,
            &AlignmentOptions {
                policy,
                ..AlignmentOptions::default()
            },
        )?;
        // Area-weighted library growth: Σ new widths / Σ old widths − 1
        // (heights are fixed, so width ratios are area ratios).
        let old: f64 = aligned.cells.iter().map(|c| c.old_width).sum();
        let new: f64 = aligned.cells.iter().map(|c| c.new_width).sum();

        let row = self.row.with_grid_division(policy.benefit_division())?;
        let solver = WminSolver::new(eval);
        let sol = solver.solve_relaxed(self.yield_target, self.m_min, row.relaxation())?;
        let pen = upsizing_penalty(&GateCapModel::proportional(), &self.widths, sol.w_min)?;
        Ok(TradeoffPoint {
            policy,
            cells_penalized: aligned.penalized_fraction(),
            library_area_increase: new / old - 1.0,
            relaxation: row.relaxation(),
            w_min: sol.w_min,
            upsizing_penalty: pen,
        })
    }

    /// Evaluate both policies and return them in `[Single, Dual]` order.
    ///
    /// # Errors
    ///
    /// Propagates [`GridTradeoff::evaluate`] errors.
    pub fn run(&self) -> Result<[TradeoffPoint; 2]> {
        let curve = FailureCurve::new(self.model.clone());
        Ok([
            self.evaluate_with(&curve, GridPolicy::Single)?,
            self.evaluate_with(&curve, GridPolicy::Dual)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::paper;
    use cnfet_celllib::nangate45::nangate45_like;
    use cnt_stats::renewal::CountModel;

    fn study(lib: &CellLibrary) -> GridTradeoff<'_> {
        GridTradeoff {
            library: lib,
            model: FailureModel::paper_default(ProcessCorner::aggressive().unwrap())
                .unwrap()
                .with_backend(CountModel::GaussianSum),
            row: RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).unwrap(),
            widths: vec![(110.0, 33), (185.0, 47), (370.0, 20)],
            yield_target: paper::YIELD_TARGET,
            m_min: paper::MMIN_FRACTION * paper::M_TRANSISTORS,
        }
    }

    #[test]
    fn single_vs_dual_tradeoff_shape() {
        let lib = nangate45_like();
        let [single, dual] = study(&lib).run().unwrap();

        // Single grid: some cells pay area; dual grid: none.
        assert!(single.cells_penalized > 0.0);
        assert_eq!(dual.cells_penalized, 0.0);
        assert!(single.library_area_increase > dual.library_area_increase);

        // Dual grid halves the relaxation → slightly larger W_min.
        assert!((single.relaxation / dual.relaxation - 2.0).abs() < 1e-9);
        assert!(dual.w_min > single.w_min);
        // Paper: "< 5 % increase in W_min".
        let increase = dual.w_min / single.w_min - 1.0;
        assert!(
            increase > 0.0 && increase < 0.06,
            "dual-grid W_min increase {increase}"
        );
        // Upsizing penalty ordering follows W_min.
        assert!(dual.upsizing_penalty >= single.upsizing_penalty);
    }

    #[test]
    fn library_area_increase_is_small_for_nangate() {
        // 4 cells of 134 at ~10 % each: well under 1 % library-wide.
        let lib = nangate45_like();
        let single = study(&lib).evaluate(GridPolicy::Single).unwrap();
        assert!(
            single.library_area_increase < 0.01,
            "library growth {}",
            single.library_area_increase
        );
    }

    #[test]
    fn empty_widths_rejected() {
        let lib = nangate45_like();
        let mut s = study(&lib);
        s.widths.clear();
        assert!(s.evaluate(GridPolicy::Single).is_err());
    }
}
