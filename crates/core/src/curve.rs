//! Memoized `pF(W)` curves — the shared hot path of every `W_min` solve.
//!
//! Every experiment in the reproduction ultimately asks the same question
//! many times over: *what is the device failure probability at width `W`?*
//! The exact convolution back-end answers it in milliseconds, which is fine
//! for a single anchor but dominates wall-clock time once `W_min` bisection,
//! scaling studies, and library-wide penalty tables each re-evaluate the
//! same `(corner, backend)` curve from scratch.
//!
//! [`FailureCurve`] wraps a [`FailureModel`] with a concurrent memoization
//! layer: exact evaluations are cached at dyadic widths and queries between
//! them are answered by monotone linear interpolation **in log space**
//! (`ln pF` vs `W`), refined adaptively until a per-segment midpoint test
//! certifies the interpolant to a relative tolerance. Refinement points are
//! fixed dyadic subdivisions of the domain, so the cached curve — and every
//! answer it returns — is a pure function of the model, independent of query
//! order or thread interleaving. That determinism is what lets a
//! `SweepRunner` share one curve across worker threads without losing
//! reproducibility.
//!
//! The [`PFailure`] trait abstracts "something that can evaluate `pF(W)`"
//! so [`crate::wmin::WminSolver`] and the fixed-point helpers run unchanged
//! on either the exact model or a shared curve.

use crate::failure::FailureModel;
use crate::{CoreError, Result};
use cnt_stats::FastMap;
use std::sync::RwLock;

/// Anything that can evaluate the device failure probability `pF(W)`.
///
/// Implemented by the exact [`FailureModel`] and by the memoizing
/// [`FailureCurve`]; references and `Arc`s forward, so solvers can borrow a
/// shared curve.
pub trait PFailure {
    /// Device failure probability at width `w` (nm).
    ///
    /// # Errors
    ///
    /// Implementations reject non-finite or non-positive widths.
    fn p_failure(&self, w: f64) -> Result<f64>;

    /// Batch evaluation of `pF` at many widths.
    ///
    /// The contract for every implementation: element-wise **bit-identical**
    /// to calling [`PFailure::p_failure`] per width. Overrides may amortize
    /// setup (one renewal sweep plan, one cache lock) but must never change
    /// answers. The default simply loops.
    ///
    /// # Errors
    ///
    /// Per-element errors of [`PFailure::p_failure`]; the first failing
    /// width aborts the batch.
    fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        widths.iter().map(|&w| self.p_failure(w)).collect()
    }

    /// Invert the monotone-decreasing `pF(W)`: the smallest width (to
    /// 0.01 nm) with `pF(W) ≤ target` inside `[w_lo, w_hi]`, by bisection.
    /// A target at or above `pF(w_lo)` is met everywhere in the bracket,
    /// so the answer is `w_lo` itself — heavily relaxed requirements
    /// (long correlation and redundancy together can push the target
    /// near 1) must not read as solver failures.
    ///
    /// Overrides must return bit-identical widths to this default (the
    /// bisection decision sequence is a pure function of the evaluator, so
    /// caching/batching the probe evaluations cannot change the result).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a target outside `(0, 1)`;
    /// [`CoreError::NoConvergence`] if even `pF(w_hi)` misses the target
    /// (infeasible inside the bracket).
    fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        if !(target > 0.0 && target < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "target",
                value: target,
                constraint: "must be in (0, 1)",
            });
        }
        let f_lo = self.p_failure(w_lo)?;
        let f_hi = self.p_failure(w_hi)?;
        // pF decreases with W.
        if f_hi > target {
            return Err(CoreError::NoConvergence(
                "width_for_failure: target not bracketed",
            ));
        }
        if f_lo <= target {
            return Ok(w_lo);
        }
        let (mut lo, mut hi) = (w_lo, w_hi);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.p_failure(mid)? > target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 0.01 {
                break;
            }
        }
        // Return the side that satisfies pF(W) <= target, so callers can
        // rely on the requirement being met.
        Ok(hi)
    }
}

impl PFailure for FailureModel {
    fn p_failure(&self, w: f64) -> Result<f64> {
        FailureModel::p_failure(self, w)
    }

    fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        FailureModel::p_failures(self, widths)
    }
}

impl<T: PFailure + ?Sized> PFailure for &T {
    fn p_failure(&self, w: f64) -> Result<f64> {
        (**self).p_failure(w)
    }

    fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        (**self).p_failures(widths)
    }

    fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        (**self).width_for_failure(target, w_lo, w_hi)
    }
}

impl<T: PFailure + ?Sized> PFailure for std::sync::Arc<T> {
    fn p_failure(&self, w: f64) -> Result<f64> {
        (**self).p_failure(w)
    }

    fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        (**self).p_failures(widths)
    }

    fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        (**self).width_for_failure(target, w_lo, w_hi)
    }
}

/// Invert a monotone-decreasing `pF(W)` by bisection: the smallest width
/// (to 0.01 nm) with `pF(W) ≤ target` inside `[w_lo, w_hi]`.
///
/// Free-function form of [`PFailure::width_for_failure`] — it delegates to
/// the trait method, so evaluators with a faster override (e.g.
/// [`FailureCurve`]'s memoized, cache-aware bisection) are picked up by
/// every solver that routes through here.
///
/// # Errors
///
/// Same as [`PFailure::width_for_failure`].
pub fn width_for_failure<E: PFailure + ?Sized>(
    eval: &E,
    target: f64,
    w_lo: f64,
    w_hi: f64,
) -> Result<f64> {
    eval.width_for_failure(target, w_lo, w_hi)
}

/// `ln pF` floor: probabilities below `exp(-690) ≈ 1e-300` are treated as
/// equal (they underflow any quantity the paper reports).
const LN_FLOOR: f64 = -690.0;

/// Cached state: exact `ln pF` knots at dyadic widths, plus finished
/// inversion results. Both maps memoize pure functions of the model, so
/// concurrent inserts always agree.
#[derive(Default)]
struct CurveState {
    ln_pf: FastMap<u64, f64>,
    /// `(target, w_lo, w_hi)` bits → converged `W`; a bisection repeated
    /// with the same bracket is a lookup.
    inversions: FastMap<(u64, u64, u64), f64>,
    evals: u64,
}

/// A memoized, monotone-interpolated `pF(W)` curve over a fixed domain.
///
/// Queries inside the domain descend a dyadic segment tree rooted at
/// `[w_lo, w_hi]`; a segment answers by linear interpolation of `ln pF`
/// once two consecutive dyadic levels pass their midpoint tests at the
/// curve's relative tolerance, and triggers one exact evaluation per
/// level otherwise. Queries outside the domain fall back to (memoized) exact
/// evaluation.
///
/// The curve is generic over its evaluator: the default
/// [`FailureModel`] gives the analytic back-ends, and a stochastic
/// evaluator like [`crate::stochastic::McFailure`] plugs in unchanged —
/// a Monte-Carlo estimate at a fixed `(seed, width)` is still a pure
/// function of the model, so memoization and determinism carry over.
/// Stochastic evaluators should pair with a widened `rel_tol` (at least a
/// few times the Monte-Carlo relative CI) so sampling noise does not read
/// as curvature; see [`FailureCurve::with_rel_tol`].
///
/// The curve is `Sync` (for `Sync` evaluators): share it across threads
/// with `&FailureCurve` or `Arc<FailureCurve>`, both of which implement
/// [`PFailure`].
pub struct FailureCurve<E: PFailure = FailureModel> {
    model: E,
    w_lo: f64,
    w_hi: f64,
    rel_tol: f64,
    min_segment: f64,
    state: RwLock<CurveState>,
}

impl<E: PFailure + std::fmt::Debug> std::fmt::Debug for FailureCurve<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureCurve")
            .field("model", &self.model)
            .field("domain", &(self.w_lo, self.w_hi))
            .field("rel_tol", &self.rel_tol)
            .field("knots", &self.knots())
            .finish()
    }
}

impl<E: PFailure + Clone> Clone for FailureCurve<E> {
    /// Cloning copies the cached knots, so a clone starts warm.
    fn clone(&self) -> Self {
        let state = self.state.read().expect("curve lock poisoned");
        Self {
            model: self.model.clone(),
            w_lo: self.w_lo,
            w_hi: self.w_hi,
            rel_tol: self.rel_tol,
            min_segment: self.min_segment,
            state: RwLock::new(CurveState {
                ln_pf: state.ln_pf.clone(),
                inversions: state.inversions.clone(),
                evals: state.evals,
            }),
        }
    }
}

impl<E: PFailure> FailureCurve<E> {
    /// Wrap a model with the default domain `[5, 2000] nm` (the `W_min`
    /// solver's bracket) and a 0.4 % relative tolerance.
    pub fn new(model: E) -> Self {
        Self {
            model,
            w_lo: 5.0,
            w_hi: 2000.0,
            rel_tol: 0.004,
            min_segment: 0.02,
            state: RwLock::new(CurveState::default()),
        }
    }

    /// Change the interpolation domain (builder style). Queries outside it
    /// are answered exactly rather than interpolated.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `0 < w_lo < w_hi`.
    pub fn with_domain(mut self, w_lo: f64, w_hi: f64) -> Result<Self> {
        if !(w_lo.is_finite() && w_lo > 0.0 && w_hi.is_finite() && w_hi > w_lo) {
            return Err(CoreError::InvalidParameter {
                name: "w_lo/w_hi",
                value: w_lo,
                constraint: "need 0 < w_lo < w_hi, both finite",
            });
        }
        self.w_lo = w_lo;
        self.w_hi = w_hi;
        self.state = RwLock::new(CurveState::default());
        Ok(self)
    }

    /// Change the relative interpolation tolerance (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] outside `(0, 0.25]`.
    pub fn with_rel_tol(mut self, rel_tol: f64) -> Result<Self> {
        if !(rel_tol.is_finite() && rel_tol > 0.0 && rel_tol <= 0.25) {
            return Err(CoreError::InvalidParameter {
                name: "rel_tol",
                value: rel_tol,
                constraint: "must be in (0, 0.25]",
            });
        }
        self.rel_tol = rel_tol;
        self.state = RwLock::new(CurveState::default());
        Ok(self)
    }

    /// The wrapped evaluator (a model or a stochastic back-end).
    pub fn model(&self) -> &E {
        &self.model
    }

    /// The interpolation domain `(w_lo, w_hi)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.w_lo, self.w_hi)
    }

    /// The relative interpolation tolerance.
    pub fn rel_tol(&self) -> f64 {
        self.rel_tol
    }

    /// Number of exact model evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.state.read().expect("curve lock poisoned").evals
    }

    /// Number of cached exact knots.
    pub fn knots(&self) -> usize {
        self.state.read().expect("curve lock poisoned").ln_pf.len()
    }

    /// The curve's residency cost in cache-entry units — the knot count.
    /// Bounded cache layers (e.g. the pipeline's LRU) use this as the
    /// eviction weight of a resident curve.
    pub fn cache_cost(&self) -> usize {
        self.knots()
    }

    /// Eviction hook: drop every memoized knot (and the evaluation
    /// counter), keeping the model, domain, and tolerance. Because the
    /// cached knots are a pure function of the model, a cleared curve
    /// returns exactly the same answers — it only re-pays the exact
    /// evaluations. Lets long-lived caches shed memory without
    /// invalidating handles.
    pub fn clear_cache(&self) {
        let mut state = self.state.write().expect("curve lock poisoned");
        state.ln_pf.clear();
        state.inversions.clear();
        state.evals = 0;
    }

    /// Memoized `pF(w)`: exact on cache misses at dyadic refinement points,
    /// interpolated (within `rel_tol`) everywhere else.
    ///
    /// # Errors
    ///
    /// Rejects non-finite / non-positive widths; propagates model errors.
    pub fn p_failure(&self, w: f64) -> Result<f64> {
        if !(w.is_finite() && w > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "w",
                value: w,
                constraint: "must be finite and > 0",
            });
        }
        // Fast path: answerable from the cache alone under a read lock.
        if let Some(v) = self.try_cached(w) {
            return Ok(v);
        }
        let mut state = self.state.write().expect("curve lock poisoned");
        self.descend(&mut state, w)
    }

    /// Invert the curve: smallest width with `pF(W) ≤ target` (bisection
    /// over the memoized curve; see [`width_for_failure`]).
    ///
    /// Finished inversions are memoized per `(target, w_lo, w_hi)`, and a
    /// cold bisection prefetches every dyadic probe the cache can already
    /// answer in one read-lock pass, so warm `W_min` solves touch the lock
    /// once instead of ~20 times. Results are bit-identical to the serial
    /// bisection of [`PFailure::width_for_failure`].
    ///
    /// # Errors
    ///
    /// Same as [`width_for_failure`].
    pub fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        self.invert_cached(target, w_lo, w_hi)
    }

    /// Batch evaluation: answer every cache-resident width under a single
    /// read lock, then descend the misses under a single write lock.
    /// Element-wise bit-identical to [`FailureCurve::p_failure`] per width.
    ///
    /// # Errors
    ///
    /// Per-element errors of [`FailureCurve::p_failure`]; the first failing
    /// width aborts the batch.
    pub fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        let cached = self.try_cached_many(widths);
        if cached.iter().all(Option::is_some) {
            return Ok(cached.into_iter().map(|c| c.expect("checked")).collect());
        }
        let mut state = self.state.write().expect("curve lock poisoned");
        cached
            .into_iter()
            .zip(widths)
            .map(|(hit, &w)| match hit {
                Some(v) => Ok(v),
                None => {
                    if !(w.is_finite() && w > 0.0) {
                        return Err(CoreError::InvalidParameter {
                            name: "w",
                            value: w,
                            constraint: "must be finite and > 0",
                        });
                    }
                    self.descend(&mut state, w)
                }
            })
            .collect()
    }

    /// Sweep the curve over widths (drop-in for [`FailureModel::sweep`]).
    ///
    /// # Errors
    ///
    /// Propagates [`FailureCurve::p_failure`] errors.
    pub fn sweep(&self, widths: &[f64]) -> Result<Vec<crate::failure::FailurePoint>> {
        Ok(self
            .p_failures(widths)?
            .into_iter()
            .zip(widths)
            .map(|(p_failure, &width)| crate::failure::FailurePoint { width, p_failure })
            .collect())
    }

    /// Memoized, cache-aware bisection (see
    /// [`FailureCurve::width_for_failure`]). The probe values come from a
    /// one-lock prefetch of the dyadic candidate midpoints where possible;
    /// since every probe value is a pure function of the model, the
    /// decision sequence — and therefore the returned width — is exactly
    /// that of the default serial bisection.
    fn invert_cached(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        if !(target > 0.0 && target < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "target",
                value: target,
                constraint: "must be in (0, 1)",
            });
        }
        let key = (target.to_bits(), w_lo.to_bits(), w_hi.to_bits());
        if let Some(&w) = self
            .state
            .read()
            .expect("curve lock poisoned")
            .inversions
            .get(&key)
        {
            return Ok(w);
        }

        // Candidate probes: the exact midpoints the bisection tree can
        // visit in its first four levels (computed with the same
        // `0.5 * (a + b)` arithmetic, so the bit patterns match), plus the
        // bracket endpoints. One read lock answers all cache hits.
        fn push_mids(a: f64, b: f64, depth: u32, out: &mut Vec<f64>) {
            if depth == 0 {
                return;
            }
            let m = 0.5 * (a + b);
            out.push(m);
            push_mids(a, m, depth - 1, out);
            push_mids(m, b, depth - 1, out);
        }
        let mut cands = vec![w_lo, w_hi];
        push_mids(w_lo, w_hi, 4, &mut cands);
        let mut pre: FastMap<u64, f64> = FastMap::default();
        for (w, hit) in cands.iter().zip(self.try_cached_many(&cands)) {
            if let Some(v) = hit {
                pre.insert(w.to_bits(), v);
            }
        }
        let probe = |w: f64| -> Result<f64> {
            match pre.get(&w.to_bits()) {
                Some(&v) => Ok(v),
                None => self.p_failure(w),
            }
        };

        let f_lo = probe(w_lo)?;
        let f_hi = probe(w_hi)?;
        // pF decreases with W; mirror the trait default exactly — an
        // infeasible bracket errors, a trivially-met target is `w_lo`.
        if f_hi > target {
            return Err(CoreError::NoConvergence(
                "width_for_failure: target not bracketed",
            ));
        }
        if f_lo <= target {
            self.state
                .write()
                .expect("curve lock poisoned")
                .inversions
                .insert(key, w_lo);
            return Ok(w_lo);
        }
        let (mut lo, mut hi) = (w_lo, w_hi);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if probe(mid)? > target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 0.01 {
                break;
            }
        }
        self.state
            .write()
            .expect("curve lock poisoned")
            .inversions
            .insert(key, hi);
        Ok(hi)
    }

    /// Exact `ln pF(w)`, memoized.
    fn exact_ln(&self, state: &mut CurveState, w: f64) -> Result<f64> {
        if let Some(&v) = state.ln_pf.get(&w.to_bits()) {
            return Ok(v);
        }
        let p = self.model.p_failure(w)?;
        let ln = p.max(1e-300).ln().max(LN_FLOOR);
        state.ln_pf.insert(w.to_bits(), ln);
        state.evals += 1;
        Ok(ln)
    }

    /// The midpoint test: does the `(a, b)` secant reproduce the exact
    /// midpoint value `lm` to tolerance? A pure function of the three knot
    /// values, so every query recomputes it identically.
    fn secant_ok(&self, a: f64, la: f64, b: f64, lb: f64, lm: f64) -> bool {
        let secant = lerp(a, la, b, lb, 0.5 * (a + b));
        (lm - secant).abs() <= self.rel_tol.ln_1p()
            || (lm <= LN_FLOOR + 1.0 && secant <= LN_FLOOR + 1.0)
    }

    /// Attempt the whole descent using only cached values (read lock).
    /// Mirrors [`FailureCurve::descend`] exactly; `None` means some knot
    /// is missing and the write path must run.
    fn try_cached(&self, w: f64) -> Option<f64> {
        let state = self.state.read().expect("curve lock poisoned");
        self.try_cached_locked(&state, w)
    }

    /// Batch form of [`FailureCurve::try_cached`]: one read lock for the
    /// whole slice.
    fn try_cached_many(&self, ws: &[f64]) -> Vec<Option<f64>> {
        let state = self.state.read().expect("curve lock poisoned");
        ws.iter()
            .map(|&w| self.try_cached_locked(&state, w))
            .collect()
    }

    /// Cache-only descent under an already-held lock.
    fn try_cached_locked(&self, state: &CurveState, w: f64) -> Option<f64> {
        if let Some(&v) = state.ln_pf.get(&w.to_bits()) {
            return Some(v.exp());
        }
        if !(self.w_lo..=self.w_hi).contains(&w) {
            return None;
        }
        let (mut a, mut b) = (self.w_lo, self.w_hi);
        let mut la = *state.ln_pf.get(&a.to_bits())?;
        let mut lb = *state.ln_pf.get(&b.to_bits())?;
        loop {
            if b - a < self.min_segment {
                return Some(lerp(a, la, b, lb, w).exp());
            }
            let m = 0.5 * (a + b);
            let lm = *state.ln_pf.get(&m.to_bits())?;
            if w == m {
                return Some(lm.exp());
            }
            let parent_ok = self.secant_ok(a, la, b, lb, lm);
            if w < m {
                (b, lb) = (m, lm);
            } else {
                (a, la) = (m, lm);
            }
            if parent_ok {
                let hm = 0.5 * (a + b);
                let lhm = *state.ln_pf.get(&hm.to_bits())?;
                if w == hm {
                    return Some(lhm.exp());
                }
                if self.secant_ok(a, la, b, lb, lhm) {
                    return Some(if w < hm {
                        lerp(a, la, hm, lhm, w).exp()
                    } else {
                        lerp(hm, lhm, b, lb, w).exp()
                    });
                }
            }
        }
    }

    /// Full descent under the write lock, evaluating and memoizing as
    /// needed. Interpolation over a segment is only trusted after **two
    /// consecutive** levels pass their midpoint tests — the segment's
    /// secant must match its midpoint, and the half containing the query
    /// must again match its own midpoint — which catches curvature (or
    /// back-end kinks) hiding inside an accidentally-well-fit coarse
    /// segment. Every decision is a pure function of dyadic coordinates
    /// and the model, so results are independent of query and thread
    /// order.
    fn descend(&self, state: &mut CurveState, w: f64) -> Result<f64> {
        if let Some(&v) = state.ln_pf.get(&w.to_bits()) {
            return Ok(v.exp());
        }
        if !(self.w_lo..=self.w_hi).contains(&w) {
            // Outside the interpolation domain: exact, but still memoized.
            return Ok(self.exact_ln(state, w)?.exp());
        }
        let (mut a, mut b) = (self.w_lo, self.w_hi);
        let mut la = self.exact_ln(state, a)?;
        let mut lb = self.exact_ln(state, b)?;
        loop {
            if b - a < self.min_segment {
                return Ok(lerp(a, la, b, lb, w).exp());
            }
            let m = 0.5 * (a + b);
            let lm = self.exact_ln(state, m)?;
            if w == m {
                return Ok(lm.exp());
            }
            let parent_ok = self.secant_ok(a, la, b, lb, lm);
            if w < m {
                (b, lb) = (m, lm);
            } else {
                (a, la) = (m, lm);
            }
            if parent_ok {
                // Second-level check on the half containing the query; its
                // midpoint knot is memoized either way, so a failed check
                // just pre-pays the next loop iteration's evaluation.
                let hm = 0.5 * (a + b);
                let lhm = self.exact_ln(state, hm)?;
                if w == hm {
                    return Ok(lhm.exp());
                }
                if self.secant_ok(a, la, b, lb, lhm) {
                    return Ok(if w < hm {
                        lerp(a, la, hm, lhm, w).exp()
                    } else {
                        lerp(hm, lhm, b, lb, w).exp()
                    });
                }
            }
        }
    }
}

impl<E: PFailure> PFailure for FailureCurve<E> {
    fn p_failure(&self, w: f64) -> Result<f64> {
        FailureCurve::p_failure(self, w)
    }

    fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        FailureCurve::p_failures(self, widths)
    }

    fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        self.invert_cached(target, w_lo, w_hi)
    }
}

/// Linear interpolation of `ln pF` between two knots.
fn lerp(a: f64, la: f64, b: f64, lb: f64, w: f64) -> f64 {
    la + (lb - la) * ((w - a) / (b - a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use cnt_stats::renewal::CountModel;

    fn model() -> FailureModel {
        FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap()
    }

    fn fast_model() -> FailureModel {
        model().with_backend(CountModel::GaussianSum)
    }

    #[test]
    fn matches_exact_at_anchors() {
        let m = model();
        let curve = FailureCurve::new(m.clone());
        for w in [60.0, 103.0, 155.0, 180.0] {
            let exact = m.p_failure(w).unwrap();
            let interp = curve.p_failure(w).unwrap();
            let rel = (interp / exact - 1.0).abs();
            assert!(rel < 0.01, "w = {w}: exact {exact:.4e}, curve {interp:.4e}");
        }
    }

    #[test]
    fn memoization_stops_reevaluating() {
        let curve = FailureCurve::new(fast_model());
        let p1 = curve.p_failure(123.0).unwrap();
        let evals = curve.evaluations();
        assert!(evals > 0);
        let p2 = curve.p_failure(123.0).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(curve.evaluations(), evals, "repeat query must be cached");
        // A nearby query in the now-validated neighbourhood is also free.
        let _ = curve.p_failure(123.5).unwrap();
        assert!(curve.evaluations() <= evals + 3);
    }

    #[test]
    fn query_order_does_not_change_answers() {
        let forward = FailureCurve::new(fast_model());
        let backward = FailureCurve::new(fast_model());
        let widths: Vec<f64> = (1..60).map(|i| 5.0 + 33.0 * i as f64).collect();
        let a: Vec<f64> = widths
            .iter()
            .map(|&w| forward.p_failure(w).unwrap())
            .collect();
        let b: Vec<f64> = widths
            .iter()
            .rev()
            .map(|&w| backward.p_failure(w).unwrap())
            .collect();
        for (x, y) in a.iter().zip(b.iter().rev()) {
            assert_eq!(x, y, "answers must not depend on query order");
        }
    }

    #[test]
    fn interpolation_is_monotone() {
        let curve = FailureCurve::new(fast_model());
        let mut last = f64::INFINITY;
        let mut w = 10.0;
        while w < 400.0 {
            let p = curve.p_failure(w).unwrap();
            assert!(p <= last * (1.0 + 1e-12), "pF must not increase at {w}");
            last = p;
            w += 1.3;
        }
    }

    #[test]
    fn outside_domain_is_exact() {
        let m = fast_model();
        let curve = FailureCurve::new(m.clone())
            .with_domain(50.0, 500.0)
            .unwrap();
        let w = 20.0;
        assert_eq!(
            curve.p_failure(w).unwrap(),
            m.p_failure(w).unwrap(),
            "out-of-domain queries bypass interpolation"
        );
    }

    #[test]
    fn inversion_matches_model_inversion() {
        let m = model();
        let curve = FailureCurve::new(m.clone());
        let w_curve = curve.width_for_failure(1e-6, 20.0, 200.0).unwrap();
        let w_model = m.width_for_failure(1e-6, 20.0, 200.0).unwrap();
        assert!(
            (w_curve - w_model).abs() < 0.5,
            "curve {w_curve} vs model {w_model}"
        );
    }

    #[test]
    fn shared_across_threads() {
        let curve = std::sync::Arc::new(FailureCurve::new(fast_model()));
        let solo = FailureCurve::new(fast_model());
        let widths: Vec<f64> = (0..64).map(|i| 20.0 + 7.0 * i as f64).collect();
        let mut results: Vec<(f64, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = widths
                .chunks(16)
                .map(|chunk| {
                    let curve = std::sync::Arc::clone(&curve);
                    let chunk = chunk.to_vec();
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|w| (w, curve.p_failure(w).unwrap()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().unwrap());
            }
        });
        for (w, p) in results {
            assert_eq!(
                p,
                solo.p_failure(w).unwrap(),
                "thread-shared curve must agree with a cold curve at {w}"
            );
        }
    }

    #[test]
    fn validation() {
        let curve = FailureCurve::new(fast_model());
        assert!(curve.p_failure(-1.0).is_err());
        assert!(curve.p_failure(f64::NAN).is_err());
        assert!(FailureCurve::new(fast_model())
            .with_domain(10.0, 5.0)
            .is_err());
        assert!(FailureCurve::new(fast_model()).with_rel_tol(0.0).is_err());
        assert!(FailureCurve::new(fast_model()).with_rel_tol(0.5).is_err());
    }

    #[test]
    fn clear_cache_resets_cost_but_not_answers() {
        let curve = FailureCurve::new(fast_model());
        let before = curve.p_failure(123.0).unwrap();
        assert!(curve.cache_cost() > 0);
        assert_eq!(curve.cache_cost(), curve.knots());
        curve.clear_cache();
        assert_eq!(curve.cache_cost(), 0);
        assert_eq!(curve.evaluations(), 0);
        assert_eq!(
            curve.p_failure(123.0).unwrap(),
            before,
            "a cleared curve must answer identically"
        );
    }

    #[test]
    fn clone_starts_warm() {
        let curve = FailureCurve::new(fast_model());
        let _ = curve.p_failure(100.0).unwrap();
        let clone = curve.clone();
        assert_eq!(clone.knots(), curve.knots());
        assert_eq!(
            clone.p_failure(100.0).unwrap(),
            curve.p_failure(100.0).unwrap()
        );
    }
}
