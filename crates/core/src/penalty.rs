//! Upsizing cost — the gate-capacitance penalty of Figs 2.2b / 3.3.

use crate::{CoreError, Result};
use cnfet_device::GateCapModel;

/// Relative total-gate-capacitance increase when every width below `w_min`
/// is upsized to it, over a `(width, count)` population.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an empty population,
/// non-positive widths, or a non-positive `w_min`.
pub fn upsizing_penalty(cap: &GateCapModel, widths: &[(f64, u64)], w_min: f64) -> Result<f64> {
    if widths.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "widths",
            value: 0.0,
            constraint: "must not be empty",
        });
    }
    if !(w_min.is_finite() && w_min > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "w_min",
            value: w_min,
            constraint: "must be finite and > 0",
        });
    }
    let mut before = 0.0_f64;
    let mut after = 0.0_f64;
    for &(w, n) in widths {
        if !(w.is_finite() && w > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "width",
                value: w,
                constraint: "must be finite and > 0",
            });
        }
        before += n as f64 * cap.cap(w);
        after += n as f64 * cap.cap(w.max(w_min));
    }
    if before <= 0.0 {
        return Ok(0.0);
    }
    Ok(after / before - 1.0)
}

/// Fraction of devices strictly below `w_min` (the `M_min` share used in
/// Eq. 2.5's iteration).
pub fn fraction_below(widths: &[(f64, u64)], w_min: f64) -> f64 {
    let total: u64 = widths.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    let below: u64 = widths
        .iter()
        .filter(|&&(w, _)| w < w_min)
        .map(|&(_, n)| n)
        .sum();
    below as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_matches_hand_computation() {
        let cap = GateCapModel::proportional();
        // 100 devices at 100 nm, 100 at 300 nm; W_min = 200:
        // before 100·100 + 100·300 = 40 000; after 100·200 + 100·300 = 50 000.
        let p = upsizing_penalty(&cap, &[(100.0, 100), (300.0, 100)], 200.0).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_penalty_when_all_wide() {
        let cap = GateCapModel::proportional();
        let p = upsizing_penalty(&cap, &[(300.0, 10)], 200.0).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn penalty_grows_as_widths_shrink() {
        // The Fig 2.2b mechanism: scaling widths down at constant W_min
        // inflates the penalty.
        let cap = GateCapModel::proportional();
        let base: Vec<(f64, u64)> = vec![(110.0, 33), (185.0, 47), (370.0, 20)];
        let scaled: Vec<(f64, u64)> = base.iter().map(|&(w, n)| (w * 16.0 / 45.0, n)).collect();
        let p45 = upsizing_penalty(&cap, &base, 155.0).unwrap();
        let p16 = upsizing_penalty(&cap, &scaled, 155.0).unwrap();
        assert!(p16 > 2.0 * p45, "p45 {p45} p16 {p16}");
    }

    #[test]
    fn fraction_below_counts() {
        let widths = [(110.0, 33u64), (185.0, 47), (370.0, 20)];
        assert!((fraction_below(&widths, 155.0) - 0.33).abs() < 1e-12);
        assert_eq!(fraction_below(&widths, 50.0), 0.0);
        assert_eq!(fraction_below(&widths, 1000.0), 1.0);
        assert_eq!(fraction_below(&[], 100.0), 0.0);
    }

    #[test]
    fn validation() {
        let cap = GateCapModel::proportional();
        assert!(upsizing_penalty(&cap, &[], 100.0).is_err());
        assert!(upsizing_penalty(&cap, &[(100.0, 1)], 0.0).is_err());
        assert!(upsizing_penalty(&cap, &[(-1.0, 1)], 100.0).is_err());
    }
}
