//! Technology-scaling study — Figs 2.2b and 3.3.
//!
//! The paper's scaling assumption: transistor widths shrink linearly with
//! the node while the inter-CNT pitch stays at 4 nm. `W_min` (in absolute
//! nm) is set by CNT statistics, so it barely moves across nodes — which is
//! why the upsizing penalty explodes at 32/22/16 nm. Correlation helps
//! twice at scaled nodes: the requirement relaxes by `M_Rmin`, *and*
//! `M_Rmin` itself grows because smaller cells pack more critical CNFETs
//! per micrometre.

use crate::curve::FailureCurve;
use crate::failure::FailureModel;
use crate::penalty::upsizing_penalty;
use crate::rowmodel::RowModel;
use crate::wmin::solve_upsizing;
use crate::{CoreError, Result};
use cnfet_device::GateCapModel;

/// Per-node outcome of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResult {
    /// Technology node (nm).
    pub node: f64,
    /// `W_min` without correlation (nm).
    pub w_min_plain: f64,
    /// Upsizing penalty without correlation.
    pub penalty_plain: f64,
    /// `W_min` with directional growth + aligned-active (nm).
    pub w_min_corr: f64,
    /// Upsizing penalty with correlation.
    pub penalty_corr: f64,
    /// Relaxation factor applied at this node.
    pub relaxation: f64,
}

/// The scaling study configuration.
///
/// All nodes and both correlation arms share one memoized
/// [`FailureCurve`], so the `pF(W)` hot path is evaluated once per region
/// of interest instead of once per bisection step.
#[derive(Debug, Clone)]
pub struct ScalingStudy {
    curve: FailureCurve,
    base_node: f64,
    base_widths: Vec<(f64, u64)>,
    yield_target: f64,
    m_transistors: f64,
    row_base: RowModel,
    cap: GateCapModel,
}

impl ScalingStudy {
    /// Configure a study.
    ///
    /// * `base_widths` — the measured `(width, count)` distribution at
    ///   `base_node` (scaled linearly to other nodes),
    /// * `m_transistors` — the chip size `M` the distribution represents,
    /// * `row_base` — the Eq. (3.2) row model at `base_node` (its density
    ///   is rescaled by `base_node / node` at other nodes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty widths or
    /// non-positive scalars.
    pub fn new(
        model: FailureModel,
        base_node: f64,
        base_widths: Vec<(f64, u64)>,
        yield_target: f64,
        m_transistors: f64,
        row_base: RowModel,
    ) -> Result<Self> {
        if base_widths.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "base_widths",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        for (name, v) in [("base_node", base_node), ("m_transistors", m_transistors)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(Self {
            curve: FailureCurve::new(model),
            base_node,
            base_widths,
            yield_target,
            m_transistors,
            row_base,
            cap: GateCapModel::proportional(),
        })
    }

    /// Replace the capacitance model (builder style).
    pub fn with_cap_model(mut self, cap: GateCapModel) -> Self {
        self.cap = cap;
        self
    }

    /// Solve the self-consistent `(W_min, M_min)` fixed point at one node:
    /// `M_min` is the number of devices below `W_min`, which itself depends
    /// on `M_min` (the paper notes the estimate "can be iterative").
    ///
    /// `relaxation` multiplies the device-level requirement (1 for the
    /// uncorrelated case).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; [`CoreError::NoConvergence`] if the fixed
    /// point oscillates beyond 32 iterations.
    pub fn solve_node(&self, node: f64, relaxation: f64) -> Result<(f64, f64)> {
        let s = node / self.base_node;
        let widths: Vec<(f64, u64)> = self.base_widths.iter().map(|&(w, n)| (w * s, n)).collect();
        let sol = solve_upsizing(
            &self.curve,
            &widths,
            self.yield_target,
            self.m_transistors,
            relaxation,
        )?;
        let pen = upsizing_penalty(&self.cap, &widths, sol.w_min)?;
        Ok((sol.w_min, pen))
    }

    /// Run the study over the given nodes.
    ///
    /// # Errors
    ///
    /// Propagates per-node solver errors.
    pub fn run(&self, nodes: &[f64]) -> Result<Vec<NodeResult>> {
        let mut out = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let (w_min_plain, penalty_plain) = self.solve_node(node, 1.0)?;
            // Density of critical FETs rises as cells shrink.
            let relaxation = self.row_base.relaxation() * self.base_node / node;
            let (w_min_corr, penalty_corr) = self.solve_node(node, relaxation)?;
            out.push(NodeResult {
                node,
                w_min_plain,
                penalty_plain,
                w_min_corr,
                penalty_corr,
                relaxation,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::paper;

    fn study() -> ScalingStudy {
        // A compact width distribution standing in for Fig 2.2a: 33 % at
        // 110 nm, 47 % at 185 nm, 20 % at 370 nm (of a 1e8-device chip).
        let widths = vec![
            (110.0, 33_000_000u64),
            (185.0, 47_000_000),
            (370.0, 20_000_000),
        ];
        ScalingStudy::new(
            FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap(),
            45.0,
            widths,
            paper::YIELD_TARGET,
            paper::M_TRANSISTORS,
            RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn penalty_explodes_at_scaled_nodes_without_correlation() {
        let s = study();
        let results = s.run(&paper::SCALING_NODES_NM).unwrap();
        assert_eq!(results.len(), 4);
        // Fig 2.2b shape: penalty strictly increasing as nodes shrink,
        // exceeding ~100 % at 16 nm while modest at 45 nm.
        for pair in results.windows(2) {
            assert!(
                pair[1].penalty_plain > pair[0].penalty_plain,
                "penalty must grow: {pair:?}"
            );
        }
        assert!(
            results[0].penalty_plain < 0.25,
            "45 nm: {}",
            results[0].penalty_plain
        );
        assert!(
            results[3].penalty_plain > 0.8,
            "16 nm: {}",
            results[3].penalty_plain
        );
    }

    #[test]
    fn correlation_nearly_eliminates_penalty_at_45nm() {
        let s = study();
        let results = s.run(&[45.0]).unwrap();
        let r = &results[0];
        // Fig 3.3: with correlation the 45-nm penalty is ≈ 0.
        assert!(
            r.penalty_corr < 0.02,
            "correlated penalty at 45 nm = {}",
            r.penalty_corr
        );
        assert!(r.penalty_plain > r.penalty_corr);
        assert!(r.w_min_corr < r.w_min_plain);
    }

    #[test]
    fn correlated_penalty_reduced_at_every_node() {
        let s = study();
        let results = s.run(&paper::SCALING_NODES_NM).unwrap();
        for r in &results {
            assert!(
                r.penalty_corr < 0.55 * r.penalty_plain + 0.01,
                "node {}: corr {} vs plain {}",
                r.node,
                r.penalty_corr,
                r.penalty_plain
            );
            // Relaxation grows as the node shrinks.
        }
        assert!(results[3].relaxation > results[0].relaxation);
    }

    #[test]
    fn wmin_plain_is_node_invariant() {
        // The requirement and CNT statistics don't scale with the node, so
        // the uncorrelated W_min (in nm) stays put — the mechanism behind
        // the exploding penalty.
        let s = study();
        let results = s.run(&[45.0, 16.0]).unwrap();
        // M_min shifts a little across nodes (the whole distribution falls
        // below W_min at 16 nm), so W_min moves by a few nm, not more.
        assert!(
            (results[0].w_min_plain - results[1].w_min_plain).abs() < 12.0,
            "{} vs {}",
            results[0].w_min_plain,
            results[1].w_min_plain
        );
    }

    #[test]
    fn validation() {
        let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        let row = RowModel::from_design(200.0, 1.8).unwrap();
        assert!(ScalingStudy::new(model, 45.0, vec![], 0.9, 1e8, row).is_err());
    }
}
