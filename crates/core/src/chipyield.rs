//! Circuit-level yield — Eq. (2.3) and the Eq. (2.5) approximations.

use crate::failure::FailureModel;
use crate::{CoreError, Result};

/// Chip yield over an explicit width population, Eq. (2.3):
/// `Yield = Π_i (1 − pF(W_i))^{count_i}` (exact product form; the paper
/// also uses the `1 − Σ pF` first-order form, recovered by
/// [`yield_first_order`]).
///
/// `widths` are `(width, count)` pairs (counts let hundred-million-device
/// populations collapse to their distinct widths).
///
/// # Errors
///
/// Propagates failure-model errors; rejects zero-width entries.
pub fn chip_yield(model: &FailureModel, widths: &[(f64, u64)]) -> Result<f64> {
    let mut log_yield = 0.0_f64;
    for &(w, count) in widths {
        if !(w.is_finite() && w > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "width",
                value: w,
                constraint: "must be finite and > 0",
            });
        }
        let p = model.p_failure(w)?;
        log_yield += count as f64 * (1.0 - p).ln();
    }
    Ok(log_yield.exp())
}

/// First-order yield `1 − Σ_i count_i·pF(W_i)` (the paper's approximation
/// in Eq. (2.3)), clamped at 0.
///
/// # Errors
///
/// Propagates failure-model errors.
pub fn yield_first_order(model: &FailureModel, widths: &[(f64, u64)]) -> Result<f64> {
    let mut loss = 0.0_f64;
    for &(w, count) in widths {
        loss += count as f64 * model.p_failure(w)?;
    }
    Ok((1.0 - loss).max(0.0))
}

/// Yield when `m_min` minimum-sized devices dominate (Eq. 2.5 left side):
/// `(1 − pF)^m_min`.
pub fn yield_min_dominated(p_failure: f64, m_min: f64) -> f64 {
    (1.0 - p_failure).powf(m_min)
}

/// The failure-probability requirement implied by a yield target and a
/// minimum-sized-device count (Eq. 2.5, exact form):
/// `pF_req = 1 − Yield^{1/m_min}` ≈ `(1 − Yield)/m_min`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a target outside `(0, 1)` or
/// non-positive `m_min`.
pub fn required_p_failure(yield_target: f64, m_min: f64) -> Result<f64> {
    if !(yield_target > 0.0 && yield_target < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "yield_target",
            value: yield_target,
            constraint: "must be in (0, 1)",
        });
    }
    if !(m_min.is_finite() && m_min >= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "m_min",
            value: m_min,
            constraint: "must be finite and >= 1",
        });
    }
    Ok(1.0 - yield_target.powf(1.0 / m_min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;

    fn model() -> FailureModel {
        FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap()
    }

    #[test]
    fn paper_requirement_3e9() {
        // Paper Sec 2.2: (1 − 0.9)/33e6 ≈ 3e-9.
        let req = required_p_failure(0.90, 0.33 * 1e8).unwrap();
        // Exact form 1 - 0.9^(1/m) = -ln(0.9)/m = 3.19e-9; the paper's
        // first-order (1 - Y)/m = 3.03e-9. Both are "about 3e-9".
        assert!(
            (req - 0.1 / 33e6).abs() / (0.1 / 33e6) < 0.07,
            "req = {req:.3e}"
        );
    }

    #[test]
    fn product_vs_first_order_agree_when_loss_small() {
        let m = model();
        let widths = [(150.0, 1000u64), (200.0, 5000u64)];
        let exact = chip_yield(&m, &widths).unwrap();
        let approx = yield_first_order(&m, &widths).unwrap();
        assert!((exact - approx).abs() < 1e-6, "{exact} vs {approx}");
        assert!(exact < 1.0);
    }

    #[test]
    fn wide_devices_do_not_hurt_yield() {
        let m = model();
        let y_narrow = chip_yield(&m, &[(100.0, 1000)]).unwrap();
        let y_mixed = chip_yield(&m, &[(100.0, 1000), (400.0, 1_000_000)]).unwrap();
        // A million 400-nm devices cost almost nothing.
        assert!((y_narrow - y_mixed).abs() / y_narrow < 1e-3);
    }

    #[test]
    fn min_dominated_matches_requirement_roundtrip() {
        let req = required_p_failure(0.90, 33e6).unwrap();
        let y = yield_min_dominated(req, 33e6);
        assert!((y - 0.90).abs() < 1e-6, "roundtrip yield {y}");
    }

    #[test]
    fn validation() {
        assert!(required_p_failure(1.0, 10.0).is_err());
        assert!(required_p_failure(0.5, 0.0).is_err());
        let m = model();
        assert!(chip_yield(&m, &[(0.0, 1)]).is_err());
    }
}
