//! Surviving-metallic-CNT statistics — the noise-margin hook.
//!
//! Count failure is not the only CNFET failure mode: m-CNTs that *survive*
//! VMR short the channel and degrade noise margins (\[Zhang 09b\]; the
//! paper sets this aside for logic yield because later CMOS stages restore
//! signals, but states that VLSI needs `pRm > 99.99 %`). This module
//! quantifies that requirement with the same renewal machinery:
//!
//! * a CNT under a gate is a *surviving metallic* with probability
//!   `q = pm·(1 − pRm)` (independent of everything else);
//! * the number of survivors in a width-`W` gate is the `q`-thinned CNT
//!   count, with PGF `G_N(1 − q·(1 − z))`;
//! * a gate is *noise-suspect* if it has at least one survivor:
//!   `p_NM(W) = 1 − G_N(1 − q)`.

use crate::failure::FailureModel;
use crate::{CoreError, Result};

/// Probability that a width-`w` gate contains at least one surviving
/// metallic CNT.
///
/// # Errors
///
/// Propagates count-model errors (invalid width).
pub fn p_any_surviving_metallic(model: &FailureModel, w: f64) -> Result<f64> {
    let q = model.corner().surviving_metallic_rate();
    let dist = model.count_distribution(w)?;
    Ok(1.0 - dist.pgf(1.0 - q))
}

/// Expected number of surviving metallic CNTs in a width-`w` gate.
///
/// # Errors
///
/// Propagates count-model errors (invalid width).
pub fn mean_surviving_metallic(model: &FailureModel, w: f64) -> Result<f64> {
    let q = model.corner().surviving_metallic_rate();
    Ok(q * model.count_distribution(w)?.mean())
}

/// The `pRm` a chip needs so that the expected number of noise-suspect
/// gates stays below `budget` for `m` gates of width `w`
/// (the \[Zhang 09b\] "pRm > 99.99 %" style requirement).
///
/// Solved by bisection on the monotone map `pRm → p_NM`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a non-positive budget or
/// gate count, and [`CoreError::NoConvergence`] when even perfect removal
/// cannot meet the budget (impossible: `pRm = 1` gives 0 — so this
/// indicates `budget ≤ 0` slipped through).
pub fn required_p_rm(model: &FailureModel, w: f64, m_gates: f64, budget: f64) -> Result<f64> {
    if !(budget > 0.0 && budget.is_finite()) {
        return Err(CoreError::InvalidParameter {
            name: "budget",
            value: budget,
            constraint: "must be finite and > 0",
        });
    }
    if !(m_gates >= 1.0 && m_gates.is_finite()) {
        return Err(CoreError::InvalidParameter {
            name: "m_gates",
            value: m_gates,
            constraint: "must be finite and >= 1",
        });
    }
    let per_gate_target = budget / m_gates;
    let pm = model.corner().pm();
    if pm == 0.0 {
        return Ok(0.0); // no metallic CNTs — any pRm works
    }
    let dist = model.count_distribution(w)?;
    let p_nm = |p_rm: f64| -> f64 {
        let q = pm * (1.0 - p_rm);
        1.0 - dist.pgf(1.0 - q)
    };
    if p_nm(0.0) <= per_gate_target {
        return Ok(0.0);
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if p_nm(mid) > per_gate_target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;

    fn leaky_model() -> FailureModel {
        // pRm = 99.99 %: the paper's stated requirement.
        FailureModel::paper_default(ProcessCorner::new(0.33, 0.30, 0.9999).unwrap()).unwrap()
    }

    #[test]
    fn perfect_removal_means_no_survivors() {
        let m = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        assert_eq!(p_any_surviving_metallic(&m, 100.0).unwrap(), 0.0);
        assert_eq!(mean_surviving_metallic(&m, 100.0).unwrap(), 0.0);
    }

    #[test]
    fn survivor_rate_scales_with_width_and_leakiness() {
        let m = leaky_model();
        let p_narrow = p_any_surviving_metallic(&m, 50.0).unwrap();
        let p_wide = p_any_surviving_metallic(&m, 200.0).unwrap();
        assert!(p_wide > p_narrow, "{p_wide} > {p_narrow}");
        // Mean survivors ≈ q · W/S: 0.33·1e-4 · 25 ≈ 8.2e-4 at 100 nm.
        let mean = mean_surviving_metallic(&m, 100.0).unwrap();
        assert!(
            (mean - 0.33 * 1e-4 * 25.0).abs() / mean < 0.15,
            "mean {mean}"
        );
    }

    #[test]
    fn paper_9999_requirement_emerges() {
        // For a 1e8-gate chip at ~150 nm gates, keeping the expected count
        // of noise-suspect gates around 1e4 (a repairable/deratable level)
        // demands pRm ≳ 99.99 % — the number the paper quotes.
        let m = leaky_model();
        let p_rm = required_p_rm(&m, 150.0, 1e8, 1e4).unwrap();
        assert!(p_rm > 0.9998 && p_rm < 0.999_999_9, "required pRm = {p_rm}");
    }

    #[test]
    fn thinning_pgf_sanity() {
        // p(any survivor) must never exceed q·E[N] (union bound).
        let m = leaky_model();
        for w in [40.0, 103.0, 155.0] {
            let p = p_any_surviving_metallic(&m, w).unwrap();
            let bound = mean_surviving_metallic(&m, w).unwrap();
            assert!(p <= bound + 1e-15, "W={w}: {p} > {bound}");
            assert!(p >= 0.0);
        }
    }

    #[test]
    fn validation() {
        let m = leaky_model();
        assert!(required_p_rm(&m, 100.0, 0.0, 1.0).is_err());
        assert!(required_p_rm(&m, 100.0, 1e8, 0.0).is_err());
        // pm = 0: trivially satisfied.
        let clean =
            FailureModel::paper_default(ProcessCorner::all_semiconducting().unwrap()).unwrap();
        assert_eq!(required_p_rm(&clean, 100.0, 1e8, 1.0).unwrap(), 0.0);
    }
}
