//! Device-level failure probability `pF(W)` — Eq. (2.2), Fig 2.1.

use crate::corner::ProcessCorner;
use crate::{CoreError, Result};
use cnt_growth::growth::{paper, ZHANG09A_PITCH_COV};
use cnt_stats::renewal::{CountDistribution, CountModel, RenewalCount};
use cnt_stats::TruncatedGaussian;

/// One point of a `pF` vs `W` sweep (a Fig 2.1 sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePoint {
    /// Gate width (nm).
    pub width: f64,
    /// CNFET count-failure probability.
    pub p_failure: f64,
}

/// The device failure model: pitch statistics × processing corner.
///
/// `pF(W) = Σ_n pf^n · Prob{N(W) = n}` with `N(W)` the renewal CNT count.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    pitch: TruncatedGaussian,
    corner: ProcessCorner,
    backend: CountModel,
}

impl FailureModel {
    /// Build from explicit pitch statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive pitch
    /// parameters (via the truncated-Gaussian constructor).
    pub fn new(mean_pitch: f64, pitch_cov: f64, corner: ProcessCorner) -> Result<Self> {
        if !(pitch_cov.is_finite() && pitch_cov > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "pitch_cov",
                value: pitch_cov,
                constraint: "must be finite and > 0",
            });
        }
        let pitch = TruncatedGaussian::positive_with_moments(mean_pitch, pitch_cov * mean_pitch)?;
        Ok(Self {
            pitch,
            corner,
            backend: CountModel::Convolution { step: 0.05 },
        })
    }

    /// The paper's configuration: `S = 4 nm`, calibrated σ_S/S, given
    /// corner, exact convolution back-end.
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors [`FailureModel::new`].
    pub fn paper_default(corner: ProcessCorner) -> Result<Self> {
        Self::new(paper::MEAN_PITCH_NM, ZHANG09A_PITCH_COV, corner)
    }

    /// Switch the numerical back-end (builder style). The default exact
    /// convolution is right for anchors and tables; [`CountModel::GaussianSum`]
    /// is ~100× faster for dense sweeps at <2× tail error.
    pub fn with_backend(mut self, backend: CountModel) -> Self {
        self.backend = backend;
        self
    }

    /// The pitch distribution.
    pub fn pitch(&self) -> &TruncatedGaussian {
        &self.pitch
    }

    /// The processing corner.
    pub fn corner(&self) -> ProcessCorner {
        self.corner
    }

    /// Per-CNT failure probability `pf` (Eq. 2.1).
    pub fn pf(&self) -> f64 {
        self.corner.pf()
    }

    /// The renewal counting process this model is built on.
    pub fn renewal(&self) -> RenewalCount {
        RenewalCount::new(self.pitch, self.backend)
    }

    /// CNT count distribution under a gate of width `w`.
    ///
    /// # Errors
    ///
    /// Propagates renewal-model errors (invalid width).
    pub fn count_distribution(&self, w: f64) -> Result<CountDistribution> {
        Ok(self.renewal().distribution(w)?)
    }

    /// Device failure probability `pF(w)` — Eq. (2.2).
    ///
    /// # Errors
    ///
    /// Propagates renewal-model errors (invalid width).
    pub fn p_failure(&self, w: f64) -> Result<f64> {
        Ok(self.renewal().failure_probability(w, self.pf())?)
    }

    /// Batch `pF` at many widths — element-wise bit-identical to
    /// [`FailureModel::p_failure`] per width, but with one renewal process
    /// (and, for the convolution back-end, one cached sweep plan) serving
    /// the whole batch.
    ///
    /// # Errors
    ///
    /// Per-element errors of [`FailureModel::p_failure`]; the first failing
    /// width aborts the batch.
    pub fn p_failures(&self, widths: &[f64]) -> Result<Vec<f64>> {
        Ok(self.renewal().failure_probabilities(widths, self.pf())?)
    }

    /// Sweep `pF` over widths (one Fig 2.1 curve).
    ///
    /// # Errors
    ///
    /// Propagates [`FailureModel::p_failure`] errors.
    pub fn sweep(&self, widths: &[f64]) -> Result<Vec<FailurePoint>> {
        Ok(self
            .p_failures(widths)?
            .into_iter()
            .zip(widths)
            .map(|(p_failure, &width)| FailurePoint { width, p_failure })
            .collect())
    }

    /// Mean CNT count under a gate of width `w` (≈ `w / S̄`).
    ///
    /// # Errors
    ///
    /// Propagates renewal-model errors.
    pub fn mean_count(&self, w: f64) -> Result<f64> {
        Ok(self.count_distribution(w)?.mean())
    }

    /// Inverse query: the width at which `pF` equals `target` (bisection
    /// over the monotone `pF(W)` curve).
    ///
    /// # Errors
    ///
    /// [`CoreError::NoConvergence`] if the target is outside the model's
    /// reachable range within `[w_lo, w_hi]`.
    pub fn width_for_failure(&self, target: f64, w_lo: f64, w_hi: f64) -> Result<f64> {
        crate::curve::width_for_failure(self, target, w_lo, w_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FailureModel {
        FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap()
    }

    #[test]
    fn pf_matches_corner() {
        let m = model();
        assert!((m.pf() - 0.531).abs() < 1e-12);
    }

    #[test]
    fn p_failure_monotone_decreasing() {
        let m = model();
        let pts = m.sweep(&[20.0, 60.0, 100.0, 140.0, 180.0]).unwrap();
        for pair in pts.windows(2) {
            assert!(
                pair[1].p_failure < pair[0].p_failure,
                "pF must fall with W: {pair:?}"
            );
        }
    }

    #[test]
    fn fig21_anchor_103nm() {
        // Paper Fig 2.1: pF(103 nm) ≈ 1.1e-6 after the 350× relaxation.
        let m = model();
        let p = m.p_failure(103.0).unwrap();
        assert!(
            (5e-7..3e-6).contains(&p),
            "pF(103) = {p:.3e}, paper ≈ 1.1e-6"
        );
    }

    #[test]
    fn fig21_anchor_155nm_order_of_magnitude() {
        // Paper Fig 2.1: pF(155 nm) ≈ 3e-9; the model reproduces the order
        // of magnitude (see calibration.rs for the W_min-level agreement).
        let m = model();
        let p = m.p_failure(155.0).unwrap();
        assert!(
            (5e-10..1e-8).contains(&p),
            "pF(155) = {p:.3e}, paper ≈ 3e-9"
        );
    }

    #[test]
    fn corners_order_as_in_fig21() {
        // At fixed W: aggressive > ideal removal > all semiconducting.
        let w = 60.0;
        let agg = model().p_failure(w).unwrap();
        let ideal = FailureModel::paper_default(ProcessCorner::ideal_removal().unwrap())
            .unwrap()
            .p_failure(w)
            .unwrap();
        let semi = FailureModel::paper_default(ProcessCorner::all_semiconducting().unwrap())
            .unwrap()
            .p_failure(w)
            .unwrap();
        assert!(agg > ideal && ideal > semi, "{agg} > {ideal} > {semi}");
        // pm = 0, pRs = 0 → only the zero-count event fails the device.
        let p_empty = model().count_distribution(w).unwrap().p_empty();
        assert!((semi - p_empty).abs() < 1e-12);
    }

    #[test]
    fn width_inversion_roundtrip() {
        let m = model();
        let w = m.width_for_failure(1e-6, 20.0, 200.0).unwrap();
        let p = m.p_failure(w).unwrap();
        assert!(
            (p.log10() - (-6.0)).abs() < 0.05,
            "inverted width {w} gives {p:.3e}"
        );
        // A target already met at the bracket's low edge is not a solver
        // failure: the minimal width is the low edge itself (heavily
        // relaxed redundancy/correlation targets land here).
        assert_eq!(m.width_for_failure(0.9999, 100.0, 200.0).unwrap(), 100.0);
        // A target tighter than the high edge can deliver remains a
        // genuine bracketing error.
        assert!(m.width_for_failure(1e-300, 100.0, 200.0).is_err());
    }

    #[test]
    fn backend_switch_is_consistent() {
        let exact = model();
        let fast = model().with_backend(CountModel::GaussianSum);
        let (pe, pf_) = (
            exact.p_failure(100.0).unwrap(),
            fast.p_failure(100.0).unwrap(),
        );
        let ratio = pe / pf_;
        assert!((0.3..3.0).contains(&ratio), "backends diverged: {ratio}");
    }

    #[test]
    fn mean_count_tracks_width() {
        let m = model();
        let c100 = m.mean_count(100.0).unwrap();
        assert!((c100 - 25.0).abs() < 1.5, "mean count {c100}");
    }
}
