//! Every number the paper reports, as named constants.
//!
//! The reproduction harness prints these next to measured values; tests
//! assert agreement where the models are expected to match.

/// Chip size of the Sec 2.2 case study: 100 million transistors.
pub const M_TRANSISTORS: f64 = 1e8;

/// Desired chip yield of the case study (90 %).
pub const YIELD_TARGET: f64 = 0.90;

/// Fraction of transistors in the two leftmost bins of Fig 2.2a (the
/// minimum-sized population `M_min`): 33 %.
pub const MMIN_FRACTION: f64 = 0.33;

/// `W_min` without correlation at 45 nm (Fig 2.1 / Sec 2.2): 155 nm.
pub const WMIN_UNCORRELATED_NM: f64 = 155.0;

/// `W_min` with directional growth + aligned-active at 45 nm: 103 nm.
pub const WMIN_CORRELATED_NM: f64 = 103.0;

/// Device-level requirement at `W_min = 155 nm`: `pF ≈ 3e-9`.
pub const PF_REQUIREMENT_UNCORRELATED: f64 = 3e-9;

/// Relaxed requirement after 350×: `pF ≈ 1.1e-6`.
pub const PF_REQUIREMENT_CORRELATED: f64 = 1.1e-6;

/// Total relaxation factor of the paper's headline: 350×.
pub const RELAXATION_FACTOR: f64 = 350.0;

/// Factor attributed to directional (aligned-CNT) growth alone: 26.5×.
pub const GROWTH_FACTOR: f64 = 26.5;

/// Factor attributed to the aligned-active layout restriction: 13×.
pub const ALIGNMENT_FACTOR: f64 = 13.0;

/// Table 1, `p_RF` with uncorrelated CNT growth.
pub const TABLE1_UNCORRELATED: f64 = 5.3e-6;

/// Table 1, `p_RF` with directional growth but no aligned-active layout.
pub const TABLE1_DIRECTIONAL_UNALIGNED: f64 = 2.0e-7;

/// Table 1, `p_RF` with directional growth and aligned-active layout.
pub const TABLE1_DIRECTIONAL_ALIGNED: f64 = 1.5e-8;

/// Linear density of minimum-width CNFETs per row: 1.8 FET/µm (Sec 3.3).
pub const RHO_MIN_FET_PER_UM: f64 = 1.8;

/// CNT length under directional growth: 200 µm (\[Kang 07, Patil 09b\]).
pub const L_CNT_UM: f64 = 200.0;

/// `M_Rmin = L_CNT · ρ` (Eq. 3.2) with the constants above: 360.
pub const M_R_MIN: f64 = L_CNT_UM * RHO_MIN_FET_PER_UM;

/// Nangate 45 nm library size.
pub const NANGATE_CELLS: usize = 134;

/// Cells of the Nangate library with an area penalty (Sec 3.3 / Table 2).
pub const NANGATE_PENALIZED_CELLS: usize = 4;

/// AOI222_X1 width increase from the aligned-active re-layout (Fig 3.2).
pub const AOI222_X1_PENALTY: f64 = 0.09;

/// Table 2: Nangate min/max cell-area penalties.
pub const NANGATE_PENALTY_RANGE: (f64, f64) = (0.04, 0.14);

/// Commercial 65 nm library size.
pub const COMMERCIAL65_CELLS: usize = 775;

/// Table 2: fraction of 65 nm cells with an area penalty (one grid row).
pub const COMMERCIAL65_PENALIZED_FRACTION: f64 = 0.20;

/// Table 2: 65 nm min/max cell-area penalties (one grid row).
pub const COMMERCIAL65_PENALTY_RANGE: (f64, f64) = (0.10, 0.70);

/// Table 2: `W_min` values (nm) — 65 nm one grid, 65 nm two grids,
/// Nangate 45 nm one grid.
pub const TABLE2_WMIN_NM: (f64, f64, f64) = (107.0, 112.0, 103.0);

/// Technology nodes of the scaling study (Figs 2.2b, 3.3).
pub const SCALING_NODES_NM: [f64; 4] = [45.0, 32.0, 22.0, 16.0];

/// Fig 2.1 sweep range (nm).
pub const FIG21_W_RANGE_NM: (f64, f64) = (20.0, 180.0);

/// Fig 2.2a histogram bin width (nm).
pub const FIG22A_BIN_NM: f64 = 80.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_consistency() {
        // 360 ≈ 350: the paper rounds M_Rmin to its headline factor.
        assert!((M_R_MIN - 360.0).abs() < 1e-9);
        assert!((M_R_MIN / RELAXATION_FACTOR - 1.0).abs() < 0.05);
        // Table 1 ratios recover the stated factors.
        let growth = TABLE1_UNCORRELATED / TABLE1_DIRECTIONAL_UNALIGNED;
        let align = TABLE1_DIRECTIONAL_UNALIGNED / TABLE1_DIRECTIONAL_ALIGNED;
        assert!((growth - GROWTH_FACTOR).abs() < 0.5, "growth {growth}");
        assert!((align - ALIGNMENT_FACTOR).abs() < 0.5, "align {align}");
        let total = TABLE1_UNCORRELATED / TABLE1_DIRECTIONAL_ALIGNED;
        assert!(
            (total / RELAXATION_FACTOR - 1.0).abs() < 0.05,
            "total {total}"
        );
        // The pF requirements differ by the relaxation factor.
        let ratio = PF_REQUIREMENT_CORRELATED / PF_REQUIREMENT_UNCORRELATED;
        assert!(
            (ratio / RELAXATION_FACTOR - 1.0).abs() < 0.1,
            "ratio {ratio}"
        );
    }
}
