//! Processing corners: the `(pm, pRs, pRm)` triples of Eq. (2.1).

use crate::{CoreError, Result};

/// A CNT processing corner.
///
/// Wraps the metallic fraction `pm` and the VMR removal probabilities; the
/// derived per-CNT failure probability (Eq. 2.1) is
/// `pf = pm + (1 − pm)·pRs`, independent of `pRm` (an un-removed m-CNT is
/// equally useless as a channel — it threatens noise margins instead,
/// \[Zhang 09b\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessCorner {
    pm: f64,
    p_rs: f64,
    p_rm: f64,
}

impl ProcessCorner {
    /// Create a corner; all three probabilities in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on out-of-range inputs.
    pub fn new(pm: f64, p_rs: f64, p_rm: f64) -> Result<Self> {
        for (name, v) in [("pm", pm), ("p_rs", p_rs), ("p_rm", p_rm)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(CoreError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be in [0, 1]",
                });
            }
        }
        Ok(Self { pm, p_rs, p_rm })
    }

    /// Fig 2.1 top curve and the paper's main corner:
    /// `pm = 33 %`, `pRs = 30 %`, `pRm = 1`.
    ///
    /// # Errors
    ///
    /// Never fails; mirrors [`ProcessCorner::new`].
    pub fn aggressive() -> Result<Self> {
        Self::new(0.33, 0.30, 1.0)
    }

    /// Fig 2.1 middle curve: perfect removal selectivity
    /// (`pm = 33 %`, `pRs = 0`).
    ///
    /// # Errors
    ///
    /// Never fails; mirrors [`ProcessCorner::new`].
    pub fn ideal_removal() -> Result<Self> {
        Self::new(0.33, 0.0, 1.0)
    }

    /// Fig 2.1 bottom curve: perfectly semiconducting growth
    /// (`pm = 0`, `pRs = 0`).
    ///
    /// # Errors
    ///
    /// Never fails; mirrors [`ProcessCorner::new`].
    pub fn all_semiconducting() -> Result<Self> {
        Self::new(0.0, 0.0, 1.0)
    }

    /// Metallic CNT fraction `pm`.
    pub fn pm(&self) -> f64 {
        self.pm
    }

    /// Collateral semiconducting removal probability `pRs`.
    pub fn p_rs(&self) -> f64 {
        self.p_rs
    }

    /// Metallic removal probability `pRm`.
    pub fn p_rm(&self) -> f64 {
        self.p_rm
    }

    /// Per-CNT count-failure probability, Eq. (2.1).
    pub fn pf(&self) -> f64 {
        self.pm + (1.0 - self.pm) * self.p_rs
    }

    /// Surviving-metallic rate `pm·(1 − pRm)` (noise-margin residue).
    pub fn surviving_metallic_rate(&self) -> f64 {
        self.pm * (1.0 - self.p_rm)
    }

    /// The equivalent VMR process of `cnt-growth`.
    pub fn vmr(&self) -> cnt_growth::Vmr {
        cnt_growth::Vmr::new(self.p_rm, self.p_rs).expect("validated probabilities")
    }

    /// Short label for reports, e.g. `"pm=33%, pRs=30%"`.
    pub fn label(&self) -> String {
        format!("pm={:.0}%, pRs={:.0}%", self.pm * 100.0, self.p_rs * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ProcessCorner::new(1.2, 0.0, 1.0).is_err());
        assert!(ProcessCorner::new(0.3, -0.1, 1.0).is_err());
        assert!(ProcessCorner::new(0.3, 0.1, 2.0).is_err());
    }

    #[test]
    fn paper_corners() {
        let a = ProcessCorner::aggressive().unwrap();
        assert!((a.pf() - 0.531).abs() < 1e-12);
        let i = ProcessCorner::ideal_removal().unwrap();
        assert!((i.pf() - 0.33).abs() < 1e-12);
        let s = ProcessCorner::all_semiconducting().unwrap();
        assert_eq!(s.pf(), 0.0);
        assert_eq!(a.label(), "pm=33%, pRs=30%");
    }

    #[test]
    fn pf_independent_of_prm() {
        let leaky = ProcessCorner::new(0.33, 0.30, 0.5).unwrap();
        let clean = ProcessCorner::aggressive().unwrap();
        assert_eq!(leaky.pf(), clean.pf());
        assert!(leaky.surviving_metallic_rate() > 0.0);
        assert_eq!(clean.surviving_metallic_rate(), 0.0);
    }

    #[test]
    fn vmr_roundtrip() {
        let c = ProcessCorner::aggressive().unwrap();
        let v = c.vmr();
        assert_eq!(v.p_rs(), 0.30);
        assert_eq!(v.p_rm(), 1.0);
        assert!((v.per_cnt_failure_probability(c.pm()) - c.pf()).abs() < 1e-12);
    }
}
