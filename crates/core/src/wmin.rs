//! The `W_min` solver — Eq. (2.4)/(2.5).
//!
//! `W_min` is the smallest upsizing threshold such that, after every
//! device narrower than `W_min` is widened to it, the chip meets its yield
//! target. The paper's simplification (2.5) reduces this to one device
//! query: find `W` with `pF(W) ≤ (1 − Yield)/M_min`, read off Fig 2.1.
//!
//! The solver is generic over [`PFailure`]: run it on an exact
//! [`FailureModel`] for anchors, or on a shared
//! [`FailureCurve`](crate::curve::FailureCurve) when many solves hit the
//! same `(corner, backend)` curve.

use crate::chipyield::required_p_failure;
use crate::curve::{width_for_failure, PFailure};
use crate::failure::FailureModel;
use crate::penalty::fraction_below;
use crate::Result;

/// Solution of the `W_min` problem.
#[derive(Debug, Clone, PartialEq)]
pub struct WminSolution {
    /// The minimum upsizing threshold (nm).
    pub w_min: f64,
    /// The device-level requirement `pF_req` that was imposed.
    pub p_req: f64,
    /// The achieved `pF(W_min)` (≤ `p_req`).
    pub p_at_w_min: f64,
}

/// Bisection solver for `W_min` over a monotone `pF(W)`.
#[derive(Debug, Clone)]
pub struct WminSolver<E: PFailure = FailureModel> {
    eval: E,
    w_lo: f64,
    w_hi: f64,
}

impl<E: PFailure> WminSolver<E> {
    /// Create a solver with the default search bracket `[5, 2000] nm`.
    pub fn new(eval: E) -> Self {
        Self {
            eval,
            w_lo: 5.0,
            w_hi: 2000.0,
        }
    }

    /// Narrow or widen the search bracket (builder style).
    pub fn with_bracket(mut self, w_lo: f64, w_hi: f64) -> Self {
        self.w_lo = w_lo;
        self.w_hi = w_hi;
        self
    }

    /// The `pF(W)` evaluator in use (a model or a memoized curve).
    pub fn evaluator(&self) -> &E {
        &self.eval
    }

    /// Solve for an explicit device-level requirement `p_req`.
    ///
    /// # Errors
    ///
    /// Propagates bracketing failures from the model inversion.
    pub fn solve_for_requirement(&self, p_req: f64) -> Result<WminSolution> {
        let w_min = width_for_failure(&self.eval, p_req, self.w_lo, self.w_hi)?;
        Ok(WminSolution {
            w_min,
            p_req,
            p_at_w_min: self.eval.p_failure(w_min)?,
        })
    }

    /// Solve Eq. (2.5): requirement from a yield target and the count of
    /// minimum-sized devices.
    ///
    /// # Errors
    ///
    /// Propagates requirement/bracketing errors.
    pub fn solve(&self, yield_target: f64, m_min: f64) -> Result<WminSolution> {
        self.solve_for_requirement(required_p_failure(yield_target, m_min)?)
    }

    /// Solve with a correlation relaxation factor (Sec 3.1): the
    /// requirement is multiplied by `relaxation` (e.g. `M_Rmin ≈ 350`).
    ///
    /// # Errors
    ///
    /// Propagates requirement/bracketing errors; rejects a relaxation < 1.
    pub fn solve_relaxed(
        &self,
        yield_target: f64,
        m_min: f64,
        relaxation: f64,
    ) -> Result<WminSolution> {
        if !(relaxation.is_finite() && relaxation >= 1.0) {
            return Err(crate::CoreError::InvalidParameter {
                name: "relaxation",
                value: relaxation,
                constraint: "must be finite and >= 1",
            });
        }
        let base = required_p_failure(yield_target, m_min)?;
        self.solve_for_requirement((base * relaxation).min(0.999_999))
    }
}

/// The self-consistent `(W_min, M_min)` fixed point shared by the scaling
/// study, the optimizer, and the scenario pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct UpsizingSolution {
    /// The upsizing threshold (nm).
    pub w_min: f64,
    /// The self-consistent minimum-sized-device count.
    pub m_min: f64,
    /// The device-level requirement imposed at convergence.
    pub p_req: f64,
}

/// Solve the paper's iterative Eq. (2.5) estimate: `M_min` is the number
/// of devices below `W_min`, which itself depends on `M_min`. `relaxation`
/// multiplies the device-level requirement (1 for the uncorrelated case).
///
/// # Errors
///
/// Propagates requirement/bracketing errors from the underlying solves.
pub fn solve_upsizing<E: PFailure>(
    eval: &E,
    widths: &[(f64, u64)],
    yield_target: f64,
    m_transistors: f64,
    relaxation: f64,
) -> Result<UpsizingSolution> {
    let solver = WminSolver::new(eval);
    // Fixed point: start with everything minimum-sized.
    let mut m_min = m_transistors;
    let mut w_min = 0.0;
    let mut p_req = 0.0;
    for _ in 0..32 {
        let req = (required_p_failure(yield_target, m_min)? * relaxation).min(0.999_999);
        p_req = req;
        w_min = solver.solve_for_requirement(req)?.w_min;
        let frac = fraction_below(widths, w_min);
        if frac <= 0.0 {
            // Nothing below W_min: the design needs no upsizing.
            break;
        }
        let new_m_min = (frac * m_transistors).max(1.0);
        if (new_m_min - m_min).abs() / m_min < 1e-3 {
            m_min = new_m_min;
            break;
        }
        m_min = new_m_min;
    }
    Ok(UpsizingSolution {
        w_min,
        m_min,
        p_req,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::curve::FailureCurve;
    use crate::paper;

    fn solver() -> WminSolver {
        WminSolver::new(FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap())
    }

    #[test]
    fn paper_wmin_155nm_case_study() {
        // M = 1e8, yield 90 %, M_min = 33 % → W_min ≈ 155 nm (paper).
        let s = solver()
            .solve(
                paper::YIELD_TARGET,
                paper::MMIN_FRACTION * paper::M_TRANSISTORS,
            )
            .unwrap();
        assert!(
            (s.w_min - paper::WMIN_UNCORRELATED_NM).abs() < 8.0,
            "W_min = {:.1} nm, paper {}",
            s.w_min,
            paper::WMIN_UNCORRELATED_NM
        );
        assert!(s.p_at_w_min <= s.p_req);
    }

    #[test]
    fn paper_wmin_103nm_after_350x() {
        let s = solver()
            .solve_relaxed(
                paper::YIELD_TARGET,
                paper::MMIN_FRACTION * paper::M_TRANSISTORS,
                paper::RELAXATION_FACTOR,
            )
            .unwrap();
        assert!(
            (s.w_min - paper::WMIN_CORRELATED_NM).abs() < 6.0,
            "relaxed W_min = {:.1} nm, paper {}",
            s.w_min,
            paper::WMIN_CORRELATED_NM
        );
    }

    #[test]
    fn relaxation_shrinks_wmin_monotonically() {
        let s = solver();
        let w1 = s.solve_relaxed(0.9, 33e6, 1.0).unwrap().w_min;
        let w10 = s.solve_relaxed(0.9, 33e6, 10.0).unwrap().w_min;
        let w350 = s.solve_relaxed(0.9, 33e6, 350.0).unwrap().w_min;
        assert!(w1 > w10 && w10 > w350, "{w1} > {w10} > {w350}");
    }

    #[test]
    fn tighter_yield_needs_wider_devices() {
        let s = solver();
        let w90 = s.solve(0.90, 33e6).unwrap().w_min;
        let w99 = s.solve(0.99, 33e6).unwrap().w_min;
        assert!(w99 > w90);
    }

    #[test]
    fn solver_runs_on_a_shared_curve() {
        let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        let curve = FailureCurve::new(model.clone());
        let on_curve = WminSolver::new(&curve).solve(0.9, 33e6).unwrap();
        let on_model = WminSolver::new(model).solve(0.9, 33e6).unwrap();
        assert!(
            (on_curve.w_min - on_model.w_min).abs() < 0.5,
            "curve {} vs model {}",
            on_curve.w_min,
            on_model.w_min
        );
    }

    #[test]
    fn fixed_point_lands_on_the_distribution() {
        let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        let widths = vec![
            (110.0, 33_000_000u64),
            (185.0, 47_000_000),
            (370.0, 20_000_000),
        ];
        let sol = solve_upsizing(&model, &widths, 0.90, 1e8, 1.0).unwrap();
        assert!((sol.w_min - paper::WMIN_UNCORRELATED_NM).abs() < 10.0);
        assert!((sol.m_min / 1e8 - 0.33).abs() < 0.02, "m_min {}", sol.m_min);
        assert!(sol.p_req > 0.0);
    }

    #[test]
    fn validation() {
        let s = solver();
        assert!(s.solve_relaxed(0.9, 33e6, 0.5).is_err());
        assert!(s.solve(1.5, 33e6).is_err());
    }
}
