//! Row-correlation yield model — Eqs. (3.1)/(3.2) and Table 1.
//!
//! With directional growth, the `M_min` critical CNFETs partition into
//! `K_R` rows of `M_Rmin = L_CNT · ρ_min-CNFET` devices that share CNTs;
//! rows are independent (different CNTs), so
//! `Yield = (1 − p_RF)^K_R ≈ 1 − K_R·p_RF` (Eq. 3.1). The three growth/
//! layout scenarios of Table 1 differ only in `p_RF`:
//!
//! * **uncorrelated growth** — every device independent:
//!   `p_RF = 1 − (1 − pF)^M_Rmin ≈ M_Rmin · pF`;
//! * **directional, non-aligned** — devices share tracks *partially*
//!   (random active-region offsets): computed by conditional Monte Carlo
//!   over track layouts with the exact run DP;
//! * **directional, aligned-active** — all devices share all tracks:
//!   `p_RF = pF`.

use crate::failure::FailureModel;
use crate::{CoreError, Result};
use cnfet_sim::condmc::{estimate_row_failure, FailureEstimate, RowScenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The row-partition model of Eq. (3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowModel {
    m_r_min: f64,
}

impl RowModel {
    /// Build from the CNT length (µm) and the critical-CNFET linear density
    /// (per µm): `M_Rmin = L_CNT · ρ`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive inputs or a
    /// resulting `M_Rmin < 1`.
    pub fn from_design(l_cnt_um: f64, rho_per_um: f64) -> Result<Self> {
        for (name, v) in [("l_cnt_um", l_cnt_um), ("rho_per_um", rho_per_um)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        let m_r_min = l_cnt_um * rho_per_um;
        if m_r_min < 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "m_r_min",
                value: m_r_min,
                constraint: "L_CNT·rho must be >= 1",
            });
        }
        Ok(Self { m_r_min })
    }

    /// Divide the benefit for multi-grid alignment (Sec 3.3: two grid rows
    /// halve `M_Rmin`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the division exceeds
    /// `M_Rmin` or is < 1.
    pub fn with_grid_division(self, division: f64) -> Result<Self> {
        if !(division >= 1.0 && division <= self.m_r_min) {
            return Err(CoreError::InvalidParameter {
                name: "division",
                value: division,
                constraint: "must be in [1, M_Rmin]",
            });
        }
        Ok(Self {
            m_r_min: self.m_r_min / division,
        })
    }

    /// Average number of critical CNFETs per row, `M_Rmin`.
    pub fn m_r_min(&self) -> f64 {
        self.m_r_min
    }

    /// The relaxation factor the aligned-active restriction buys: the
    /// device-level requirement loosens by exactly `M_Rmin` (Sec 3.1).
    pub fn relaxation(&self) -> f64 {
        self.m_r_min
    }

    /// Number of rows for a chip with `m_min` critical devices.
    pub fn k_rows(&self, m_min: f64) -> f64 {
        m_min / self.m_r_min
    }

    /// Row failure probability with *uncorrelated* growth.
    pub fn p_rf_uncorrelated(&self, p_f: f64) -> f64 {
        1.0 - (1.0 - p_f).powf(self.m_r_min)
    }

    /// Row failure probability with directional growth and aligned-active
    /// layout: the whole row fails like one device.
    pub fn p_rf_aligned(&self, p_f: f64) -> f64 {
        p_f
    }

    /// Chip yield from row statistics, Eq. (3.1).
    pub fn yield_rows(&self, m_min: f64, p_rf: f64) -> f64 {
        (1.0 - p_rf).powf(self.k_rows(m_min))
    }
}

/// The "directional growth, unmodified (non-aligned) library" scenario:
/// critical active regions sit at quantized per-cell y offsets inside the
/// polarity band, so row neighbours share tracks only partially.
#[derive(Debug, Clone, PartialEq)]
pub struct UnalignedRowStudy {
    /// Height of the polarity band the active regions live in (nm).
    pub band_height: f64,
    /// Critical-device gate width (nm).
    pub width: f64,
    /// Offset quantization step (nm) — the legal-placement grid of the
    /// library (45 nm in the Nangate-45-class geometry).
    pub offset_step: f64,
    /// Number of devices in the row (`M_Rmin`, rounded).
    pub devices: usize,
}

impl UnalignedRowStudy {
    /// Estimate `p_RF` by conditional MC: offsets are drawn uniformly from
    /// the quantized feasible grid per device, then track geometry is
    /// sampled and the exact run DP evaluates each layout.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation and simulation errors.
    pub fn estimate(
        &self,
        model: &FailureModel,
        trials: u32,
        seed: u64,
    ) -> Result<FailureEstimate> {
        if self.devices == 0 {
            return Err(CoreError::InvalidParameter {
                name: "devices",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let slack = self.band_height - self.width;
        if slack < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "width",
                value: self.width,
                constraint: "must fit inside band_height",
            });
        }
        let n_slots = (slack / self.offset_step).floor() as u64 + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let spans: Vec<(f64, f64)> = (0..self.devices)
            .map(|_| {
                let slot = rng.gen_range(0..n_slots) as f64;
                let y0 = slot * self.offset_step;
                (y0, y0 + self.width)
            })
            .collect();
        let scenario = RowScenario {
            row_height: self.band_height,
            fet_spans: spans,
            pitch: *model.pitch(),
            pf: model.pf(),
        };
        Ok(estimate_row_failure(&scenario, trials, &mut rng)?)
    }
}

/// Results of a full Table 1 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Device failure probability at the evaluation width.
    pub p_f: f64,
    /// `p_RF` with uncorrelated growth.
    pub uncorrelated: f64,
    /// `p_RF` with directional growth, unmodified library.
    pub directional_unaligned: f64,
    /// `p_RF` with directional growth + aligned-active cells.
    pub directional_aligned: f64,
}

impl Table1 {
    /// Factor gained by directional growth alone (paper: 26.5×).
    pub fn growth_factor(&self) -> f64 {
        self.uncorrelated / self.directional_unaligned
    }

    /// Factor gained by the aligned-active restriction (paper: 13×).
    pub fn alignment_factor(&self) -> f64 {
        self.directional_unaligned / self.directional_aligned
    }

    /// Total reduction (paper: ≈350×).
    pub fn total_factor(&self) -> f64 {
        self.uncorrelated / self.directional_aligned
    }
}

/// Evaluate Table 1 at a given critical-device width.
///
/// # Errors
///
/// Propagates model and simulation errors.
pub fn evaluate_table1(
    model: &FailureModel,
    row: &RowModel,
    study: &UnalignedRowStudy,
    trials: u32,
    seed: u64,
) -> Result<Table1> {
    let p_f = model.p_failure(study.width)?;
    let unaligned = study.estimate(model, trials, seed)?;
    Ok(Table1 {
        p_f,
        uncorrelated: row.p_rf_uncorrelated(p_f),
        directional_unaligned: unaligned.probability,
        directional_aligned: row.p_rf_aligned(p_f),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::paper;

    fn model() -> FailureModel {
        FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap()
    }

    #[test]
    fn eq_3_2_m_r_min() {
        let r = RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).unwrap();
        assert!((r.m_r_min() - 360.0).abs() < 1e-9);
        assert!((r.relaxation() - 360.0).abs() < 1e-9);
        assert!((r.k_rows(33e6) - 33e6 / 360.0).abs() < 1e-6);
    }

    #[test]
    fn grid_division_halves_benefit() {
        let r = RowModel::from_design(200.0, 1.8)
            .unwrap()
            .with_grid_division(2.0)
            .unwrap();
        assert!((r.relaxation() - 180.0).abs() < 1e-9);
        assert!(RowModel::from_design(200.0, 1.8)
            .unwrap()
            .with_grid_division(0.5)
            .is_err());
    }

    #[test]
    fn uncorrelated_approximates_m_p() {
        let r = RowModel::from_design(200.0, 1.8).unwrap();
        let p_f = 1.5e-8;
        let p_rf = r.p_rf_uncorrelated(p_f);
        assert!(
            ((p_rf / (360.0 * p_f)) - 1.0).abs() < 1e-3,
            "p_RF {p_rf:.3e} vs 360·pF {:.3e}",
            360.0 * p_f
        );
        assert_eq!(r.p_rf_aligned(p_f), p_f);
    }

    #[test]
    fn yield_rows_matches_first_order() {
        let r = RowModel::from_design(200.0, 1.8).unwrap();
        let y = r.yield_rows(33e6, 1.1e-6);
        let approx = 1.0 - r.k_rows(33e6) * 1.1e-6;
        assert!((y - approx).abs() < 6e-3, "{y} vs {approx}");
    }

    #[test]
    fn unaligned_sits_between_extremes() {
        // Small instance to keep test time low: 40 devices in a 560-nm
        // band. The unaligned p_RF must land strictly between aligned and
        // uncorrelated.
        let m = model();
        let row = RowModel::from_design(200.0, 0.2).unwrap(); // M_Rmin = 40
        let study = UnalignedRowStudy {
            band_height: 560.0,
            width: 103.0,
            offset_step: 45.0,
            devices: 40,
        };
        let t1 = evaluate_table1(&m, &row, &study, 400, 7).unwrap();
        assert!(
            t1.directional_aligned < t1.directional_unaligned,
            "aligned {:.3e} < unaligned {:.3e}",
            t1.directional_aligned,
            t1.directional_unaligned
        );
        assert!(
            t1.directional_unaligned < t1.uncorrelated,
            "unaligned {:.3e} < uncorrelated {:.3e}",
            t1.directional_unaligned,
            t1.uncorrelated
        );
        assert!(t1.growth_factor() > 1.0);
        assert!(t1.alignment_factor() > 1.0);
        let total = t1.growth_factor() * t1.alignment_factor();
        assert!((total / t1.total_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(RowModel::from_design(0.0, 1.8).is_err());
        assert!(RowModel::from_design(200.0, -1.0).is_err());
        let study = UnalignedRowStudy {
            band_height: 100.0,
            width: 200.0,
            offset_step: 45.0,
            devices: 10,
        };
        assert!(study.estimate(&model(), 10, 1).is_err());
    }
}
