//! Calibration of the one free parameter: the pitch CoV `σ_S/S`.
//!
//! The paper inherits its pitch-variation statistics from \[Zhang 09a\]
//! without restating the ratio. We pin it by requiring the model to
//! reproduce the paper's own Fig 2.1 anchors. The calibrated value is
//! exported as [`cnt_growth::growth::ZHANG09A_PITCH_COV`] and verified
//! here: with it, the solved `(W_min, W_min-relaxed)` pair lands within a
//! few nanometres of the paper's (155 nm, 103 nm).

use crate::corner::ProcessCorner;
use crate::failure::FailureModel;
use crate::{CoreError, Result};

/// Find the pitch CoV that makes `pF(anchor_w) = anchor_pf` for the given
/// corner, by bisection over `cov ∈ [0.3, 0.85]` (the range a positive
/// truncated Gaussian can realize robustly).
///
/// # Errors
///
/// Returns [`CoreError::NoConvergence`] if the anchor is unreachable in
/// the CoV range.
pub fn calibrate_pitch_cov(
    mean_pitch: f64,
    corner: ProcessCorner,
    anchor_w: f64,
    anchor_pf: f64,
) -> Result<f64> {
    let p_at = |cov: f64| -> Result<f64> {
        FailureModel::new(mean_pitch, cov, corner)?.p_failure(anchor_w)
    };
    let (mut lo, mut hi) = (0.3_f64, 0.85_f64);
    let p_lo = p_at(lo)?;
    let p_hi = p_at(hi)?;
    // pF increases with CoV (more variance → fatter low-count tail).
    if !(p_lo <= anchor_pf && anchor_pf <= p_hi) {
        return Err(CoreError::NoConvergence(
            "calibrate_pitch_cov: anchor outside reachable range",
        ));
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if p_at(mid)? < anchor_pf {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-4 {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::wmin::WminSolver;
    use cnt_growth::growth::ZHANG09A_PITCH_COV;

    #[test]
    fn calibrating_to_the_103nm_anchor_recovers_the_constant() {
        // Fig 2.1: pF(103 nm) = 1.1e-6 at the aggressive corner.
        let cov = calibrate_pitch_cov(
            4.0,
            ProcessCorner::aggressive().unwrap(),
            paper::WMIN_CORRELATED_NM,
            paper::PF_REQUIREMENT_CORRELATED,
        )
        .unwrap();
        assert!(
            (cov - ZHANG09A_PITCH_COV).abs() < 0.03,
            "calibrated cov {cov} vs constant {ZHANG09A_PITCH_COV}"
        );
    }

    #[test]
    fn calibrated_model_reproduces_both_wmin_anchors() {
        // The W_min pair is the paper's operative result; the calibrated
        // model must hit both ends of the 350× arrow in Fig 2.1.
        let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        let solver = WminSolver::new(model);
        let plain = solver
            .solve_for_requirement(paper::PF_REQUIREMENT_UNCORRELATED)
            .unwrap();
        let relaxed = solver
            .solve_for_requirement(paper::PF_REQUIREMENT_CORRELATED)
            .unwrap();
        assert!(
            (plain.w_min - paper::WMIN_UNCORRELATED_NM).abs() < 10.0,
            "plain W_min {:.1}",
            plain.w_min
        );
        assert!(
            (relaxed.w_min - paper::WMIN_CORRELATED_NM).abs() < 5.0,
            "relaxed W_min {:.1}",
            relaxed.w_min
        );
    }

    #[test]
    fn unreachable_anchor_is_reported() {
        let err = calibrate_pitch_cov(
            4.0,
            ProcessCorner::aggressive().unwrap(),
            155.0,
            0.5, // absurdly high pF for a 155-nm device
        );
        assert!(matches!(err, Err(CoreError::NoConvergence(_))));
    }
}
