//! Objective hooks for process–design co-optimization.
//!
//! The co-optimization engine (the `cnfet-opt` crate) searches a joint
//! processing/circuit space — correlation length, processing corner,
//! technology node, grid policy — and needs one scalar to rank candidate
//! scenarios that all *meet* the yield target. This module supplies that
//! scalar: a weighted cost functional over the quantities the paper trades
//! against each other (Sec 3.2's heuristic, made explicit):
//!
//! * the upsizing threshold `W_min` itself (smaller is better — narrow
//!   devices are the whole point of scaling),
//! * the gate-capacitance **upsizing penalty** (the area/power cost of
//!   widening everything below `W_min`, Figs 2.2b / 3.3),
//! * the **failure-budget margin** `p_req / pF(W_min)` (how much slack the
//!   solved width leaves against the device-level requirement).
//!
//! The yield target is a *constraint*, not a term: every candidate is
//! solved at the target, so the functional only ranks feasible points.
//! Weights are plain data and serialize through the pipeline's JSON layer,
//! so a co-optimization spec file fully determines the ranking.

use crate::{CoreError, Result};

/// The measured quantities of one feasible candidate scenario that the
/// cost functional consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateMetrics {
    /// The solved upsizing threshold (nm).
    pub w_min_nm: f64,
    /// The gate-capacitance upsizing penalty at that threshold.
    pub upsizing_penalty: f64,
    /// The device-level requirement the solve imposed.
    pub p_req: f64,
    /// The achieved `pF(W_min)` (≤ `p_req` for a converged solve).
    pub p_at_w_min: f64,
    /// Area multiplier charged by any redundancy scheme (1 when no
    /// redundancy is in play).
    pub area_overhead: f64,
    /// Chip-yield shortfall `max(0, target − achieved)` — positive only
    /// for candidates whose fault model made the target infeasible.
    pub yield_shortfall: f64,
}

/// Weights of the scalarized co-optimization objective.
///
/// The cost of a feasible candidate is
///
/// ```text
/// cost = w_min_weight · (W_min / w_ref_nm)
///      + area_weight  · ((1 + upsizing_penalty) · area_overhead − 1)
///      − margin_weight · log10(p_req / pF(W_min))
///      + shortfall_weight · yield_shortfall
/// ```
///
/// All terms are dimensionless. `w_ref_nm` normalizes `W_min` so the
/// default weights are comparable across nodes (the paper's 155 nm
/// uncorrelated threshold is the natural reference). A positive
/// `margin_weight` *rewards* failure-budget headroom (the margin term
/// enters negatively), which prefers candidates whose solve landed
/// comfortably below the requirement. The area term charges redundancy
/// silicon and upsizing on the same scale — with `area_overhead = 1`
/// (no redundancy) it reduces exactly to the historical
/// `area_weight · upsizing_penalty`. The shortfall term penalizes
/// candidates that missed the yield target (only the fault model can
/// produce those; fault-free solves always meet it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the normalized `W_min` term.
    pub w_min_weight: f64,
    /// Weight of the combined area term (upsizing × redundancy).
    pub area_weight: f64,
    /// Weight of the failure-budget-margin reward term.
    pub margin_weight: f64,
    /// Weight of the yield-shortfall penalty term.
    pub shortfall_weight: f64,
    /// Reference width (nm) normalizing the `W_min` term.
    pub w_ref_nm: f64,
}

impl Default for CostWeights {
    /// Equal weight on normalized `W_min` and the area term, no margin
    /// reward, a strong yield-shortfall penalty (so infeasible fault
    /// candidates rank below every feasible one by default), referenced
    /// to the paper's 155 nm threshold.
    fn default() -> Self {
        Self {
            w_min_weight: 1.0,
            area_weight: 1.0,
            margin_weight: 0.0,
            shortfall_weight: 10.0,
            w_ref_nm: crate::paper::WMIN_UNCORRELATED_NM,
        }
    }
}

impl CostWeights {
    /// Check the weights are usable: every field finite, weights
    /// non-negative, at least one weight positive, reference positive.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("w_min_weight", self.w_min_weight),
            ("area_weight", self.area_weight),
            ("margin_weight", self.margin_weight),
            ("shortfall_weight", self.shortfall_weight),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and >= 0",
                });
            }
        }
        if !(self.w_ref_nm.is_finite() && self.w_ref_nm > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "w_ref_nm",
                value: self.w_ref_nm,
                constraint: "must be finite and > 0",
            });
        }
        if self.w_min_weight == 0.0 && self.area_weight == 0.0 && self.margin_weight == 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "weights",
                value: 0.0,
                constraint: "at least one weight must be > 0",
            });
        }
        Ok(())
    }

    /// Evaluate the cost functional on one candidate's metrics.
    ///
    /// The margin term is clamped to a non-negative margin (a solve that
    /// landed exactly on the requirement scores zero headroom; it never
    /// scores negative headroom, since the solver guarantees
    /// `pF(W_min) ≤ p_req` up to bisection tolerance).
    pub fn cost(&self, m: &CandidateMetrics) -> f64 {
        let margin = if m.p_at_w_min > 0.0 && m.p_req > 0.0 {
            (m.p_req / m.p_at_w_min).max(1.0).log10()
        } else {
            0.0
        };
        // With no redundancy (overhead = 1) this is exactly the historical
        // `area_weight · upsizing_penalty` — fault-free candidates score
        // byte-identically to every prior release.
        let area = if m.area_overhead == 1.0 {
            m.upsizing_penalty
        } else {
            (1.0 + m.upsizing_penalty) * m.area_overhead - 1.0
        };
        self.w_min_weight * (m.w_min_nm / self.w_ref_nm) + self.area_weight * area
            - self.margin_weight * margin
            + self.shortfall_weight * m.yield_shortfall.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(w_min_nm: f64, penalty: f64) -> CandidateMetrics {
        CandidateMetrics {
            w_min_nm,
            upsizing_penalty: penalty,
            p_req: 1e-6,
            p_at_w_min: 1e-7,
            area_overhead: 1.0,
            yield_shortfall: 0.0,
        }
    }

    #[test]
    fn default_weights_are_valid_and_rank_smaller_wmin_lower() {
        let w = CostWeights::default();
        w.validate().unwrap();
        let narrow = w.cost(&metrics(103.0, 0.01));
        let wide = w.cost(&metrics(155.0, 0.11));
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn margin_rewards_headroom() {
        let w = CostWeights {
            margin_weight: 1.0,
            ..CostWeights::default()
        };
        let tight = CandidateMetrics {
            p_at_w_min: 9e-7,
            ..metrics(120.0, 0.05)
        };
        let roomy = CandidateMetrics {
            p_at_w_min: 1e-9,
            ..metrics(120.0, 0.05)
        };
        assert!(w.cost(&roomy) < w.cost(&tight));
        // An (out-of-contract) negative margin is clamped, not rewarded.
        let over = CandidateMetrics {
            p_at_w_min: 1e-5,
            ..metrics(120.0, 0.05)
        };
        assert_eq!(
            w.cost(&over),
            w.cost(&CandidateMetrics {
                p_at_w_min: 1e-6,
                ..metrics(120.0, 0.05)
            })
        );
    }

    #[test]
    fn redundancy_area_and_shortfall_terms() {
        let w = CostWeights::default();
        // Overhead = 1 reduces exactly to the historical area term.
        assert_eq!(
            w.cost(&metrics(155.0, 0.11)),
            w.w_min_weight * (155.0 / w.w_ref_nm) + w.area_weight * 0.11
        );
        // Redundancy silicon is charged multiplicatively with upsizing.
        let tmr = CandidateMetrics {
            area_overhead: 3.0,
            ..metrics(155.0, 0.11)
        };
        let expected_area = (1.0 + 0.11) * 3.0 - 1.0;
        assert!(
            (w.cost(&tmr) - w.cost(&metrics(155.0, 0.11)) - w.area_weight * (expected_area - 0.11))
                .abs()
                < 1e-12
        );
        // A yield shortfall is penalized; deeper shortfalls cost more.
        let missed = CandidateMetrics {
            yield_shortfall: 0.05,
            ..metrics(155.0, 0.11)
        };
        assert!(w.cost(&missed) > w.cost(&metrics(155.0, 0.11)));
        let worse = CandidateMetrics {
            yield_shortfall: 0.2,
            ..metrics(155.0, 0.11)
        };
        assert!(w.cost(&worse) > w.cost(&missed));
    }

    #[test]
    fn validation_rejects_bad_weights() {
        let base = CostWeights::default();
        for bad in [
            CostWeights {
                w_min_weight: -1.0,
                ..base
            },
            CostWeights {
                area_weight: f64::NAN,
                ..base
            },
            CostWeights {
                w_ref_nm: 0.0,
                ..base
            },
            CostWeights {
                w_min_weight: 0.0,
                area_weight: 0.0,
                margin_weight: 0.0,
                ..base
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}
