//! # cnfet-core
//!
//! CNT-count-limited yield analysis and correlation-aware optimization for
//! CNFET circuits — the primary contribution of *"Carbon Nanotube
//! Correlation: Promising Opportunity for CNFET Circuit Yield Enhancement"*
//! (Zhang et al., DAC 2010).
//!
//! The crate layers the paper's models on the workspace substrates:
//!
//! | paper | module | content |
//! |-------|--------|---------|
//! | Eq. (2.1) | [`corner`] | per-CNT failure probability `pf = pm + ps·pRs` |
//! | Eq. (2.2), Fig 2.1 | [`failure`] | device failure `pF(W) = E[pf^N(W)]` |
//! | (hot path) | [`curve`] | memoized, monotone-interpolated `pF(W)` curves |
//! | Eq. (2.3) | [`chipyield`] | chip yield over a width population |
//! | Eq. (2.4)/(2.5) | [`wmin`] | the `W_min` upsizing-threshold solver |
//! | Fig 2.2b | [`penalty`], [`scaling`] | gate-capacitance upsizing penalty vs node |
//! | Eq. (3.1)/(3.2), Table 1 | [`rowmodel`] | row-correlation model: uncorrelated / directional non-aligned / aligned-active |
//! | Sec 3.2/3.3 | [`optimizer`] | end-to-end processing/design co-optimization |
//! | Sec 3.2 (search) | [`objective`] | scalarized cost functional for the `cnfet-opt` search engine |
//! | \[Zhang 09b\] hook | [`noise`] | surviving-m-CNT statistics and the pRm requirement |
//! | (calibration) | [`calibration`] | pins the σ_S/S free parameter to the paper's own anchors |
//! | (constants) | [`paper`] | every number the paper reports, for comparison tables |
//!
//! ## Quickstart
//!
//! ```
//! use cnfet_core::corner::ProcessCorner;
//! use cnfet_core::failure::FailureModel;
//! use cnfet_core::wmin::WminSolver;
//!
//! # fn main() -> Result<(), cnfet_core::CoreError> {
//! // The paper's main processing corner: pm = 33 %, pRs = 30 %.
//! let model = FailureModel::paper_default(ProcessCorner::aggressive()?)?;
//! // W_min for a 100-M-transistor chip, 90 % yield, 33 % minimum-sized.
//! let solution = WminSolver::new(model).solve(0.90, 0.33 * 1e8)?;
//! assert!((solution.w_min - 150.0).abs() < 10.0, "≈155 nm in the paper");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod calibration;
pub mod chipyield;
pub mod corner;
pub mod curve;
pub mod failure;
pub mod noise;
pub mod objective;
pub mod optimizer;
pub mod paper;
pub mod penalty;
pub mod rowmodel;
pub mod scaling;
pub mod stochastic;
pub mod tradeoffs;
pub mod wmin;

use std::error::Error;
use std::fmt;

/// Error type for yield-analysis operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A root-finder failed to bracket or converge.
    NoConvergence(&'static str),
    /// Underlying statistics error.
    Stats(cnt_stats::StatsError),
    /// Underlying growth error.
    Growth(cnt_growth::GrowthError),
    /// Underlying simulation error.
    Sim(cnfet_sim::SimError),
    /// Underlying layout error.
    Layout(cnfet_layout::LayoutError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            CoreError::NoConvergence(what) => write!(f, "no convergence in {what}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Growth(e) => write!(f, "growth error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Stats(e) => Some(e),
            CoreError::Growth(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_stats::StatsError> for CoreError {
    fn from(e: cnt_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<cnt_growth::GrowthError> for CoreError {
    fn from(e: cnt_growth::GrowthError) -> Self {
        CoreError::Growth(e)
    }
}

impl From<cnfet_sim::SimError> for CoreError {
    fn from(e: cnfet_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<cnfet_layout::LayoutError> for CoreError {
    fn from(e: cnfet_layout::LayoutError) -> Self {
        CoreError::Layout(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

pub use corner::ProcessCorner;
pub use curve::{FailureCurve, PFailure};
pub use failure::FailureModel;
pub use objective::{CandidateMetrics, CostWeights};
pub use optimizer::{OptimizationReport, YieldOptimizer};
pub use rowmodel::RowModel;
pub use stochastic::{McFailure, McPoint};
pub use wmin::{UpsizingSolution, WminSolution, WminSolver};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain() {
        let e: CoreError = cnt_stats::StatsError::EmptyData("x").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::NoConvergence("wmin")
            .to_string()
            .contains("wmin"));
    }
}
