//! End-to-end processing/design co-optimization (Sec 3.2's heuristic,
//! steps 1–2): estimate `W_min` with and without the correlation benefit
//! for a concrete design, and price both options.

use crate::curve::FailureCurve;
use crate::failure::FailureModel;
use crate::penalty::upsizing_penalty;
use crate::rowmodel::RowModel;
use crate::wmin::solve_upsizing;
use crate::{CoreError, Result};
use cnfet_device::GateCapModel;

/// The result of optimizing one design.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationReport {
    /// Yield target the thresholds meet.
    pub yield_target: f64,
    /// Chip transistor count the distribution was scaled to.
    pub m_transistors: f64,
    /// Self-consistent minimum-sized-device count (uncorrelated case).
    pub m_min: f64,
    /// `W_min` without correlation (nm).
    pub w_min_plain: f64,
    /// Upsizing penalty without correlation.
    pub penalty_plain: f64,
    /// Relaxation factor `M_Rmin` (optionally grid-divided).
    pub relaxation: f64,
    /// `W_min` with correlation (nm).
    pub w_min_corr: f64,
    /// Upsizing penalty with correlation.
    pub penalty_corr: f64,
}

impl OptimizationReport {
    /// Penalty eliminated by the correlation-aware flow, in absolute
    /// percentage points of gate capacitance.
    pub fn penalty_saved(&self) -> f64 {
        self.penalty_plain - self.penalty_corr
    }
}

/// Optimizer inputs: a width distribution plus the row-correlation model.
#[derive(Debug, Clone)]
pub struct YieldOptimizer {
    curve: FailureCurve,
    widths: Vec<(f64, u64)>,
    m_transistors: f64,
    row: RowModel,
    cap: GateCapModel,
}

impl YieldOptimizer {
    /// Create an optimizer.
    ///
    /// `widths` is the design's `(width, count)` distribution; it is
    /// treated as a *shape* and rescaled to `m_transistors` devices (the
    /// paper measures a ~200 k-transistor core and reasons about a 1e8
    /// chip with the same distribution).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty widths or
    /// non-positive `m_transistors`.
    pub fn new(
        model: FailureModel,
        widths: Vec<(f64, u64)>,
        m_transistors: f64,
        row: RowModel,
    ) -> Result<Self> {
        if widths.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "widths",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        if !(m_transistors.is_finite() && m_transistors >= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "m_transistors",
                value: m_transistors,
                constraint: "must be finite and >= 1",
            });
        }
        Ok(Self {
            curve: FailureCurve::new(model),
            widths,
            m_transistors,
            row,
            cap: GateCapModel::proportional(),
        })
    }

    /// Replace the capacitance model (builder style).
    pub fn with_cap_model(mut self, cap: GateCapModel) -> Self {
        self.cap = cap;
        self
    }

    /// Solve the self-consistent `(W_min, M_min)` fixed point for a given
    /// requirement relaxation (both arms share the memoized curve).
    fn solve(&self, yield_target: f64, relaxation: f64) -> Result<(f64, f64)> {
        let sol = solve_upsizing(
            &self.curve,
            &self.widths,
            yield_target,
            self.m_transistors,
            relaxation,
        )?;
        Ok((sol.w_min, sol.m_min))
    }

    /// Produce the optimization report for a yield target.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn optimize(&self, yield_target: f64) -> Result<OptimizationReport> {
        let (w_min_plain, m_min) = self.solve(yield_target, 1.0)?;
        let relaxation = self.row.relaxation();
        let (w_min_corr, _) = self.solve(yield_target, relaxation)?;
        Ok(OptimizationReport {
            yield_target,
            m_transistors: self.m_transistors,
            m_min,
            w_min_plain,
            penalty_plain: upsizing_penalty(&self.cap, &self.widths, w_min_plain)?,
            relaxation,
            w_min_corr,
            penalty_corr: upsizing_penalty(&self.cap, &self.widths, w_min_corr)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::paper;

    fn optimizer() -> YieldOptimizer {
        let widths = vec![(110.0, 33u64), (185.0, 47), (370.0, 20)];
        YieldOptimizer::new(
            FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap(),
            widths,
            paper::M_TRANSISTORS,
            RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn case_study_end_to_end() {
        let report = optimizer().optimize(paper::YIELD_TARGET).unwrap();
        // W_min near the paper's 155 nm; correlated near 103 nm.
        assert!(
            (report.w_min_plain - paper::WMIN_UNCORRELATED_NM).abs() < 10.0,
            "plain {}",
            report.w_min_plain
        );
        assert!(
            (report.w_min_corr - paper::WMIN_CORRELATED_NM).abs() < 8.0,
            "corr {}",
            report.w_min_corr
        );
        // M_min self-consistently lands on the 33 % bin.
        let frac = report.m_min / report.m_transistors;
        assert!((frac - 0.33).abs() < 0.02, "m_min fraction {frac}");
        // Fig 3.3 at 45 nm: penalty nearly eliminated.
        assert!(
            report.penalty_corr < 0.02,
            "corr penalty {}",
            report.penalty_corr
        );
        assert!(report.penalty_saved() > 0.0);
    }

    #[test]
    fn validation() {
        let model = FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap();
        let row = RowModel::from_design(200.0, 1.8).unwrap();
        assert!(YieldOptimizer::new(model.clone(), vec![], 1e8, row).is_err());
        let ok = YieldOptimizer::new(model, vec![(100.0, 1)], 0.0, row);
        assert!(ok.is_err());
    }
}
