//! Stochastic `pF(W)` evaluation — the Monte-Carlo back-end as a drop-in
//! [`PFailure`] evaluator.
//!
//! [`McFailure`] wraps a [`FailureModel`]'s pitch statistics and corner
//! with an adaptive-precision target: every width query runs the
//! stratified, exponentially tilted sampler
//! (`cnt_stats::renewal::FailureSampler`) through the batched
//! [`cnfet_sim::adaptive`] driver until the confidence interval is tighter
//! than `rel_ci`, then memoizes the resulting [`McPoint`]. Queries are
//! seeded per width (`split_seed(seed, w.to_bits())`), so the evaluator is
//! a pure function of `(model, precision, seed)` — independent of query
//! order, thread interleaving, and worker count — and
//! [`FailureCurve`](crate::curve::FailureCurve),
//! the `W_min` bisection, and the penalty tables can treat it exactly like
//! an analytic back-end.

use crate::curve::PFailure;
use crate::failure::FailureModel;
use crate::Result;
use cnfet_sim::adaptive::{McOutcome, McPrecision};
use cnfet_sim::estimate_fet_failure_adaptive;
use cnt_stats::seed::split_seed;
use cnt_stats::FastMap;
use std::sync::RwLock;

/// One memoized stochastic evaluation of `pF` at a width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McPoint {
    /// Point estimate of `pF(w)`.
    pub estimate: f64,
    /// Confidence-interval lower bound.
    pub lo: f64,
    /// Confidence-interval upper bound.
    pub hi: f64,
    /// Confidence level of `[lo, hi]`.
    pub level: f64,
    /// Trials this width consumed.
    pub trials: u64,
    /// Whether the precision target was met before `max_trials`.
    pub converged: bool,
}

impl McPoint {
    fn from_outcome(outcome: &McOutcome) -> Self {
        Self {
            estimate: outcome.ci.estimate,
            lo: outcome.ci.lo,
            hi: outcome.ci.hi,
            level: outcome.ci.level,
            trials: outcome.trials,
            converged: outcome.converged,
        }
    }
}

/// Adaptive Monte-Carlo [`PFailure`] evaluator with per-width memoization.
#[derive(Debug)]
pub struct McFailure {
    model: FailureModel,
    precision: McPrecision,
    seed: u64,
    workers: usize,
    points: RwLock<FastMap<u64, McPoint>>,
}

impl McFailure {
    /// Wrap a failure model's pitch/corner with an adaptive-precision
    /// Monte-Carlo evaluation at the given base seed.
    ///
    /// # Errors
    ///
    /// Rejects invalid precision parameters.
    pub fn new(model: FailureModel, precision: McPrecision, seed: u64) -> Result<Self> {
        precision.validate().map_err(crate::CoreError::Sim)?;
        Ok(Self {
            model,
            precision,
            seed,
            workers: 1,
            points: RwLock::new(FastMap::default()),
        })
    }

    /// Set the worker-thread count used per evaluation (builder style).
    /// Results are bit-identical for every value; this is purely a
    /// wall-clock knob.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The wrapped analytic model (pitch statistics and corner).
    pub fn model(&self) -> &FailureModel {
        &self.model
    }

    /// The precision target.
    pub fn precision(&self) -> McPrecision {
        self.precision
    }

    /// The base seed (each width derives its own stream from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stochastic point at `w`: estimate, CI bounds, and trial count.
    /// Memoized — repeated queries are free and identical.
    ///
    /// # Errors
    ///
    /// Rejects non-finite / non-positive widths; propagates sampler errors.
    pub fn point(&self, w: f64) -> Result<McPoint> {
        if let Some(p) = self
            .points
            .read()
            .expect("mc cache lock poisoned")
            .get(&w.to_bits())
        {
            return Ok(*p);
        }
        let outcome = estimate_fet_failure_adaptive(
            w,
            *self.model.pitch(),
            self.model.pf(),
            &self.precision,
            self.workers,
            split_seed(self.seed, w.to_bits()),
        )
        .map_err(crate::CoreError::Sim)?;
        let point = McPoint::from_outcome(&outcome);
        self.points
            .write()
            .expect("mc cache lock poisoned")
            .insert(w.to_bits(), point);
        Ok(point)
    }

    /// Total trials consumed across all memoized widths.
    pub fn total_trials(&self) -> u64 {
        self.points
            .read()
            .expect("mc cache lock poisoned")
            .values()
            .map(|p| p.trials)
            .sum()
    }

    /// Number of distinct widths evaluated so far.
    pub fn evaluated_widths(&self) -> usize {
        self.points.read().expect("mc cache lock poisoned").len()
    }

    /// Whether every memoized point met the precision target.
    pub fn all_converged(&self) -> bool {
        self.points
            .read()
            .expect("mc cache lock poisoned")
            .values()
            .all(|p| p.converged)
    }
}

impl PFailure for McFailure {
    fn p_failure(&self, w: f64) -> Result<f64> {
        Ok(self.point(w)?.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::ProcessCorner;
    use crate::curve::FailureCurve;
    use crate::wmin::WminSolver;
    use cnt_stats::renewal::CountModel;

    fn model() -> FailureModel {
        FailureModel::paper_default(ProcessCorner::aggressive().unwrap()).unwrap()
    }

    fn precision() -> McPrecision {
        McPrecision {
            rel_ci: 0.10,
            max_trials: 200_000,
            batch: 1_000,
            level: 0.95,
        }
    }

    #[test]
    fn memoizes_and_is_query_order_independent() {
        let a = McFailure::new(model(), precision(), 7).unwrap();
        let p1 = a.point(103.0).unwrap();
        let p2 = a.point(103.0).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(a.evaluated_widths(), 1, "repeat query must be cached");
        assert_eq!(a.total_trials(), p1.trials);

        let b = McFailure::new(model(), precision(), 7)
            .unwrap()
            .with_workers(4);
        let _ = b.point(60.0).unwrap();
        let q = b.point(103.0).unwrap();
        assert_eq!(p1, q, "query order and workers must not change answers");
    }

    #[test]
    fn ci_brackets_the_convolution_value() {
        let mc = McFailure::new(model(), precision(), 3).unwrap();
        let conv = model().with_backend(CountModel::Convolution { step: 0.02 });
        for w in [60.0, 103.0, 155.0] {
            let point = mc.point(w).unwrap();
            let exact = conv.p_failure(w).unwrap();
            assert!(point.converged, "W={w} did not converge");
            assert!(
                point.lo <= exact && exact <= point.hi,
                "W={w}: conv {exact:.4e} outside [{:.4e}, {:.4e}]",
                point.lo,
                point.hi
            );
        }
    }

    #[test]
    fn wmin_bisection_runs_on_the_stochastic_backend() {
        // Eq. (2.5) on the MC evaluator, via the shared curve layer, must
        // land near the paper's 155 nm anchor.
        let mc = McFailure::new(model(), precision(), 11).unwrap();
        let curve = FailureCurve::new(mc).with_rel_tol(0.25).unwrap();
        let sol = WminSolver::new(&curve).solve(0.90, 33e6).unwrap();
        assert!(
            (sol.w_min - 155.0).abs() < 12.0,
            "stochastic W_min {} vs paper ≈155",
            sol.w_min
        );
        let analytic = WminSolver::new(model()).solve(0.90, 33e6).unwrap();
        assert!(
            (sol.w_min - analytic.w_min).abs() / analytic.w_min < 0.05,
            "stochastic {} vs analytic {}",
            sol.w_min,
            analytic.w_min
        );
        assert!(curve.model().total_trials() > 0);
    }
}
