//! Fig 3.3 — upsizing penalty vs node, with and without CNT correlation.
//!
//! This experiment is now literally a scenario grid: nodes × {no
//! correlation, growth + aligned-active layout}, streamed in parallel by
//! the yield service on one shared `pF(W)` curve.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_pipeline::{CorrelationSpec, MminSpec, RhoSpec, ScenarioReport, ScenarioSpec};
use cnfet_plot::Table;

/// The Fig 3.3 scenario grid: every scaling node, with and without the
/// correlation relaxation (paper density, self-consistent `M_min`).
fn grid(ctx: &RunContext) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &node in &paper::SCALING_NODES_NM {
        for correlation in [CorrelationSpec::None, CorrelationSpec::GrowthAlignedLayout] {
            let mut spec = ScenarioSpec::baseline(format!(
                "fig3-3/node={node:.0}/corr={}",
                correlation.name()
            ));
            spec.node_nm = node;
            spec.correlation = correlation;
            spec.m_min = MminSpec::SelfConsistent;
            spec.rho = RhoSpec::Paper;
            spec.fast_design = ctx.fast;
            specs.push(spec);
        }
    }
    specs
}

/// Run the experiment.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 3.3",
        "Upsizing penalty vs node — with vs without correlation + aligned-active",
    );

    let specs = grid(ctx);
    let results: Vec<ScenarioReport> = ctx
        .service
        .sweep(specs, ctx.seed_or(20100613))
        .map(|item| item.report)
        .collect::<cnfet_pipeline::Result<_>>()?;
    // Grid order: (plain, corr) per node.
    let pairs: Vec<(&ScenarioReport, &ScenarioReport)> =
        results.chunks(2).map(|p| (&p[0], &p[1])).collect();

    let mut csv = Table::new(
        "fig3-3 data",
        &[
            "node_nm",
            "penalty_no_corr_percent",
            "penalty_with_corr_percent",
            "w_min_no_corr_nm",
            "w_min_with_corr_nm",
            "relaxation",
        ],
    );
    println!("  node | penalty (no corr) | penalty (with corr)");
    println!("  -----+-------------------+--------------------");
    for (plain, corr) in &pairs {
        println!(
            "   {:>2.0}  |      {:>6.1} %     |      {:>6.1} %",
            plain.node_nm,
            plain.upsizing_penalty * 100.0,
            corr.upsizing_penalty * 100.0
        );
        csv.add_row(&[
            format!("{}", plain.node_nm),
            format!("{:.1}", plain.upsizing_penalty * 100.0),
            format!("{:.1}", corr.upsizing_penalty * 100.0),
            format!("{:.1}", plain.w_min_nm),
            format!("{:.1}", corr.w_min_nm),
            format!("{:.0}", corr.relaxation),
        ])
        .map_err(analysis)?;
    }
    println!();

    let mut cmp = Comparison::new("Fig 3.3 shape");
    let (_, corr45) = pairs[0];
    cmp.add(
        "45 nm penalty nearly eliminated",
        "~0 %".into(),
        format!("{:.1} %", corr45.upsizing_penalty * 100.0),
        corr45.upsizing_penalty < 0.03,
    )?;
    cmp.add(
        "W_min with correlation @45 nm",
        format!("{} nm", paper::WMIN_CORRELATED_NM),
        format!("{:.1} nm", corr45.w_min_nm),
        (corr45.w_min_nm - paper::WMIN_CORRELATED_NM).abs() < 8.0,
    )?;
    let all_reduced = pairs
        .iter()
        .all(|(plain, corr)| corr.upsizing_penalty < plain.upsizing_penalty);
    cmp.add(
        "correlation reduces penalty at every node",
        "yes".into(),
        format!("{all_reduced}"),
        all_reduced,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "fig3-3", &csv)?;
    write_csv(ctx, "fig3-3-comparison", &cmp_table)?;
    Ok(())
}
