//! Fig 3.3 — upsizing penalty vs node, with and without CNT correlation.

use crate::common::{analysis, banner, design_stats, write_csv, Comparison, Result};
use cnfet_celllib::nangate45::nangate45_like;
use cnfet_core::corner::ProcessCorner;
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_core::scaling::ScalingStudy;
use cnfet_plot::Table;

/// Run the experiment.
pub fn run(fast: bool) -> Result<()> {
    banner(
        "FIG 3.3",
        "Upsizing penalty vs node — with vs without correlation + aligned-active",
    );

    let lib = nangate45_like();
    let stats = design_stats(&lib, fast)?;
    let model = FailureModel::paper_default(ProcessCorner::aggressive().map_err(analysis)?)
        .map_err(analysis)?;
    let study = ScalingStudy::new(
        model,
        45.0,
        stats.width_pairs.clone(),
        paper::YIELD_TARGET,
        paper::M_TRANSISTORS,
        RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).map_err(analysis)?,
    )
    .map_err(analysis)?;
    let results = study.run(&paper::SCALING_NODES_NM).map_err(analysis)?;

    let mut csv = Table::new(
        "fig3-3 data",
        &[
            "node_nm",
            "penalty_no_corr_percent",
            "penalty_with_corr_percent",
            "w_min_no_corr_nm",
            "w_min_with_corr_nm",
            "relaxation",
        ],
    );
    println!("  node | penalty (no corr) | penalty (with corr)");
    println!("  -----+-------------------+--------------------");
    for r in &results {
        println!(
            "   {:>2.0}  |      {:>6.1} %     |      {:>6.1} %",
            r.node,
            r.penalty_plain * 100.0,
            r.penalty_corr * 100.0
        );
        csv.add_row(&[
            format!("{}", r.node),
            format!("{:.1}", r.penalty_plain * 100.0),
            format!("{:.1}", r.penalty_corr * 100.0),
            format!("{:.1}", r.w_min_plain),
            format!("{:.1}", r.w_min_corr),
            format!("{:.0}", r.relaxation),
        ])
        .expect("6 cols");
    }
    println!();

    let mut cmp = Comparison::new("Fig 3.3 shape");
    let r45 = &results[0];
    cmp.add(
        "45 nm penalty nearly eliminated",
        "~0 %".into(),
        format!("{:.1} %", r45.penalty_corr * 100.0),
        r45.penalty_corr < 0.03,
    );
    cmp.add(
        "W_min with correlation @45 nm",
        format!("{} nm", paper::WMIN_CORRELATED_NM),
        format!("{:.1} nm", r45.w_min_corr),
        (r45.w_min_corr - paper::WMIN_CORRELATED_NM).abs() < 8.0,
    );
    let all_reduced = results.iter().all(|r| r.penalty_corr < r.penalty_plain);
    cmp.add(
        "correlation reduces penalty at every node",
        "yes".into(),
        format!("{all_reduced}"),
        all_reduced,
    );
    let cmp_table = cmp.finish();

    write_csv("fig3-3", &csv)?;
    write_csv("fig3-3-comparison", &cmp_table)?;
    Ok(())
}
