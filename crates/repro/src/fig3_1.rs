//! Fig 3.1 — growth/layout scenarios: (a) uncorrelated growth,
//! (b) directional growth + non-aligned layout, (c) directional growth +
//! aligned-active layout. The paper shows micrographs; we render the
//! simulated populations and *quantify* the correlation each scenario
//! delivers.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_plot::Table;
use cnt_growth::correlation::pair_correlation;
use cnt_growth::{
    DirectionalGrowth, Growth, GrowthParams, LengthModel, Rect, UncorrelatedGrowth, Vmr,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Render a population as ASCII (x right, y up), cropping to `region`.
fn render(pop: &cnt_growth::CntPopulation, region: Rect, cols: usize, rows: usize) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    for cnt in pop.cnts() {
        if let Some(c) = cnt.clipped_to(&region) {
            // Rasterize the segment.
            let steps = cols * 2;
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                let x = c.p0.x + t * (c.p1.x - c.p0.x);
                let y = c.p0.y + t * (c.p1.y - c.p0.y);
                let col = (((x - region.x0()) / region.width()) * (cols - 1) as f64) as usize;
                let row =
                    rows - 1 - (((y - region.y0()) / region.height()) * (rows - 1) as f64) as usize;
                let glyph = match (cnt.ty, cnt.removed) {
                    (cnt_growth::CntType::Metallic, false) => 'M',
                    (_, true) => '.',
                    (cnt_growth::CntType::Semiconducting, false) => '-',
                };
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Run the experiment. `--fast` lowers trial counts.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 3.1",
        "CNT growth and layout scenarios: render + measured correlation",
    );
    let trials = if ctx.fast { 150 } else { 600 };
    let vmr = Vmr::paper_aggressive();

    // Two 103-nm-wide FETs, 1 µm apart along the growth direction.
    let fet_a = Rect::new(0.0, 200.0, 32.0, 103.0).map_err(analysis)?;
    let fet_b_aligned = Rect::new(1000.0, 200.0, 32.0, 103.0).map_err(analysis)?;
    let fet_b_misaligned = Rect::new(1000.0, 380.0, 32.0, 103.0).map_err(analysis)?;

    let view = Rect::new(-50.0, 150.0, 1200.0, 400.0).map_err(analysis)?;
    let mut rng = StdRng::seed_from_u64(ctx.seed_or(31));

    // (a) uncorrelated growth.
    let params_u =
        GrowthParams::new(16.0, 0.8, 0.33, LengthModel::Fixed(600.0)).map_err(analysis)?;
    let uncorr = UncorrelatedGrowth::density_matched(params_u).map_err(analysis)?;
    println!("\n  (a) non-aligned layout on uncorrelated CNT growth");
    let pop = uncorr.grow(view, &mut rng);
    println!("{}", render(&pop, view, 64, 10));
    let pc_a = pair_correlation(&uncorr, &vmr, fet_a, fet_b_aligned, trials, &mut rng)
        .map_err(analysis)?;

    // (b) directional growth, FETs not aligned.
    let params_d =
        GrowthParams::new(16.0, 0.8, 0.33, LengthModel::Fixed(200_000.0)).map_err(analysis)?;
    let directional = DirectionalGrowth::new(params_d.clone());
    println!("  (b) non-aligned layout on directional CNT growth");
    let pop = directional.grow(view, &mut rng);
    println!("{}", render(&pop, view, 64, 10));
    let pc_b = pair_correlation(
        &directional,
        &vmr,
        fet_a,
        fet_b_misaligned,
        trials,
        &mut rng,
    )
    .map_err(analysis)?;

    // (c) directional growth, aligned-active layout.
    println!("  (c) aligned-active layout on directional CNT growth");
    let pop = directional.grow(view, &mut rng);
    println!("{}", render(&pop, view, 64, 10));
    let pc_c = pair_correlation(&directional, &vmr, fet_a, fet_b_aligned, trials, &mut rng)
        .map_err(analysis)?;

    let mut csv = Table::new(
        "fig3-1 measured pair statistics",
        &[
            "scenario",
            "count_correlation",
            "mean_count_a",
            "mean_count_b",
        ],
    );
    for (name, pc) in [
        ("uncorrelated growth", &pc_a),
        ("directional, non-aligned", &pc_b),
        ("directional, aligned", &pc_c),
    ] {
        csv.add_row(&[
            name.to_string(),
            format!("{:.3}", pc.count_correlation),
            format!("{:.2}", pc.mean_count_a),
            format!("{:.2}", pc.mean_count_b),
        ])
        .map_err(analysis)?;
    }
    println!("{}", csv.to_markdown());

    let mut cmp = Comparison::new("Fig 3.1 correlation structure");
    cmp.add(
        "(a) uncorrelated: pair correlation",
        "~0".into(),
        format!("{:.3}", pc_a.count_correlation),
        pc_a.count_correlation.abs() < 0.25,
    )?;
    cmp.add(
        "(b) directional non-aligned: pair correlation",
        "~0 (no shared tracks)".into(),
        format!("{:.3}", pc_b.count_correlation),
        pc_b.count_correlation.abs() < 0.25,
    )?;
    cmp.add(
        "(c) directional aligned: pair correlation",
        "~1 (perfect within L_CNT)".into(),
        format!("{:.3}", pc_c.count_correlation),
        pc_c.count_correlation > 0.9,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "fig3-1", &csv)?;
    write_csv(ctx, "fig3-1-comparison", &cmp_table)?;
    Ok(())
}
