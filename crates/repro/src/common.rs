//! Shared plumbing for the reproduction harness.

use cnfet_plot::Table;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// Error type of the harness.
#[derive(Debug)]
pub enum ReproError {
    /// Unknown experiment name on the command line.
    UnknownExperiment(String),
    /// Any error bubbling up from the analysis crates.
    Analysis(String),
    /// Filesystem error while writing results.
    Io(std::io::Error),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::UnknownExperiment(name) => write!(f, "unknown experiment `{name}`"),
            ReproError::Analysis(msg) => write!(f, "analysis failed: {msg}"),
            ReproError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReproError {}

impl From<std::io::Error> for ReproError {
    fn from(e: std::io::Error) -> Self {
        ReproError::Io(e)
    }
}

/// Convert any analysis-crate error into a harness error.
pub fn analysis<E: std::error::Error>(e: E) -> ReproError {
    ReproError::Analysis(e.to_string())
}

/// Result alias for the harness.
pub type Result<T> = std::result::Result<T, ReproError>;

/// Print a section banner.
pub fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("  {id}  —  {title}");
    println!("{}", "=".repeat(72));
}

/// Write a table's CSV under `results/<name>.csv` (directory created on
/// demand) and announce the path.
pub fn write_csv(name: &str, table: &Table) -> Result<()> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    println!("  [csv] {}", path.display());
    Ok(())
}

/// A paper-vs-measured comparison row.
pub struct Comparison {
    table: Table,
}

impl Comparison {
    /// Start a comparison table.
    pub fn new(title: &str) -> Self {
        Self {
            table: Table::new(title, &["quantity", "paper", "measured", "match"]),
        }
    }

    /// Add one quantity; `close` is the reproduction criterion used.
    pub fn add(&mut self, quantity: &str, paper: String, measured: String, close: bool) {
        self.table
            .add_row(&[
                quantity.to_string(),
                paper,
                measured,
                if close { "yes".into() } else { "off".into() },
            ])
            .expect("4 columns");
    }

    /// Print the table and return it for CSV emission.
    pub fn finish(self) -> Table {
        println!("{}", self.table.to_markdown());
        self.table
    }
}

/// Relative closeness check for comparisons: within a multiplicative
/// factor.
pub fn within_factor(measured: f64, paper: f64, factor: f64) -> bool {
    if paper == 0.0 {
        return measured.abs() < 1e-12;
    }
    let r = measured / paper;
    r >= 1.0 / factor && r <= factor
}

/// The case-study design mapped onto a library: its `(width, count)`
/// distribution plus the measured critical-FET row density (per µm).
pub struct DesignStats {
    /// Distinct transistor widths with instance counts.
    pub width_pairs: Vec<(f64, u64)>,
    /// Measured `P_min-CNFET` density (critical FETs per µm of row).
    pub rho_per_um: f64,
    /// Total transistor count of the generated design.
    pub transistors: usize,
}

/// Generate the OpenRISC-class design, map it onto a library, place it and
/// extract the statistics the yield analysis needs.
pub fn design_stats(lib: &cnfet_celllib::CellLibrary, fast: bool) -> Result<DesignStats> {
    use cnfet_layout::{place_cells, PlacementOptions};
    use cnfet_netlist::mapping::MappedDesign;
    use cnfet_netlist::synth::{openrisc_class, DesignSpec};

    let spec = if fast {
        DesignSpec::small()
    } else {
        DesignSpec::openrisc()
    };
    let netlist = openrisc_class(&spec, 42);
    let mapped = MappedDesign::map(&netlist, lib).map_err(analysis)?;

    // Collapse widths to (width, count) pairs (0.1-nm quantization).
    let mut counts: std::collections::BTreeMap<i64, u64> = std::collections::BTreeMap::new();
    for w in mapped.transistor_widths() {
        *counts.entry((w * 10.0).round() as i64).or_insert(0) += 1;
    }
    let width_pairs: Vec<(f64, u64)> = counts
        .into_iter()
        .map(|(k, n)| (k as f64 / 10.0, n))
        .collect();

    // Place and measure the critical-FET density. The criticality
    // threshold is the uncorrelated W_min regime (anything below ~155 nm at
    // 45 nm), scaled with the library's node so the same device classes
    // count as critical in the 65 nm library.
    let placed = place_cells(mapped.cells(), PlacementOptions::default()).map_err(analysis)?;
    let w_critical = cnfet_core::paper::WMIN_UNCORRELATED_NM * lib.tech().node_nm / 45.0;
    let rho_per_um = placed
        .min_fet_density_per_um(w_critical)
        .map_err(analysis)?;

    Ok(DesignStats {
        width_pairs,
        rho_per_um,
        transistors: mapped.transistor_count(),
    })
}
