//! Shared plumbing for the reproduction harness.

use cnfet_pipeline::{Pipeline, YieldService};
use cnfet_plot::Table;
use std::error::Error;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// Error type of the harness.
#[derive(Debug)]
pub enum ReproError {
    /// Unknown experiment name on the command line.
    UnknownExperiment(String),
    /// Malformed command line (bad flag value, missing argument).
    Usage(String),
    /// Any error bubbling up from the analysis crates, with its source
    /// chain intact.
    Analysis(Box<dyn Error + Send + Sync>),
    /// Filesystem error while writing results.
    Io(std::io::Error),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::UnknownExperiment(name) => write!(f, "unknown experiment `{name}`"),
            ReproError::Usage(msg) => write!(f, "invalid usage: {msg}"),
            ReproError::Analysis(e) => {
                write!(f, "analysis failed: {e}")?;
                // Surface the cause chain, deepest last.
                let mut source = e.source();
                while let Some(cause) = source {
                    write!(f, "\n  caused by: {cause}")?;
                    source = cause.source();
                }
                Ok(())
            }
            ReproError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for ReproError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReproError::Analysis(e) => Some(e.as_ref()),
            ReproError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReproError {
    fn from(e: std::io::Error) -> Self {
        ReproError::Io(e)
    }
}

impl From<cnfet_pipeline::PipelineError> for ReproError {
    fn from(e: cnfet_pipeline::PipelineError) -> Self {
        ReproError::Analysis(Box::new(e))
    }
}

/// Convert any analysis-crate error into a harness error, keeping the
/// original error object (and therefore its `source()` chain) alive.
pub fn analysis<E: Error + Send + Sync + 'static>(e: E) -> ReproError {
    ReproError::Analysis(Box::new(e))
}

/// Result alias for the harness.
pub type Result<T> = std::result::Result<T, ReproError>;

/// Per-invocation context every experiment receives: CLI options plus the
/// shared yield service (so `all` reuses curves, mapped designs, and
/// aligned libraries across experiments through one set of bounded
/// caches).
pub struct RunContext {
    /// Reduced trial counts / design sizes.
    pub fast: bool,
    /// Where CSV and JSON artifacts go (CLI `--out-dir`, default
    /// `results/`).
    pub out_dir: PathBuf,
    /// CLI `--seed`, if given.
    seed: Option<u64>,
    /// The shared scenario service (bounded caches, streaming sweeps).
    pub service: YieldService,
}

impl RunContext {
    /// Build a context with default output directory and seeds.
    pub fn new(fast: bool) -> Self {
        Self {
            fast,
            out_dir: PathBuf::from("results"),
            seed: None,
            service: YieldService::new(),
        }
    }

    /// The engine behind the service, for experiments that need the
    /// substrate getters (curves, libraries, design statistics).
    pub fn pipeline(&self) -> &Pipeline {
        self.service.pipeline()
    }

    /// Override the output directory (builder style).
    pub fn with_out_dir(mut self, out_dir: PathBuf) -> Self {
        self.out_dir = out_dir;
        self
    }

    /// Override the base seed (builder style).
    pub fn with_seed(mut self, seed: Option<u64>) -> Self {
        self.seed = seed;
        self
    }

    /// The seed for an experiment: the CLI `--seed` when given, otherwise
    /// the experiment's historical default (so published numbers stay
    /// bit-identical without flags).
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }
}

/// Print a section banner.
pub fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("  {id}  —  {title}");
    println!("{}", "=".repeat(72));
}

/// Write a table's CSV under `<out-dir>/<name>.csv` (directory created on
/// demand) and announce the path.
pub fn write_csv(ctx: &RunContext, name: &str, table: &Table) -> Result<()> {
    std::fs::create_dir_all(&ctx.out_dir)?;
    let path = ctx.out_dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    println!("  [csv] {}", path.display());
    Ok(())
}

/// A paper-vs-measured comparison row.
pub struct Comparison {
    table: Table,
}

impl Comparison {
    /// Start a comparison table.
    pub fn new(title: &str) -> Self {
        Self {
            table: Table::new(title, &["quantity", "paper", "measured", "match"]),
        }
    }

    /// Add one quantity; `close` is the reproduction criterion used.
    ///
    /// # Errors
    ///
    /// Propagates the (structurally impossible for this fixed 4-column
    /// shape, but no longer panicking) table row-width error.
    pub fn add(
        &mut self,
        quantity: &str,
        paper: String,
        measured: String,
        close: bool,
    ) -> Result<()> {
        self.table
            .add_row(&[
                quantity.to_string(),
                paper,
                measured,
                if close { "yes".into() } else { "off".into() },
            ])
            .map_err(analysis)
    }

    /// Print the table and return it for CSV emission.
    pub fn finish(self) -> Table {
        println!("{}", self.table.to_markdown());
        self.table
    }
}

/// Relative closeness check for comparisons: within a multiplicative
/// factor.
pub fn within_factor(measured: f64, paper: f64, factor: f64) -> bool {
    if paper == 0.0 {
        return measured.abs() < 1e-12;
    }
    let r = measured / paper;
    r >= 1.0 / factor && r <= factor
}
