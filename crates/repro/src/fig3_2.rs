//! Fig 3.2 — the AOI222_X1 cell before and after enforcing the
//! aligned-active layout style.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_celllib::cell::{ActiveStrip, TechParams};
use cnfet_core::paper;
use cnfet_layout::{align_cell, AlignmentOptions};
use cnfet_pipeline::LibrarySpec;
use cnfet_plot::Table;

/// Sketch strips inside the cell outline.
fn sketch(width: f64, height: f64, strips: &[&ActiveStrip]) -> String {
    let cols = 56usize;
    let rows = 14usize;
    let mut grid = vec![vec![' '; cols]; rows];
    for s in strips {
        let glyph = match s.fet_type {
            cnfet_device::FetType::NType => 'n',
            cnfet_device::FetType::PType => 'p',
        };
        let c0 = ((s.rect.x0() / width) * (cols - 1) as f64) as usize;
        let c1 = ((s.rect.x1() / width) * (cols - 1) as f64) as usize;
        let r0 = rows - 1 - ((s.rect.y1() / height) * (rows - 1) as f64) as usize;
        let r1 = rows - 1 - ((s.rect.y0() / height) * (rows - 1) as f64) as usize;
        for row in grid.iter_mut().take(r1.min(rows - 1) + 1).skip(r0) {
            for cell in row.iter_mut().take(c1.min(cols - 1) + 1).skip(c0) {
                *cell = glyph;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("  +{}+\n", "-".repeat(cols)));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "  +{}+  width = {:.0} nm\n",
        "-".repeat(cols),
        width
    ));
    out
}

/// Run the experiment.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 3.2",
        "AOI222_X1 before/after the aligned-active restriction",
    );

    let lib = ctx.pipeline().library(LibrarySpec::Nangate45);
    let cell = lib.require("AOI222_X1").map_err(analysis)?;
    let tech = TechParams::nangate45();
    let aligned = align_cell(cell, &tech, &AlignmentOptions::default()).map_err(analysis)?;

    println!("  (a) original layout (strips at library-native positions)");
    let before: Vec<&ActiveStrip> = cell.strips().iter().collect();
    println!("{}", sketch(cell.width(), cell.height(), &before));

    println!("  (b) aligned-active layout (strips on the global grid)");
    let after: Vec<&ActiveStrip> = aligned.new_strips.iter().collect();
    println!("{}", sketch(aligned.new_width, cell.height(), &after));

    let mut cmp = Comparison::new("Fig 3.2 cell impact");
    cmp.add(
        "AOI222_X1 width increase",
        format!("~{:.0} %", paper::AOI222_X1_PENALTY * 100.0),
        format!("{:.1} %", aligned.penalty() * 100.0),
        (aligned.penalty() - paper::AOI222_X1_PENALTY).abs() < 0.05,
    )?;
    cmp.add(
        "n-strips share one y after transform",
        "yes".into(),
        {
            let ys: Vec<f64> = aligned
                .new_strips
                .iter()
                .filter(|s| s.fet_type == cnfet_device::FetType::NType)
                .map(|s| s.rect.y0())
                .collect();
            format!("{}", ys.windows(2).all(|p| (p[0] - p[1]).abs() < 1e-9))
        },
        true,
    )?;
    let cmp_table = cmp.finish();

    let mut csv = Table::new("fig3-2 data", &["quantity", "before", "after"]);
    csv.add_row(&[
        "cell width (nm)".into(),
        format!("{:.0}", aligned.old_width),
        format!("{:.0}", aligned.new_width),
    ])
    .map_err(analysis)?;
    csv.add_row(&[
        "moved strips".into(),
        "0".into(),
        format!("{}", aligned.moved_strips),
    ])
    .map_err(analysis)?;
    write_csv(ctx, "fig3-2", &csv)?;
    write_csv(ctx, "fig3-2-comparison", &cmp_table)?;
    Ok(())
}
