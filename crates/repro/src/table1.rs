//! Table 1 — row failure probability `p_RF` under the three growth/layout
//! scenarios, anchored at the paper's aligned operating point.

use crate::common::{analysis, banner, within_factor, write_csv, Comparison, Result};
use cnfet_core::corner::ProcessCorner;
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::rowmodel::{evaluate_table1, RowModel, UnalignedRowStudy};
use cnfet_plot::Table;

/// Run the experiment. `fast` lowers the conditional-MC trial count.
pub fn run(fast: bool) -> Result<()> {
    banner(
        "TABLE 1",
        "Benefits from directional CNT growth and aligned-active layout",
    );

    let model = FailureModel::paper_default(ProcessCorner::aggressive().map_err(analysis)?)
        .map_err(analysis)?;
    let row =
        RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).map_err(analysis)?;

    // The paper's Table 1 is evaluated at the design point where the
    // aligned p_RF equals 1.5e-8 — find the matching device width.
    let w_eval = model
        .width_for_failure(paper::TABLE1_DIRECTIONAL_ALIGNED, 50.0, 300.0)
        .map_err(analysis)?;
    println!(
        "  evaluation width: {:.1} nm (so that aligned p_RF = pF = {:.1e})",
        w_eval,
        paper::TABLE1_DIRECTIONAL_ALIGNED
    );

    let study = UnalignedRowStudy {
        band_height: 560.0, // polarity-band height of the 45-nm cell geometry
        width: w_eval,
        offset_step: 45.0, // legal-placement grid of the library
        devices: paper::M_R_MIN as usize,
    };
    let trials = if fast { 400 } else { 4000 };
    let t1 = evaluate_table1(&model, &row, &study, trials, 20100613).map_err(analysis)?;

    let mut out = Table::new(
        "Table 1 — p_RF per scenario",
        &["scenario", "paper p_RF", "measured p_RF"],
    );
    out.add_row(&[
        "uncorrelated CNT growth".into(),
        format!("{:.1e}", paper::TABLE1_UNCORRELATED),
        format!("{:.2e}", t1.uncorrelated),
    ])
    .expect("3 cols");
    out.add_row(&[
        "directional growth, no aligned-active".into(),
        format!("{:.1e}", paper::TABLE1_DIRECTIONAL_UNALIGNED),
        format!("{:.2e}", t1.directional_unaligned),
    ])
    .expect("3 cols");
    out.add_row(&[
        "directional growth, aligned-active".into(),
        format!("{:.1e}", paper::TABLE1_DIRECTIONAL_ALIGNED),
        format!("{:.2e}", t1.directional_aligned),
    ])
    .expect("3 cols");
    println!("{}", out.to_markdown());

    let mut cmp = Comparison::new("Table 1 reduction factors");
    cmp.add(
        "growth factor (uncorr / unaligned)",
        format!("{:.1}x", paper::GROWTH_FACTOR),
        format!("{:.1}x", t1.growth_factor()),
        within_factor(t1.growth_factor(), paper::GROWTH_FACTOR, 3.0),
    );
    cmp.add(
        "alignment factor (unaligned / aligned)",
        format!("{:.1}x", paper::ALIGNMENT_FACTOR),
        format!("{:.1}x", t1.alignment_factor()),
        within_factor(t1.alignment_factor(), paper::ALIGNMENT_FACTOR, 3.0),
    );
    cmp.add(
        "total factor",
        format!("{:.0}x", paper::RELAXATION_FACTOR),
        format!("{:.0}x", t1.total_factor()),
        within_factor(t1.total_factor(), paper::RELAXATION_FACTOR, 1.5),
    );
    let cmp_table = cmp.finish();

    write_csv("table1", &out)?;
    write_csv("table1-comparison", &cmp_table)?;
    Ok(())
}
