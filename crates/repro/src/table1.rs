//! Table 1 — row failure probability `p_RF` under the three growth/layout
//! scenarios, anchored at the paper's aligned operating point.

use crate::common::{analysis, banner, within_factor, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_plot::Table;

/// Run the experiment. `--fast` lowers the conditional-MC trial count.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "TABLE 1",
        "Benefits from directional CNT growth and aligned-active layout",
    );

    let trials = if ctx.fast { 400 } else { 4000 };
    let anchor = ctx
        .pipeline()
        .table1_anchor(trials, ctx.seed_or(20100613))?;
    println!(
        "  evaluation width: {:.1} nm (so that aligned p_RF = pF = {:.1e})",
        anchor.w_eval,
        paper::TABLE1_DIRECTIONAL_ALIGNED
    );
    let t1 = &anchor.table1;

    let mut out = Table::new(
        "Table 1 — p_RF per scenario",
        &["scenario", "paper p_RF", "measured p_RF"],
    );
    out.add_row(&[
        "uncorrelated CNT growth".into(),
        format!("{:.1e}", paper::TABLE1_UNCORRELATED),
        format!("{:.2e}", t1.uncorrelated),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "directional growth, no aligned-active".into(),
        format!("{:.1e}", paper::TABLE1_DIRECTIONAL_UNALIGNED),
        format!("{:.2e}", t1.directional_unaligned),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "directional growth, aligned-active".into(),
        format!("{:.1e}", paper::TABLE1_DIRECTIONAL_ALIGNED),
        format!("{:.2e}", t1.directional_aligned),
    ])
    .map_err(analysis)?;
    println!("{}", out.to_markdown());

    let mut cmp = Comparison::new("Table 1 reduction factors");
    cmp.add(
        "growth factor (uncorr / unaligned)",
        format!("{:.1}x", paper::GROWTH_FACTOR),
        format!("{:.1}x", t1.growth_factor()),
        within_factor(t1.growth_factor(), paper::GROWTH_FACTOR, 3.0),
    )?;
    cmp.add(
        "alignment factor (unaligned / aligned)",
        format!("{:.1}x", paper::ALIGNMENT_FACTOR),
        format!("{:.1}x", t1.alignment_factor()),
        within_factor(t1.alignment_factor(), paper::ALIGNMENT_FACTOR, 3.0),
    )?;
    cmp.add(
        "total factor",
        format!("{:.0}x", paper::RELAXATION_FACTOR),
        format!("{:.0}x", t1.total_factor()),
        within_factor(t1.total_factor(), paper::RELAXATION_FACTOR, 1.5),
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "table1", &out)?;
    write_csv(ctx, "table1-comparison", &cmp_table)?;
    Ok(())
}
