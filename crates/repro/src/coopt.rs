//! `coopt <spec.json>` — run a process–design co-optimization study and
//! emit the Pareto-front artifact.
//!
//! The spec file is a declarative [`CoOptSpec`] document (see the README's
//! "Co-optimization" section); the run fans candidate scenarios through
//! the shared yield service, so `--workers` only changes wall-clock —
//! the emitted `<name>.coopt.json` artifact is byte-identical for any
//! worker count.

use crate::common::{banner, write_csv, Result, RunContext};
use cnfet_opt::run_co_opt;
use cnfet_pipeline::{report, CoOptSpec};
use cnfet_plot::Table;

/// Run a co-optimization spec file through the engine.
pub fn run(ctx: &RunContext, spec_file: &str, workers: Option<usize>) -> Result<()> {
    banner("COOPT", &format!("co-optimization spec `{spec_file}`"));

    let src = std::fs::read_to_string(spec_file)?;
    let mut spec = CoOptSpec::parse(&src)?;
    if ctx.fast {
        spec.base.fast_design = true;
    }
    let workers = workers.unwrap_or(ctx.service.config().sweep_workers);
    let seed = ctx.seed_or(20100613);
    println!(
        "  `{}`: {} axes, {} candidates, searcher `{}`, {} workers (seed {seed})",
        spec.name,
        spec.axes.len(),
        spec.candidate_count(),
        spec.searcher.composed_name(),
        workers,
    );

    let report = run_co_opt(&ctx.service, &spec, seed, workers)?;

    let mut table = Table::new(
        "pareto front (demand ascending)",
        &[
            "candidate",
            "demand",
            "cost",
            "W_min_nm",
            "penalty_percent",
            "relaxation",
        ],
    );
    for point in report.front.points() {
        table
            .add_row(&[
                point.scenario.clone(),
                format!("{:.3}", point.demand),
                format!("{:.4}", point.cost),
                format!("{:.1}", point.w_min_nm),
                format!("{:.1}", point.upsizing_penalty * 100.0),
                format!("{:.0}x", point.relaxation),
            ])
            .map_err(crate::common::analysis)?;
    }
    println!("{}", table.to_markdown());
    println!(
        "  best: `{}` (cost {:.4}, W_min {:.1} nm); {} of {} candidates evaluated",
        report.best.scenario,
        report.best.cost,
        report.best.w_min_nm,
        report.evaluations,
        report.candidates,
    );
    if let Some(search) = &report.search {
        println!(
            "  search: {} generations, {} coarse + {} full-precision evaluations",
            search.generations, search.coarse_evaluations, search.final_evaluations,
        );
        for (i, rung) in search.rungs.iter().enumerate() {
            println!(
                "    rung {i}: rel_ci x{:.0}, {} evaluations, {} promoted",
                rung.relax, rung.evaluations, rung.promoted,
            );
        }
    }
    write_csv(ctx, &format!("{}-pareto", spec.name), &table)?;

    let path = report::write_coopt_report(&ctx.out_dir, &report)?;
    println!("  [json] {}", path.display());
    Ok(())
}
