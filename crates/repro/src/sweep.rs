//! `sweep <grid-file>` — evaluate a declarative scenario grid through the
//! yield service, streaming results as they land, and emit structured
//! artifacts.

use crate::common::{banner, write_csv, ReproError, Result, RunContext};
use cnfet_pipeline::{report, Json, ScenarioBuilder, ScenarioGrid, ScenarioReport};
use cnfet_plot::Table;

/// Parse a `--backend` override: a bare back-end name or a JSON object
/// (e.g. `{"monte-carlo": {"rel_ci": 0.05}}`).
fn backend_override(raw: &str) -> Result<Json> {
    let trimmed = raw.trim();
    if trimmed.starts_with('{') {
        Ok(Json::parse(trimmed)?)
    } else {
        Ok(Json::Str(trimmed.to_string()))
    }
}

/// Run a scenario-grid file through the service.
pub fn run(
    ctx: &RunContext,
    grid_file: &str,
    workers: Option<usize>,
    backend: Option<&str>,
) -> Result<()> {
    banner("SWEEP", &format!("scenario grid `{grid_file}`"));

    let src = std::fs::read_to_string(grid_file)?;
    let grid = ScenarioGrid::parse(&src)?;
    let workers = workers.unwrap_or(ctx.service.config().sweep_workers);
    println!(
        "  {} scenarios across {} workers (base seed {})",
        grid.scenarios.len(),
        workers,
        ctx.seed_or(20100613),
    );

    // The run is still fully declarative: --fast only tightens the design
    // size and --backend only swaps the count back-end, unless the grid
    // file pinned them itself. Both go through the one shared
    // builder/validation path.
    let mut specs = grid.scenarios;
    if ctx.fast {
        for spec in &mut specs {
            spec.fast_design = true;
        }
    }
    if let Some(raw) = backend {
        let json = backend_override(raw)?;
        for spec in specs.iter_mut() {
            *spec = ScenarioBuilder::from_spec(spec.clone())
                .set_json("backend", &json)?
                .build()?;
        }
        println!("  backend override: {}", specs[0].backend.name());
    }

    let mut table = Table::new(
        "sweep results",
        &[
            "scenario",
            "node_nm",
            "corner",
            "correlation",
            "backend",
            "relaxation",
            "W_min_nm",
            "penalty_percent",
            "mc_trials",
            "mc_ci",
        ],
    );
    let mut reports: Vec<ScenarioReport> = Vec::new();
    let mut failures: Vec<(String, cnfet_pipeline::PipelineError)> = Vec::new();
    // Stream: reports arrive in index order while later scenarios are
    // still being evaluated by the service's worker pool.
    let handle = ctx
        .service
        .sweep_with_workers(specs.clone(), ctx.seed_or(20100613), workers);
    for item in handle {
        match item.report {
            Ok(r) => {
                let (mc_trials, mc_ci) = match &r.mc {
                    Some(mc) => (
                        format!("{}", mc.trials),
                        format!("[{:.2e}, {:.2e}]", mc.ci_lo, mc.ci_hi),
                    ),
                    None => ("-".into(), "-".into()),
                };
                table
                    .add_row(&[
                        r.name.clone(),
                        format!("{:.0}", r.node_nm),
                        r.corner.clone(),
                        r.correlation.clone(),
                        r.backend.clone(),
                        format!("{:.0}x", r.relaxation),
                        format!("{:.1}", r.w_min_nm),
                        format!("{:.1}", r.upsizing_penalty * 100.0),
                        mc_trials,
                        mc_ci,
                    ])
                    .map_err(crate::common::analysis)?;
                reports.push(r);
            }
            Err(e) => failures.push((specs[item.index].name.clone(), e)),
        }
    }
    println!("{}", table.to_markdown());
    write_csv(ctx, "sweep-summary", &table)?;

    let written = report::write_reports(&ctx.out_dir, &reports)?;
    println!(
        "  [json] {} scenario artifacts under {}",
        written.len(),
        ctx.out_dir.display()
    );

    for (name, e) in &failures {
        eprintln!("  scenario `{name}` failed: {e}");
    }
    match failures.into_iter().next() {
        Some((_, e)) => Err(ReproError::Analysis(Box::new(e))),
        None => Ok(()),
    }
}
