//! Fig 2.1 — CNFET failure probability vs width for three processing
//! corners, with the paper's `W_min` anchors and the 350× arrow.

use crate::common::{analysis, banner, within_factor, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_core::wmin::WminSolver;
use cnfet_pipeline::{BackendSpec, CornerSpec};
use cnfet_plot::{LinePlot, Table};

/// Run the experiment. `--fast` uses the CLT back-end for the dense sweep.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 2.1",
        "CNFET failure probability vs CNFET width (pRm = 1)",
    );

    let corners = [
        CornerSpec::Aggressive,
        CornerSpec::IdealRemoval,
        CornerSpec::AllSemiconducting,
    ];
    let sweep_backend = if ctx.fast {
        BackendSpec::GaussianSum
    } else {
        BackendSpec::Convolution { step: 0.05 }
    };
    let widths: Vec<f64> = {
        let (lo, hi) = paper::FIG21_W_RANGE_NM;
        let step = if ctx.fast { 10.0 } else { 5.0 };
        let mut v = Vec::new();
        let mut w = lo;
        while w <= hi + 1e-9 {
            v.push(w);
            w += step;
        }
        v
    };

    let mut plot = LinePlot::new("pF vs W (nm); log10 y — paper Fig 2.1", 64, 18).log_y(true);
    let mut csv = Table::new(
        "fig2-1 data",
        &["width_nm", "pm33_prs30", "pm33_prs0", "pm0_prs0"],
    );

    let mut series: Vec<Vec<(f64, f64)>> = Vec::new();
    for corner in &corners {
        // One shared memoized curve per corner; the anchor solves below
        // reuse the aggressive-corner curve's cache.
        let curve = ctx.pipeline().failure_curve(corner, &sweep_backend)?;
        let pts = curve.sweep(&widths).map_err(analysis)?;
        series.push(
            pts.iter()
                .map(|p| (p.width, p.p_failure.max(1e-14)))
                .collect(),
        );
    }
    for (i, w) in widths.iter().enumerate() {
        csv.add_row(&[
            format!("{w}"),
            format!("{:.6e}", series[0][i].1),
            format!("{:.6e}", series[1][i].1),
            format!("{:.6e}", series[2][i].1),
        ])
        .map_err(analysis)?;
    }
    for (corner, points) in corners.iter().zip(&series) {
        plot.add_series(corner.label(), points.clone());
    }
    plot.add_marker(
        paper::WMIN_UNCORRELATED_NM,
        paper::PF_REQUIREMENT_UNCORRELATED,
        "paper W_min (no corr.)",
    );
    plot.add_marker(
        paper::WMIN_CORRELATED_NM,
        paper::PF_REQUIREMENT_CORRELATED,
        "paper W_min (with corr.)",
    );
    println!("{}", plot.render().map_err(analysis)?);

    // Anchor comparison (exact back-end regardless of --fast).
    let exact = BackendSpec::Convolution { step: 0.05 };
    let model = ctx
        .pipeline()
        .failure_model(&CornerSpec::Aggressive, &exact)?;
    let p155 = model
        .p_failure(paper::WMIN_UNCORRELATED_NM)
        .map_err(analysis)?;
    let p103 = model
        .p_failure(paper::WMIN_CORRELATED_NM)
        .map_err(analysis)?;
    let curve = ctx
        .pipeline()
        .failure_curve(&CornerSpec::Aggressive, &exact)?;
    let solver = WminSolver::new(curve.as_ref());
    let w_plain = solver
        .solve_for_requirement(paper::PF_REQUIREMENT_UNCORRELATED)
        .map_err(analysis)?
        .w_min;
    let w_corr = solver
        .solve_for_requirement(paper::PF_REQUIREMENT_CORRELATED)
        .map_err(analysis)?
        .w_min;

    let mut cmp = Comparison::new("Fig 2.1 anchors (pm=33%, pRs=30%)");
    cmp.add(
        "pF(155 nm)",
        format!("{:.1e}", paper::PF_REQUIREMENT_UNCORRELATED),
        format!("{p155:.1e}"),
        within_factor(p155, paper::PF_REQUIREMENT_UNCORRELATED, 3.0),
    )?;
    cmp.add(
        "pF(103 nm)",
        format!("{:.1e}", paper::PF_REQUIREMENT_CORRELATED),
        format!("{p103:.1e}"),
        within_factor(p103, paper::PF_REQUIREMENT_CORRELATED, 3.0),
    )?;
    cmp.add(
        "W_min @ 3e-9 (nm)",
        format!("{}", paper::WMIN_UNCORRELATED_NM),
        format!("{w_plain:.1}"),
        (w_plain - paper::WMIN_UNCORRELATED_NM).abs() < 10.0,
    )?;
    cmp.add(
        "W_min @ 1.1e-6 (nm)",
        format!("{}", paper::WMIN_CORRELATED_NM),
        format!("{w_corr:.1}"),
        (w_corr - paper::WMIN_CORRELATED_NM).abs() < 6.0,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "fig2-1", &csv)?;
    write_csv(ctx, "fig2-1-comparison", &cmp_table)?;
    Ok(())
}
