//! `wafer <spec.json>` — stream a wafer-scale random-field workload into
//! one aggregated yield artifact.
//!
//! The spec file is a declarative [`WaferSpec`] document (see the README's
//! "Wafer-scale workloads" section): die-grid geometry, a base scenario,
//! and one random field per stochastic knob. The run solves the design
//! once on the central base, then realizes every die through the fields —
//! `--workers` only changes wall-clock; the emitted `<name>.wafer.json`
//! artifact is byte-identical for any worker count.

use crate::common::{banner, write_csv, Result, RunContext};
use cnfet_pipeline::wafer::write_wafer_report;
use cnfet_pipeline::WaferSpec;
use cnfet_plot::Table;

/// Run a wafer spec file through the engine.
pub fn run(ctx: &RunContext, spec_file: &str, workers: Option<usize>) -> Result<()> {
    banner("WAFER", &format!("wafer spec `{spec_file}`"));

    let src = std::fs::read_to_string(spec_file)?;
    let mut spec = WaferSpec::parse(&src)?;
    if ctx.fast {
        spec.base.fast_design = true;
    }
    let workers = workers.unwrap_or(ctx.service.config().sweep_workers).max(1);
    let seed = spec.seed.unwrap_or_else(|| ctx.seed_or(20100613));
    println!(
        "  `{}`: {} dies across, {} dies total, {} workers (seed {seed})",
        spec.name,
        spec.diameter_dies,
        spec.die_count(),
        workers,
    );

    let report = ctx.service.wafer_with_workers(&spec, seed, workers)?;

    let mut profile = Table::new(
        "radial yield profile (center → edge)",
        &["band", "r_range", "dies", "mean_yield"],
    );
    for (i, band) in report.radial.iter().enumerate() {
        profile
            .add_row(&[
                format!("{i}"),
                format!("{:.3}-{:.3}", band.r_lo, band.r_hi),
                format!("{}", band.dies),
                format!("{:.4}", band.mean_yield),
            ])
            .map_err(crate::common::analysis)?;
    }
    println!("{}", profile.to_markdown());

    let mut bins = Table::new("die-yield histogram", &["yield_range", "dies"]);
    for (i, count) in report.bins.iter().enumerate() {
        bins.add_row(&[
            format!(
                "{:.1}-{:.1}",
                i as f64 / report.bins.len() as f64,
                (i + 1) as f64 / report.bins.len() as f64
            ),
            format!("{count}"),
        ])
        .map_err(crate::common::analysis)?;
    }
    println!("{}", bins.to_markdown());

    println!(
        "  W_design {:.1} nm; yield mean {:.4} (min {:.4}, max {:.4}); \
         {} distinct scenarios over {} dies",
        report.w_design_nm,
        report.overall_yield,
        report.min_die_yield,
        report.max_die_yield,
        report.distinct_scenarios,
        report.dies,
    );
    write_csv(ctx, &format!("{}-radial", spec.name), &profile)?;

    let path = write_wafer_report(&ctx.out_dir, &report)?;
    println!("  [json] {}", path.display());
    Ok(())
}
