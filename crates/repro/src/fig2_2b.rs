//! Fig 2.2b — gate-capacitance penalty of upsizing vs technology node,
//! without CNT correlation.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_core::scaling::ScalingStudy;
use cnfet_pipeline::{BackendSpec, CornerSpec, LibrarySpec};
use cnfet_plot::{BarChart, Table};

/// Run the experiment.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 2.2b",
        "Upsizing penalty (% gate capacitance) vs technology node — no correlation",
    );

    let stats = ctx
        .pipeline()
        .design_stats(LibrarySpec::Nangate45, ctx.fast)?;
    println!(
        "  width distribution from {} transistors; measured rho = {:.2} FET/um",
        stats.transistors, stats.rho_per_um
    );

    let model = ctx.pipeline().failure_model(
        &CornerSpec::Aggressive,
        &BackendSpec::Convolution { step: 0.05 },
    )?;
    let study = ScalingStudy::new(
        model,
        45.0,
        stats.width_pairs.clone(),
        paper::YIELD_TARGET,
        paper::M_TRANSISTORS,
        RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).map_err(analysis)?,
    )
    .map_err(analysis)?;
    let results = study.run(&paper::SCALING_NODES_NM).map_err(analysis)?;

    let mut chart = BarChart::new("penalty (%) per node — no correlation", 40);
    let mut csv = Table::new("fig2-2b data", &["node_nm", "w_min_nm", "penalty_percent"]);
    for r in &results {
        chart.add_bar(format!("{:>2.0} nm", r.node), r.penalty_plain * 100.0);
        csv.add_row(&[
            format!("{}", r.node),
            format!("{:.1}", r.w_min_plain),
            format!("{:.1}", r.penalty_plain * 100.0),
        ])
        .map_err(analysis)?;
    }
    println!("{}", chart.render().map_err(analysis)?);

    // The paper's figure shows the penalty rising monotonically to >100 %
    // at 16 nm; compare the shape.
    let mut cmp = Comparison::new("Fig 2.2b shape");
    let p45 = results[0].penalty_plain;
    let p16 = results[3].penalty_plain;
    cmp.add(
        "penalty @ 45 nm",
        "~10 %".into(),
        format!("{:.1} %", p45 * 100.0),
        p45 < 0.25,
    )?;
    cmp.add(
        "penalty @ 16 nm",
        ">100 %".into(),
        format!("{:.1} %", p16 * 100.0),
        p16 > 0.8,
    )?;
    let monotone = results
        .windows(2)
        .all(|p| p[1].penalty_plain > p[0].penalty_plain);
    cmp.add(
        "monotone increase",
        "yes".into(),
        format!("{monotone}"),
        monotone,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "fig2-2b", &csv)?;
    write_csv(ctx, "fig2-2b-comparison", &cmp_table)?;
    Ok(())
}
