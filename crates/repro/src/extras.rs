//! Extensions beyond the paper's tables: the grid-policy trade-off
//! (Sec 3.3's closing discussion, quantified) and the noise-margin
//! `pRm` requirement (\[Zhang 09b\] hook).

use crate::common::{analysis, banner, write_csv, Result, RunContext};
use cnfet_core::noise::{mean_surviving_metallic, p_any_surviving_metallic, required_p_rm};
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_core::tradeoffs::GridTradeoff;
use cnfet_pipeline::{BackendSpec, CornerSpec, LibrarySpec};
use cnfet_plot::Table;

/// Run the extension analyses.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "EXTRAS",
        "Grid-policy trade-off and the [Zhang 09b] pRm requirement",
    );

    // --- grid trade-off --------------------------------------------------
    let lib = ctx.pipeline().library(LibrarySpec::Nangate45);
    let study = GridTradeoff {
        library: &lib,
        model: ctx
            .pipeline()
            .failure_model(&CornerSpec::Aggressive, &BackendSpec::GaussianSum)?,
        row: RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).map_err(analysis)?,
        widths: vec![(110.0, 33), (185.0, 47), (370.0, 20)],
        yield_target: paper::YIELD_TARGET,
        m_min: paper::MMIN_FRACTION * paper::M_TRANSISTORS,
    };
    let [single, dual] = study.run().map_err(analysis)?;
    let mut t = Table::new(
        "grid-policy trade-off (Nangate-45-class)",
        &[
            "policy",
            "cells penalized",
            "library area",
            "relaxation",
            "W_min (nm)",
            "upsizing penalty",
        ],
    );
    for p in [&single, &dual] {
        t.add_row(&[
            format!("{:?}", p.policy),
            format!("{:.1} %", p.cells_penalized * 100.0),
            format!("+{:.2} %", p.library_area_increase * 100.0),
            format!("{:.0}x", p.relaxation),
            format!("{:.1}", p.w_min),
            format!("{:.1} %", p.upsizing_penalty * 100.0),
        ])
        .map_err(analysis)?;
    }
    println!("{}", t.to_markdown());
    println!(
        "  dual-grid W_min cost: +{:.1} % (paper: \"< 5 % increase in W_min\")\n",
        (dual.w_min / single.w_min - 1.0) * 100.0
    );
    write_csv(ctx, "extras-grid-tradeoff", &t)?;

    // --- pRm requirement --------------------------------------------------
    let mut t = Table::new(
        "surviving-m-CNT exposure vs pRm (W = 150 nm)",
        &[
            "pRm",
            "mean survivors/gate",
            "P(any survivor)",
            "suspect gates / 1e8",
        ],
    );
    let exact = BackendSpec::Convolution { step: 0.05 };
    for p_rm in [0.99, 0.999, 0.9999, 0.99999] {
        let corner = CornerSpec::Custom {
            pm: 0.33,
            p_rs: 0.30,
            p_rm,
        };
        let model = ctx.pipeline().failure_model(&corner, &exact)?;
        let mean = mean_surviving_metallic(&model, 150.0).map_err(analysis)?;
        let p_any = p_any_surviving_metallic(&model, 150.0).map_err(analysis)?;
        t.add_row(&[
            format!("{p_rm}"),
            format!("{mean:.2e}"),
            format!("{p_any:.2e}"),
            format!("{:.1e}", p_any * 1e8),
        ])
        .map_err(analysis)?;
    }
    println!("{}", t.to_markdown());

    let model = ctx.pipeline().failure_model(
        &CornerSpec::Custom {
            pm: 0.33,
            p_rs: 0.30,
            p_rm: 0.5,
        },
        &exact,
    )?;
    let need = required_p_rm(&model, 150.0, 1e8, 1e4).map_err(analysis)?;
    println!(
        "  pRm needed to keep <= 1e4 suspect gates on a 1e8-gate chip: {need:.5}\n  (paper/[Zhang 09b]: pRm > 99.99 %)"
    );
    write_csv(ctx, "extras-prm", &t)?;
    Ok(())
}
