//! `cnfet-repro` — regenerate every table and figure of the DAC 2010 paper.
//!
//! ```text
//! cnfet-repro <experiment> [--fast]
//!
//! experiments:
//!   fig2-1    pF vs W for three processing corners (+ W_min anchors)
//!   fig2-2a   transistor-width histogram of the OpenRISC-class design
//!   fig2-2b   upsizing penalty vs technology node (no correlation)
//!   fig3-1    growth/layout correlation scenarios
//!   table1    p_RF for the three growth/layout scenarios
//!   fig3-2    AOI222_X1 before/after aligned-active
//!   fig3-3    penalty vs node, with vs without correlation
//!   table2    library-wide area penalties and W_min values
//!   extras    beyond-paper analyses: grid trade-off, pRm requirement
//!   all       everything above, in paper order
//! ```
//!
//! Every experiment prints an ASCII rendition plus a paper-vs-measured
//! comparison, and writes CSV data under `results/`.

mod common;
mod extras;
mod fig2_1;
mod fig2_2a;
mod fig2_2b;
mod fig3_1;
mod fig3_2;
mod fig3_3;
mod table1;
mod table2;

use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: cnfet-repro <fig2-1|fig2-2a|fig2-2b|fig3-1|table1|fig3-2|fig3-3|table2|extras|all> [--fast]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = match args.iter().find(|a| !a.starts_with("--")) {
        Some(w) => w.clone(),
        None => {
            usage();
            return ExitCode::FAILURE;
        }
    };

    let run = |name: &str| -> common::Result<()> {
        match name {
            "fig2-1" => fig2_1::run(fast),
            "fig2-2a" => fig2_2a::run(fast),
            "fig2-2b" => fig2_2b::run(fast),
            "fig3-1" => fig3_1::run(fast),
            "table1" => table1::run(fast),
            "fig3-2" => fig3_2::run(fast),
            "fig3-3" => fig3_3::run(fast),
            "table2" => table2::run(fast),
            "extras" => extras::run(fast),
            other => Err(common::ReproError::UnknownExperiment(other.to_string())),
        }
    };

    let result = if which == "all" {
        [
            "fig2-1", "fig2-2a", "fig2-2b", "fig3-1", "table1", "fig3-2", "fig3-3", "table2",
            "extras",
        ]
        .iter()
        .try_for_each(|n| run(n))
    } else {
        run(&which)
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, common::ReproError::UnknownExperiment(_)) {
                usage();
            }
            ExitCode::FAILURE
        }
    }
}
