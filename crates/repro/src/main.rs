//! `cnfet-repro` — regenerate every table and figure of the DAC 2010 paper.
//!
//! ```text
//! cnfet-repro <experiment> [--fast] [--out-dir <path>] [--seed <u64>]
//! cnfet-repro sweep <grid-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>]
//!                   [--backend <name-or-json>]
//! cnfet-repro coopt <spec-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>]
//! cnfet-repro fault <spec-file> [--fast] [--out-dir <path>] [--seed <u64>]
//! cnfet-repro wafer <spec-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>]
//! cnfet-repro serve [--workers <n>] [--curve-cache <n>] [--shards <n>]
//!                   [--queue-depth <n>] [--admission <block|shed>]
//!
//! experiments:
//!   fig2-1    pF vs W for three processing corners (+ W_min anchors)
//!   fig2-2a   transistor-width histogram of the OpenRISC-class design
//!   fig2-2b   upsizing penalty vs technology node (no correlation)
//!   fig3-1    growth/layout correlation scenarios
//!   table1    p_RF for the three growth/layout scenarios
//!   fig3-2    AOI222_X1 before/after aligned-active
//!   fig3-3    penalty vs node, with vs without correlation
//!   table2    library-wide area penalties and W_min values
//!   extras    beyond-paper analyses: grid trade-off, pRm requirement
//!   all       everything above, in paper order
//!   sweep     evaluate a declarative scenario-grid file in parallel
//!   coopt     run a process–design co-optimization study (Pareto artifact)
//!   fault     evaluate a purity/redundancy scenario and sweep the required
//!             purity across redundancy schemes
//!   wafer     stream a wafer-scale random-field workload to a yield artifact
//!   serve     JSON-lines yield-service daemon on stdin/stdout (incl. co_opt)
//!
//! options:
//!   --fast            reduced trial counts and design sizes
//!   --out-dir <path>  artifact directory (default `results/`)
//!   --seed <u64>      base RNG seed (default: each experiment's published seed)
//!   --backend <b>     (sweep) override every scenario's count back-end:
//!                     convolution | gaussian-sum | monte-carlo, or a JSON
//!                     object, e.g. '{"monte-carlo": {"rel_ci": 0.05}}'
//!   --workers <n>     (sweep, coopt, wafer, serve) worker threads; wall-clock
//!                     only, never results
//!   --curve-cache <n> (serve) LRU capacity of each shard's pF(W) curve cache
//!   --shards <n>      (serve) service shards behind the deterministic router;
//!                     wall-clock/interleaving only, never response bytes
//!   --queue-depth <n> (serve) bound of each shard's admission queue
//!   --admission <p>   (serve) full-queue policy: block (backpressure, default)
//!                     or shed (machine-readable `overloaded` responses)
//! ```
//!
//! Every experiment prints an ASCII rendition plus a paper-vs-measured
//! comparison, and writes CSV data under the output directory. All
//! computations route through the `cnfet-pipeline` scenario engine, so one
//! invocation of `all` shares memoized `pF(W)` curves, mapped designs, and
//! aligned libraries across experiments.

mod common;
mod coopt;
mod extras;
mod fault;
mod fig2_1;
mod fig2_2a;
mod fig2_2b;
mod fig3_1;
mod fig3_2;
mod fig3_3;
mod serve;
mod sweep;
mod table1;
mod table2;
mod wafer;

use common::{ReproError, RunContext};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: cnfet-repro <fig2-1|fig2-2a|fig2-2b|fig3-1|table1|fig3-2|fig3-3|table2|extras|all> \
         [--fast] [--out-dir <path>] [--seed <u64>]\n       \
         cnfet-repro sweep <grid-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>] \
         [--backend <name-or-json>]\n       \
         cnfet-repro coopt <spec-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>]\n       \
         cnfet-repro fault <spec-file> [--fast] [--out-dir <path>] [--seed <u64>]\n       \
         cnfet-repro wafer <spec-file> [--fast] [--out-dir <path>] [--seed <u64>] [--workers <n>]\n       \
         cnfet-repro serve [--workers <n>] [--curve-cache <n>] [--shards <n>] \
         [--queue-depth <n>] [--admission <block|shed>]"
    );
}

struct Cli {
    positionals: Vec<String>,
    fast: bool,
    out_dir: Option<PathBuf>,
    seed: Option<u64>,
    workers: Option<usize>,
    backend: Option<String>,
    curve_cache: Option<usize>,
    shards: Option<usize>,
    queue_depth: Option<usize>,
    admission: Option<String>,
}

/// Parse `args` (flags may appear anywhere; `--flag value` and
/// `--flag=value` both work).
fn parse_cli(args: &[String]) -> common::Result<Cli> {
    let mut cli = Cli {
        positionals: Vec::new(),
        fast: false,
        out_dir: None,
        seed: None,
        workers: None,
        backend: None,
        curve_cache: None,
        shards: None,
        queue_depth: None,
        admission: None,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> common::Result<String> {
            if let Some(v) = inline.clone() {
                return Ok(v);
            }
            iter.next()
                .cloned()
                .ok_or_else(|| ReproError::Usage(format!("{name} needs a value")))
        };
        match flag {
            "--fast" => cli.fast = true,
            "--out-dir" => cli.out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--seed" => {
                let v = value("--seed")?;
                cli.seed = Some(v.parse().map_err(|_| {
                    ReproError::Usage(format!("--seed expects an unsigned integer, got `{v}`"))
                })?);
            }
            "--workers" => {
                let v = value("--workers")?;
                cli.workers = Some(v.parse().map_err(|_| {
                    ReproError::Usage(format!("--workers expects a positive integer, got `{v}`"))
                })?);
            }
            "--backend" => cli.backend = Some(value("--backend")?),
            "--curve-cache" => {
                let v = value("--curve-cache")?;
                cli.curve_cache = Some(v.parse().map_err(|_| {
                    ReproError::Usage(format!(
                        "--curve-cache expects a positive integer, got `{v}`"
                    ))
                })?);
            }
            "--shards" => {
                let v = value("--shards")?;
                cli.shards = Some(v.parse().map_err(|_| {
                    ReproError::Usage(format!("--shards expects a positive integer, got `{v}`"))
                })?);
            }
            "--queue-depth" => {
                let v = value("--queue-depth")?;
                cli.queue_depth = Some(v.parse().map_err(|_| {
                    ReproError::Usage(format!(
                        "--queue-depth expects a positive integer, got `{v}`"
                    ))
                })?);
            }
            "--admission" => cli.admission = Some(value("--admission")?),
            f if f.starts_with("--") => {
                return Err(ReproError::Usage(format!("unknown flag `{f}`")));
            }
            _ => cli.positionals.push(arg.clone()),
        }
    }
    Ok(cli)
}

fn dispatch(cli: &Cli) -> common::Result<()> {
    let Some(which) = cli.positionals.first() else {
        return Err(ReproError::Usage("missing experiment name".into()));
    };
    let mut ctx = RunContext::new(cli.fast).with_seed(cli.seed);
    if let Some(dir) = &cli.out_dir {
        ctx = ctx.with_out_dir(dir.clone());
    }

    if which == "serve" {
        if cli.backend.is_some() || cli.fast || cli.seed.is_some() || cli.out_dir.is_some() {
            return Err(ReproError::Usage(
                "serve takes only --workers, --curve-cache, --shards, --queue-depth, \
                 and --admission; seeds and specs arrive per request"
                    .into(),
            ));
        }
        return serve::run(&serve::ServeOptions {
            workers: cli.workers,
            curve_cache: cli.curve_cache,
            shards: cli.shards,
            queue_depth: cli.queue_depth,
            admission: cli.admission.clone(),
        });
    }

    if cli.curve_cache.is_some() || cli.shards.is_some() || cli.queue_depth.is_some() {
        return Err(ReproError::Usage(
            "--curve-cache/--shards/--queue-depth only apply to the serve subcommand".into(),
        ));
    }
    if cli.admission.is_some() {
        return Err(ReproError::Usage(
            "--admission only applies to the serve subcommand".into(),
        ));
    }

    if which == "sweep" {
        let Some(grid_file) = cli.positionals.get(1) else {
            return Err(ReproError::Usage(
                "sweep needs a <grid-file> argument".into(),
            ));
        };
        return sweep::run(&ctx, grid_file, cli.workers, cli.backend.as_deref());
    }

    if which == "coopt" {
        if cli.backend.is_some() {
            return Err(ReproError::Usage(
                "--backend only applies to the sweep subcommand; pin the back-end in \
                 the coopt spec's `base` instead"
                    .into(),
            ));
        }
        let Some(spec_file) = cli.positionals.get(1) else {
            return Err(ReproError::Usage(
                "coopt needs a <spec-file> argument".into(),
            ));
        };
        return coopt::run(&ctx, spec_file, cli.workers);
    }

    if which == "fault" {
        if cli.backend.is_some() || cli.workers.is_some() {
            return Err(ReproError::Usage(
                "fault takes only --fast, --out-dir, and --seed (a single-scenario \
                 analysis has no worker pool or back-end override)"
                    .into(),
            ));
        }
        let Some(spec_file) = cli.positionals.get(1) else {
            return Err(ReproError::Usage(
                "fault needs a <spec-file> argument".into(),
            ));
        };
        return fault::run(&ctx, spec_file);
    }

    if which == "wafer" {
        if cli.backend.is_some() {
            return Err(ReproError::Usage(
                "--backend only applies to the sweep subcommand; pin the back-end in \
                 the wafer spec's `base` instead"
                    .into(),
            ));
        }
        let Some(spec_file) = cli.positionals.get(1) else {
            return Err(ReproError::Usage(
                "wafer needs a <spec-file> argument".into(),
            ));
        };
        return wafer::run(&ctx, spec_file, cli.workers);
    }

    if cli.backend.is_some() {
        return Err(ReproError::Usage(
            "--backend only applies to the sweep subcommand".into(),
        ));
    }

    let run = |name: &str| -> common::Result<()> {
        match name {
            "fig2-1" => fig2_1::run(&ctx),
            "fig2-2a" => fig2_2a::run(&ctx),
            "fig2-2b" => fig2_2b::run(&ctx),
            "fig3-1" => fig3_1::run(&ctx),
            "table1" => table1::run(&ctx),
            "fig3-2" => fig3_2::run(&ctx),
            "fig3-3" => fig3_3::run(&ctx),
            "table2" => table2::run(&ctx),
            "extras" => extras::run(&ctx),
            other => Err(ReproError::UnknownExperiment(other.to_string())),
        }
    };

    if which == "all" {
        [
            "fig2-1", "fig2-2a", "fig2-2b", "fig3-1", "table1", "fig3-2", "fig3-3", "table2",
            "extras",
        ]
        .iter()
        .try_for_each(|n| run(n))
    } else {
        run(which)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_cli(&args).and_then(|cli| dispatch(&cli));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, ReproError::UnknownExperiment(_) | ReproError::Usage(_)) {
                usage();
            }
            ExitCode::FAILURE
        }
    }
}
