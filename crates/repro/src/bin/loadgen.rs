//! `loadgen` — closed-loop load generator for the `repro serve` daemon.
//!
//! Drives thousands of concurrent *logical* clients over one JSON-lines
//! pipe: every client keeps exactly one request outstanding, sending its
//! next request the moment the previous one completes (a closed loop, so
//! offered load adapts to service capacity instead of overrunning it).
//! The workload is a deterministic function of `--seed` — a fixed mix of
//! `evaluate`, `describe`, `sweep`, `wafer`, and `co_opt` bodies drawn
//! from small spec/seed pools (so the daemon's caches and warm tier see
//! realistic repetition) — and the run emits one machine-readable JSON
//! report: sustained req/s, p50/p95/p99/max latency, error counts by
//! code, and the daemon's own shard stats (served/shed/cancelled,
//! queue-depth high-water marks) recovered from its shutdown line.
//!
//! ```text
//! loadgen --clients 1000 --requests 2 --seed 1 --fail-on-errors \
//!         --out report.json -- target/release/repro serve --shards 4
//! ```
//!
//! Exit status: `0` on success, `2` when a gate (`--fail-on-errors`,
//! `--max-p99-ms`) is violated, `1` on operational failure (daemon died
//! early, malformed responses). CI runs this against `--shards 4` and
//! archives the report.

use cnfet_pipeline::{Json, RouterStats};
use cnt_stats::split_seed;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Parsed command line.
struct Options {
    clients: u64,
    requests: u64,
    seed: u64,
    out: Option<String>,
    max_p99_ms: Option<f64>,
    fail_on_errors: bool,
    daemon: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--clients <n>] [--requests <per-client>] [--seed <u64>] \
         [--out <report.json>] [--max-p99-ms <ms>] [--fail-on-errors] -- <daemon cmd...>"
    );
    std::process::exit(1);
}

fn parse_options() -> Options {
    let mut options = Options {
        clients: 64,
        requests: 4,
        seed: 1,
        out: None,
        max_p99_ms: None,
        fail_on_errors: false,
        daemon: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--clients" => options.clients = parse_num(&value("--clients")),
            "--requests" => options.requests = parse_num(&value("--requests")),
            "--seed" => options.seed = parse_num(&value("--seed")),
            "--out" => options.out = Some(value("--out")),
            "--max-p99-ms" => {
                let v = value("--max-p99-ms");
                options.max_p99_ms = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("loadgen: --max-p99-ms expects a number, got `{v}`");
                    usage();
                }));
            }
            "--fail-on-errors" => options.fail_on_errors = true,
            "--" => {
                options.daemon = args.collect();
                break;
            }
            other => {
                eprintln!("loadgen: unknown argument `{other}`");
                usage();
            }
        }
    }
    if options.daemon.is_empty() {
        eprintln!("loadgen: missing daemon command after `--`");
        usage();
    }
    if options.clients == 0 || options.requests == 0 {
        eprintln!("loadgen: --clients and --requests must be >= 1");
        usage();
    }
    options
}

fn parse_num(v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("loadgen: expected an unsigned integer, got `{v}`");
        usage();
    })
}

/// The paper's 45-nm case-study base, shared by every generated body.
const BASE_SPEC: &str = r#""corner":"aggressive","library":"nangate45","backend":"gaussian-sum","rho":"paper","fast_design":true"#;

/// One generated request: the wire line, its kind label, and whether it
/// streams (`sweep` terminates on `sweep_done`, not on the first body).
struct GenRequest {
    line: String,
    kind: &'static str,
    is_sweep: bool,
}

/// Deterministic request for `(client, req)` under `seed`: the mix and
/// every spec parameter derive from `split_seed`, and the small pools
/// (correlations, CNT lengths, seeds) give the daemon's caches realistic
/// repetition across clients.
fn generate(seed: u64, client: u64, req: u64) -> GenRequest {
    let r = split_seed(split_seed(seed, client), req);
    let id = format!("c{client}-r{req}");
    let correlation = ["none", "growth", "growth+aligned-layout"][(r >> 8) as usize % 3];
    let l_cnt_um = [150, 200, 250][(r >> 16) as usize % 3];
    let request_seed = 1 + (r >> 24) % 4;
    let (line, kind, is_sweep) = match r % 64 {
        0 => (
            format!(
                r#"{{"schema":1,"id":"{id}","body":{{"co_opt":{{"spec":{{"name":"lg","base":{{{BASE_SPEC},"yield_target":0.9,"correlation":"growth+aligned-layout"}},"search":{{"l_cnt_um":{{"min":100,"max":200,"steps":2}}}},"objective":{{"w_min_weight":1.0,"area_weight":1.0}},"searcher":"grid"}},"seed":{request_seed}}}}}}}"#
            ),
            "co_opt",
            false,
        ),
        1..=2 => (
            format!(
                r#"{{"schema":1,"id":"{id}","body":{{"wafer":{{"spec":{{"name":"lg","diameter_dies":8,"base":{{{BASE_SPEC},"yield_target":0.9,"correlation":"{correlation}"}},"fields":{{"density":{{"dist":{{"gaussian":{{"mean":1.0,"sd":0.05}}}}}}}}}},"seed":{request_seed}}}}}}}"#
            ),
            "wafer",
            false,
        ),
        3..=6 => (
            format!(
                r#"{{"schema":1,"id":"{id}","body":{{"sweep":{{"grid":{{"name":"lg","defaults":{{{BASE_SPEC},"yield_target":0.9,"l_cnt_um":{l_cnt_um}}},"axes":{{"correlation":["none","growth","growth+aligned-layout"]}}}},"seed":{request_seed}}}}}}}"#
            ),
            "sweep",
            true,
        ),
        7..=10 => (
            format!(r#"{{"schema":1,"id":"{id}","body":"describe"}}"#),
            "describe",
            false,
        ),
        11..=16 => {
            // Fault-aware evaluates: a purity/redundancy pair per request,
            // drawn from small pools so the fault compose paths see the
            // same cache-friendly repetition as the correlation knob.
            let purity = ["0.9999999", "0.999999999", "0.99999999999"][(r >> 32) as usize % 3];
            let redundancy = [
                r#""none""#,
                r#""tmr""#,
                r#"{"kind":"spare-units","spares":4,"unit_size":65536}"#,
            ][(r >> 40) as usize % 3];
            (
                format!(
                    r#"{{"schema":1,"id":"{id}","body":{{"evaluate":{{"spec":{{{BASE_SPEC},"correlation":"{correlation}","l_cnt_um":{l_cnt_um},"purity":{purity},"redundancy":{redundancy}}},"seed":{request_seed}}}}}}}"#
                ),
                "fault",
                false,
            )
        }
        _ => (
            format!(
                r#"{{"schema":1,"id":"{id}","body":{{"evaluate":{{"spec":{{{BASE_SPEC},"correlation":"{correlation}","l_cnt_um":{l_cnt_um}}},"seed":{request_seed}}}}}}}"#
            ),
            "evaluate",
            false,
        ),
    };
    GenRequest {
        line,
        kind,
        is_sweep,
    }
}

/// One outstanding request.
struct Pending {
    start: Instant,
    client: u64,
    req: u64,
    is_sweep: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let options = parse_options();
    let mut daemon = Command::new(&options.daemon[0])
        .args(&options.daemon[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("loadgen: failed to spawn `{}`: {e}", options.daemon[0]);
            std::process::exit(1);
        });
    let stdin = Arc::new(Mutex::new(daemon.stdin.take()));
    let stdout = daemon.stdout.take().expect("piped stdout");
    let stderr = daemon.stderr.take().expect("piped stderr");

    // Mirror daemon diagnostics and keep them for the final stats line.
    let stderr_lines = std::thread::spawn(move || {
        let mut lines = Vec::new();
        for line in BufReader::new(stderr).lines().map_while(|l| l.ok()) {
            eprintln!("[daemon] {line}");
            lines.push(line);
        }
        lines
    });

    let pending: Arc<Mutex<HashMap<String, Pending>>> = Arc::new(Mutex::new(HashMap::new()));
    let started = Instant::now();

    // The reader is the closed loop's engine: every terminal response
    // retires its request, records its latency, and (until the client's
    // quota is spent) launches that client's next request. When the last
    // request retires it closes the daemon's stdin, which triggers the
    // daemon's drain-and-exit and in turn ends this thread at EOF.
    let reader = {
        let pending = Arc::clone(&pending);
        let stdin = Arc::clone(&stdin);
        let seed = options.seed;
        let per_client = options.requests;
        let mut remaining = options.clients * options.requests;
        std::thread::spawn(move || {
            let mut latencies: Vec<f64> = Vec::new();
            let mut errors: HashMap<String, u64> = HashMap::new();
            let mut kinds: HashMap<&'static str, u64> = HashMap::new();
            let mut malformed = 0u64;
            for line in BufReader::new(stdout).lines().map_while(|l| l.ok()) {
                let Ok(doc) = Json::parse(&line) else {
                    malformed += 1;
                    continue;
                };
                let id = doc
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let body = doc.get("body").and_then(Json::as_object);
                let Some([(body_kind, payload)]) = body else {
                    malformed += 1;
                    continue;
                };
                let error_code = (body_kind == "error")
                    .then(|| payload.get("code").and_then(Json::as_str))
                    .flatten();
                if let Some(code) = error_code {
                    *errors.entry(code.to_string()).or_default() += 1;
                }
                // A sweep retires on its `sweep_done` terminator; inline
                // scenario errors are counted above but keep it open. An
                // `overloaded` shed is terminal for any kind: the request
                // was never executed.
                let shed = error_code == Some("overloaded");
                let entry = {
                    let mut map = pending.lock().expect("pending lock");
                    let terminal = match map.get(&id) {
                        Some(p) if p.is_sweep && !shed => body_kind == "sweep_done",
                        Some(_) => body_kind != "sweep_report",
                        None => false,
                    };
                    if terminal {
                        map.remove(&id)
                    } else {
                        None
                    }
                };
                let Some(done) = entry else { continue };
                latencies.push(done.start.elapsed().as_secs_f64() * 1e3);
                remaining -= 1;
                if done.req + 1 < per_client {
                    let next = generate(seed, done.client, done.req + 1);
                    *kinds.entry(next.kind).or_default() += 1;
                    let next_id = format!("c{}-r{}", done.client, done.req + 1);
                    pending.lock().expect("pending lock").insert(
                        next_id,
                        Pending {
                            start: Instant::now(),
                            client: done.client,
                            req: done.req + 1,
                            is_sweep: next.is_sweep,
                        },
                    );
                    let mut stdin = stdin.lock().expect("stdin lock");
                    if let Some(pipe) = stdin.as_mut() {
                        if writeln!(pipe, "{}", next.line)
                            .and_then(|()| pipe.flush())
                            .is_err()
                        {
                            *stdin = None; // daemon gone; EOF ends the loop
                        }
                    }
                } else if remaining == 0 {
                    // Last request retired: close stdin so the daemon
                    // drains and exits.
                    *stdin.lock().expect("stdin lock") = None;
                }
            }
            (latencies, errors, kinds, malformed, remaining)
        })
    };

    // Kick off every client's first request (the reader is already
    // draining stdout, so this cannot deadlock on full pipes).
    let mut kickoff_kinds: HashMap<&'static str, u64> = HashMap::new();
    for client in 0..options.clients {
        let first = generate(options.seed, client, 0);
        *kickoff_kinds.entry(first.kind).or_default() += 1;
        pending.lock().expect("pending lock").insert(
            format!("c{client}-r0"),
            Pending {
                start: Instant::now(),
                client,
                req: 0,
                is_sweep: first.is_sweep,
            },
        );
        let mut stdin = stdin.lock().expect("stdin lock");
        let Some(pipe) = stdin.as_mut() else { break };
        if writeln!(pipe, "{}", first.line)
            .and_then(|()| pipe.flush())
            .is_err()
        {
            eprintln!("loadgen: daemon closed stdin during kickoff");
            break;
        }
    }

    let (mut latencies, errors, mut kinds, malformed, remaining) =
        reader.join().expect("reader thread");
    let elapsed = started.elapsed().as_secs_f64();
    for (kind, count) in kickoff_kinds {
        *kinds.entry(kind).or_default() += count;
    }
    let status = daemon.wait().expect("daemon wait");
    let stderr_lines = stderr_lines.join().expect("stderr thread");

    // The daemon's shutdown line carries its router stats:
    //   repro serve: <reason> after <n> requests; stats {...}
    let daemon_stats = stderr_lines
        .iter()
        .rev()
        .find_map(|line| line.split_once("; stats ").map(|(_, json)| json))
        .and_then(|json| Json::parse(json).ok())
        .and_then(|doc| RouterStats::from_json(&doc).ok());

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len() as u64;
    let total_errors: u64 = errors.values().sum();
    let p99 = percentile(&latencies, 99.0);
    let mut sorted_kinds: Vec<_> = kinds.into_iter().collect();
    sorted_kinds.sort_unstable();
    let mut sorted_errors: Vec<_> = errors.into_iter().collect();
    sorted_errors.sort();
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("loadgen/1".into())),
        ("clients".into(), Json::from_u64(options.clients)),
        (
            "requests_per_client".into(),
            Json::from_u64(options.requests),
        ),
        ("seed".into(), Json::from_u64(options.seed)),
        ("completed".into(), Json::from_u64(completed)),
        ("unanswered".into(), Json::from_u64(remaining)),
        ("malformed_lines".into(), Json::from_u64(malformed)),
        (
            "errors".into(),
            Json::Obj(vec![
                ("total".into(), Json::from_u64(total_errors)),
                (
                    "by_code".into(),
                    Json::Obj(
                        sorted_errors
                            .into_iter()
                            .map(|(code, n)| (code, Json::from_u64(n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("elapsed_s".into(), Json::Num(elapsed)),
        (
            "req_per_s".into(),
            Json::Num(completed as f64 / elapsed.max(1e-9)),
        ),
        (
            "latency_ms".into(),
            Json::Obj(vec![
                ("p50".into(), Json::Num(percentile(&latencies, 50.0))),
                ("p95".into(), Json::Num(percentile(&latencies, 95.0))),
                ("p99".into(), Json::Num(p99)),
                (
                    "max".into(),
                    Json::Num(latencies.last().copied().unwrap_or(0.0)),
                ),
            ]),
        ),
        (
            "kinds".into(),
            Json::Obj(
                sorted_kinds
                    .into_iter()
                    .map(|(kind, n)| (kind.to_string(), Json::from_u64(n)))
                    .collect(),
            ),
        ),
        (
            "daemon_stats".into(),
            daemon_stats
                .as_ref()
                .map(RouterStats::to_json)
                .unwrap_or(Json::Null),
        ),
    ]);
    let rendered = report.to_string_compact();
    println!("{rendered}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if !status.success() || remaining > 0 || malformed > 0 {
        eprintln!(
            "loadgen: operational failure (daemon status {status}, {remaining} unanswered, \
             {malformed} malformed lines)"
        );
        std::process::exit(1);
    }
    let mut gate_failed = false;
    if options.fail_on_errors && total_errors > 0 {
        eprintln!("loadgen: gate violated — {total_errors} error response(s)");
        gate_failed = true;
    }
    if let Some(max) = options.max_p99_ms {
        if p99 > max {
            eprintln!("loadgen: gate violated — p99 {p99:.1} ms > {max:.1} ms");
            gate_failed = true;
        }
    }
    if gate_failed {
        std::process::exit(2);
    }
}
