//! `serve` — run the yield service as a JSON-lines daemon.
//!
//! Reads one [`cnfet_pipeline::YieldRequest`] per stdin line and writes
//! one or more single-line [`cnfet_pipeline::YieldResponse`]s to stdout
//! (sweeps stream one `sweep_report` per scenario, in index order, then a
//! `sweep_done`). The daemon runs the co-optimization front end
//! ([`cnfet_opt::OptService`]), so `co_opt` request bodies are executed
//! in-process rather than declined. stdout carries *only* JSON lines —
//! all diagnostics go to stderr — so external co-optimizers can pipe the
//! daemon directly. The process stays up across malformed input (every
//! problem becomes a structured error response) and exits 0 on EOF.
//!
//! ```text
//! printf '%s\n' \
//!   '{"schema":1,"id":"cap","body":"describe"}' \
//!   '{"schema":1,"id":"w45","body":{"evaluate":{"spec":{"fast_design":true}}}}' \
//!   | repro serve
//! ```
//!
//! Responses are deterministic: repeated identical requests — within one
//! session (warm caches) or across sessions — serialize byte-identically,
//! and `--workers` only changes wall-clock time, never bytes.

use crate::common::{ReproError, Result};
use cnfet_opt::OptService;
use cnfet_pipeline::ServiceConfig;
use std::io::{BufRead, Write};

/// Configuration of one daemon session, parsed from the CLI.
pub struct ServeOptions {
    /// Sweep worker-thread override (`--workers`).
    pub workers: Option<usize>,
    /// Curve-cache capacity override (`--curve-cache`).
    pub curve_cache: Option<usize>,
}

/// Run the daemon loop over stdin/stdout until EOF.
pub fn run(options: &ServeOptions) -> Result<()> {
    let mut config = ServiceConfig::default();
    if let Some(workers) = options.workers {
        if workers == 0 {
            return Err(ReproError::Usage("--workers must be >= 1".into()));
        }
        config.sweep_workers = workers;
    }
    if let Some(capacity) = options.curve_cache {
        if capacity == 0 {
            return Err(ReproError::Usage("--curve-cache must be >= 1".into()));
        }
        config.cache.curve_capacity = capacity;
    }
    let service = OptService::with_config(config);
    eprintln!(
        "repro serve: yield service up (schema 1 incl. co_opt, {} sweep workers, \
         {} curve slots); one JSON request per line, ctrl-d to exit",
        config.sweep_workers, config.cache.curve_capacity
    );

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0u64;
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut io_error: Option<std::io::Error> = None;
        // Write + flush each response as it is produced, so sweep results
        // stream to the client while later scenarios still compute.
        service.handle_line(&line, &mut |response| {
            if io_error.is_some() {
                return;
            }
            let emit = writeln!(out, "{}", response.to_json().to_string_compact())
                .and_then(|()| out.flush());
            if let Err(e) = emit {
                io_error = Some(e);
            }
        });
        if let Some(e) = io_error {
            // A broken pipe means the client hung up: a clean shutdown.
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                return Ok(());
            }
            return Err(e.into());
        }
        served += 1;
    }
    eprintln!("repro serve: eof after {served} requests, shutting down");
    Ok(())
}
