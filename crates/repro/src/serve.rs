//! `serve` — run the yield service as a JSON-lines daemon.
//!
//! Reads one [`cnfet_pipeline::YieldRequest`] per stdin line and writes
//! one or more single-line [`cnfet_pipeline::YieldResponse`]s to stdout
//! (sweeps stream one `sweep_report` per scenario, in index order, then a
//! `sweep_done`). Requests are answered by `--shards N` co-optimization
//! front ends ([`cnfet_opt::OptService`]) behind the deterministic
//! [`cnfet_pipeline::ShardRouter`]: the shard is a pure hash of the
//! request id, every shard owns its own bounded caches, and a shared warm
//! tier answers repeated single-artifact requests without recomputing.
//! stdout carries *only* JSON lines — all diagnostics go to stderr — so
//! external co-optimizers can pipe the daemon directly. The process stays
//! up across malformed input (every problem becomes a structured error
//! response) and drains in-flight work before exiting on EOF, SIGTERM, or
//! a client hang-up (broken pipe).
//!
//! ```text
//! printf '%s\n' \
//!   '{"schema":1,"id":"cap","body":"describe"}' \
//!   '{"schema":1,"id":"w45","body":{"evaluate":{"spec":{"fast_design":true}}}}' \
//!   | repro serve --shards 4
//! ```
//!
//! Responses are deterministic: repeated identical requests — within one
//! session (warm caches) or across sessions — serialize byte-identically,
//! and `--workers` / `--shards` only change wall-clock time and
//! interleaving across ids, never bytes. Sorting a transcript makes it
//! byte-comparable across shard counts (CI pins `--shards 1` vs `4`).
//!
//! With `--admission shed`, a full shard queue answers immediately with a
//! machine-readable `overloaded` error instead of blocking the intake
//! loop — the back end for untrusted many-client front ends. The default
//! (`block`) applies backpressure to stdin, which can never shed.

use crate::common::{ReproError, Result};
use cnfet_opt::OptService;
use cnfet_pipeline::{Client, RouterConfig, ServiceConfig, ShardRouter};
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::time::Duration;

/// Configuration of one daemon session, parsed from the CLI.
pub struct ServeOptions {
    /// Sweep worker-thread override (`--workers`).
    pub workers: Option<usize>,
    /// Curve-cache capacity override (`--curve-cache`).
    pub curve_cache: Option<usize>,
    /// Number of service shards (`--shards`, default 1).
    pub shards: Option<usize>,
    /// Bound of each shard's admission queue (`--queue-depth`).
    pub queue_depth: Option<usize>,
    /// Admission policy: `block` (backpressure, default) or `shed`
    /// (answer `overloaded` when the shard queue is full).
    pub admission: Option<String>,
}

/// Whether a full shard queue blocks the intake loop or sheds the request.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Admission {
    Block,
    Shed,
}

/// SIGTERM-triggered drain, without a signal-handling dependency: the
/// handler only stores to a static atomic (async-signal-safe), and the
/// intake loop polls the flag between lines.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FLAG: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigterm(_signum: i32) {
        FLAG.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }

    pub fn received() -> bool {
        FLAG.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub fn install() {}

    pub fn received() -> bool {
        false
    }
}

/// Run the daemon loop over stdin/stdout until EOF, SIGTERM, or client
/// hang-up — always draining in-flight responses before returning.
pub fn run(options: &ServeOptions) -> Result<()> {
    let mut config = ServiceConfig::default();
    if let Some(workers) = options.workers {
        if workers == 0 {
            return Err(ReproError::Usage("--workers must be >= 1".into()));
        }
        config.sweep_workers = workers;
    }
    if let Some(capacity) = options.curve_cache {
        if capacity == 0 {
            return Err(ReproError::Usage("--curve-cache must be >= 1".into()));
        }
        config.cache.curve_capacity = capacity;
    }
    let mut router_config = RouterConfig::default();
    if let Some(shards) = options.shards {
        if shards == 0 {
            return Err(ReproError::Usage("--shards must be >= 1".into()));
        }
        router_config.shards = shards;
    }
    if let Some(depth) = options.queue_depth {
        if depth == 0 {
            return Err(ReproError::Usage("--queue-depth must be >= 1".into()));
        }
        router_config.queue_depth = depth;
    }
    let admission = match options.admission.as_deref() {
        None | Some("block") => Admission::Block,
        Some("shed") => Admission::Shed,
        Some(other) => {
            return Err(ReproError::Usage(format!(
                "--admission must be `block` or `shed`, got `{other}`"
            )));
        }
    };
    sigterm::install();

    let router = ShardRouter::new(router_config, |_| OptService::with_config(config));
    eprintln!(
        "repro serve: yield service up (schema 1 incl. co_opt, {} shard(s), queue depth {}, \
         {} sweep workers, {} curve slots/shard); one JSON request per line, ctrl-d to exit",
        router_config.shards,
        router_config.queue_depth,
        config.sweep_workers,
        config.cache.curve_capacity
    );

    let (client, responses) = Client::channel();

    // Writer: serialize responses to stdout in channel order, flushing
    // each so sweep results stream while later scenarios still compute. A
    // broken pipe means the client hung up — exiting drops the receiver,
    // which latches disconnection (and cancels in-flight sweeps) at the
    // next emit; `hung_up` lets the intake loop notice even when idle.
    // The writer must NOT hold a `Client` clone: its sender half would
    // keep the response channel open and the writer would never see
    // end-of-stream at shutdown.
    let hung_up = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let hung_up = std::sync::Arc::clone(&hung_up);
        std::thread::spawn(move || -> Result<()> {
            let mut out = std::io::stdout().lock();
            for response in responses {
                let emit = writeln!(out, "{}", response.to_json().to_string_compact())
                    .and_then(|()| out.flush());
                if let Err(e) = emit {
                    hung_up.store(true, std::sync::atomic::Ordering::Release);
                    if e.kind() == std::io::ErrorKind::BrokenPipe {
                        return Ok(());
                    }
                    return Err(e.into());
                }
            }
            Ok(())
        })
    };

    // Reader: stdin lines into a small bounded channel, so the intake
    // loop below can interleave line intake with SIGTERM/hang-up polls.
    // Detached by design — a reader blocked on a quiet stdin must not
    // delay a drain-and-exit.
    let (line_tx, line_rx) = mpsc::sync_channel::<std::io::Result<String>>(64);
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            if line_tx.send(line).is_err() {
                return;
            }
        }
    });

    let mut accepted = 0u64;
    let reason = loop {
        if sigterm::received() {
            break "sigterm";
        }
        if !client.is_connected() || hung_up.load(std::sync::atomic::Ordering::Acquire) {
            client.disconnect();
            break "client hang-up";
        }
        match line_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(Ok(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match admission {
                    Admission::Block => router.submit(line, &client),
                    Admission::Shed => {
                        router.try_submit(line, &client);
                    }
                }
                accepted += 1;
            }
            Ok(Err(e)) => return Err(e.into()),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break "eof",
        }
    };

    // Drain: stop admitting, let every queued/in-flight request finish
    // (the writer keeps delivering concurrently), then close the response
    // channel so the writer exits once it has flushed everything.
    let stats = router.shutdown();
    drop(client);
    let writer_result = writer
        .join()
        .unwrap_or_else(|_| Err(ReproError::Usage("response writer panicked".into())));
    eprintln!(
        "repro serve: {reason} after {accepted} requests; stats {}",
        stats.to_json().to_string_compact()
    );
    writer_result
}
