//! Table 2 — area penalty of the aligned-active restriction on the two
//! standard-cell libraries, plus the resulting `W_min` values.

use crate::common::{analysis, banner, design_stats, write_csv, Comparison, Result};
use cnfet_celllib::commercial65::commercial65_like;
use cnfet_celllib::nangate45::nangate45_like;
use cnfet_core::corner::ProcessCorner;
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_core::wmin::WminSolver;
use cnfet_layout::{align_library, AlignmentOptions, GridPolicy, LibraryAlignment};
use cnfet_plot::Table;

struct Column {
    label: String,
    cells: usize,
    penalized_pct: f64,
    min_penalty: Option<f64>,
    max_penalty: Option<f64>,
    w_min: f64,
}

fn column(label: &str, aligned: &LibraryAlignment, w_min: f64) -> Column {
    Column {
        label: label.to_string(),
        cells: aligned.total_cells(),
        penalized_pct: aligned.penalized_fraction() * 100.0,
        min_penalty: aligned.min_penalty(),
        max_penalty: aligned.max_penalty(),
        w_min,
    }
}

/// Run the experiment.
pub fn run(fast: bool) -> Result<()> {
    banner(
        "TABLE 2",
        "Area penalty on standard-cell libraries for the aligned-active style",
    );

    let single = AlignmentOptions::default();
    let dual = AlignmentOptions {
        policy: GridPolicy::Dual,
        ..AlignmentOptions::default()
    };

    // --- 65 nm commercial-class library --------------------------------
    let c65 = commercial65_like();
    let a65_single = align_library(&c65, &single).map_err(analysis)?;
    let a65_dual = align_library(&c65, &dual).map_err(analysis)?;

    // W_min at 65 nm: the correlation density comes from the design mapped
    // onto the 65 nm library (bigger cells → fewer critical FETs per µm).
    let stats65 = design_stats(&c65, fast)?;
    let model = FailureModel::paper_default(ProcessCorner::aggressive().map_err(analysis)?)
        .map_err(analysis)?;
    let solver = WminSolver::new(model);
    let m_min = paper::MMIN_FRACTION * paper::M_TRANSISTORS;
    let row65 = RowModel::from_design(paper::L_CNT_UM, stats65.rho_per_um).map_err(analysis)?;
    let w65_single = solver
        .solve_relaxed(paper::YIELD_TARGET, m_min, row65.relaxation())
        .map_err(analysis)?
        .w_min;
    let w65_dual = solver
        .solve_relaxed(
            paper::YIELD_TARGET,
            m_min,
            row65
                .with_grid_division(2.0)
                .map_err(analysis)?
                .relaxation(),
        )
        .map_err(analysis)?
        .w_min;

    // --- Nangate-45-class library ---------------------------------------
    let n45 = nangate45_like();
    let a45_single = align_library(&n45, &single).map_err(analysis)?;
    let stats45 = design_stats(&n45, fast)?;
    let row45 = RowModel::from_design(paper::L_CNT_UM, stats45.rho_per_um).map_err(analysis)?;
    let w45_single = solver
        .solve_relaxed(paper::YIELD_TARGET, m_min, row45.relaxation())
        .map_err(analysis)?
        .w_min;

    println!(
        "  measured rho: 45 nm design {:.2} FET/um (paper 1.8), 65 nm design {:.2} FET/um",
        stats45.rho_per_um, stats65.rho_per_um
    );

    let cols = [
        column("65nm, one aligned region", &a65_single, w65_single),
        column("65nm, two aligned regions", &a65_dual, w65_dual),
        column("Nangate 45nm, one region", &a45_single, w45_single),
    ];

    let fmt_pen = |p: Option<f64>| -> String {
        match p {
            Some(v) => format!("{:.0} %", v * 100.0),
            None => "0 %".into(),
        }
    };
    let mut out = Table::new(
        "Table 2 — measured",
        &["quantity", &cols[0].label, &cols[1].label, &cols[2].label],
    );
    out.add_row(&[
        "# std. cells".into(),
        cols[0].cells.to_string(),
        cols[1].cells.to_string(),
        cols[2].cells.to_string(),
    ])
    .expect("4 cols");
    out.add_row(&[
        "cells with area penalty".into(),
        format!("{:.1} %", cols[0].penalized_pct),
        format!("{:.1} %", cols[1].penalized_pct),
        format!("{:.1} %", cols[2].penalized_pct),
    ])
    .expect("4 cols");
    out.add_row(&[
        "min penalty".into(),
        fmt_pen(cols[0].min_penalty),
        fmt_pen(cols[1].min_penalty),
        fmt_pen(cols[2].min_penalty),
    ])
    .expect("4 cols");
    out.add_row(&[
        "max penalty".into(),
        fmt_pen(cols[0].max_penalty),
        fmt_pen(cols[1].max_penalty),
        fmt_pen(cols[2].max_penalty),
    ])
    .expect("4 cols");
    out.add_row(&[
        "W_min (nm)".into(),
        format!("{:.0}", cols[0].w_min),
        format!("{:.0}", cols[1].w_min),
        format!("{:.0}", cols[2].w_min),
    ])
    .expect("4 cols");
    println!("{}", out.to_markdown());

    let mut cmp = Comparison::new("Table 2 vs paper");
    cmp.add(
        "65 nm cells penalized (one region)",
        format!("~{:.0} %", paper::COMMERCIAL65_PENALIZED_FRACTION * 100.0),
        format!("{:.1} %", cols[0].penalized_pct),
        (cols[0].penalized_pct / 100.0 - paper::COMMERCIAL65_PENALIZED_FRACTION).abs() < 0.07,
    );
    cmp.add(
        "65 nm penalty range (one region)",
        format!(
            "{:.0}-{:.0} %",
            paper::COMMERCIAL65_PENALTY_RANGE.0 * 100.0,
            paper::COMMERCIAL65_PENALTY_RANGE.1 * 100.0
        ),
        format!(
            "{}-{}",
            fmt_pen(cols[0].min_penalty),
            fmt_pen(cols[0].max_penalty)
        ),
        cols[0].min_penalty.unwrap_or(0.0) < 0.2 && cols[0].max_penalty.unwrap_or(0.0) > 0.25,
    );
    cmp.add(
        "65 nm cells penalized (two regions)",
        "0".into(),
        format!("{:.1} %", cols[1].penalized_pct),
        cols[1].penalized_pct == 0.0,
    );
    cmp.add(
        "Nangate cells penalized",
        format!(
            "{} of {} (3 %)",
            paper::NANGATE_PENALIZED_CELLS,
            paper::NANGATE_CELLS
        ),
        format!(
            "{} of {} ({:.0} %)",
            a45_single.penalized().len(),
            cols[2].cells,
            cols[2].penalized_pct
        ),
        a45_single.penalized().len() == paper::NANGATE_PENALIZED_CELLS,
    );
    cmp.add(
        "W_min 65/one, 65/two, 45 (nm)",
        format!(
            "{:.0}, {:.0}, {:.0}",
            paper::TABLE2_WMIN_NM.0,
            paper::TABLE2_WMIN_NM.1,
            paper::TABLE2_WMIN_NM.2
        ),
        format!(
            "{:.0}, {:.0}, {:.0}",
            cols[0].w_min, cols[1].w_min, cols[2].w_min
        ),
        (cols[0].w_min - paper::TABLE2_WMIN_NM.0).abs() < 10.0
            && (cols[1].w_min - paper::TABLE2_WMIN_NM.1).abs() < 10.0
            && (cols[2].w_min - paper::TABLE2_WMIN_NM.2).abs() < 10.0,
    );
    cmp.add(
        "two grids cost < 5 % extra W_min",
        "yes".into(),
        format!("{:.1} %", (cols[1].w_min / cols[0].w_min - 1.0) * 100.0),
        cols[1].w_min / cols[0].w_min < 1.06,
    );
    let cmp_table = cmp.finish();

    write_csv("table2", &out)?;
    write_csv("table2-comparison", &cmp_table)?;
    Ok(())
}
