//! Table 2 — area penalty of the aligned-active restriction on the two
//! standard-cell libraries, plus the resulting `W_min` values.
//!
//! The three columns are three `ScenarioSpec`s (65 nm one grid, 65 nm two
//! grids, Nangate-45 one grid) evaluated by the pipeline on one shared
//! `pF(W)` curve; alignment statistics come from the pipeline's cached
//! library transforms.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_layout::GridPolicy;
use cnfet_pipeline::{CorrelationSpec, LibrarySpec, ScenarioReport, ScenarioSpec};
use cnfet_plot::Table;

struct Column {
    label: String,
    cells: usize,
    penalized_pct: f64,
    min_penalty: Option<f64>,
    max_penalty: Option<f64>,
    w_min: f64,
}

/// One Table 2 column: the correlated `W_min` on a library with a given
/// grid policy, with the density measured from the mapped design.
fn spec(name: &str, library: LibrarySpec, grid: GridPolicy, fast: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(name);
    spec.library = library;
    spec.node_nm = library.node_nm();
    spec.correlation = CorrelationSpec::GrowthAlignedLayout;
    spec.grid = grid;
    spec.fast_design = fast;
    spec
}

/// Run the experiment.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "TABLE 2",
        "Area penalty on standard-cell libraries for the aligned-active style",
    );

    let specs = [
        spec(
            "table2/65nm-one-region",
            LibrarySpec::Commercial65,
            GridPolicy::Single,
            ctx.fast,
        ),
        spec(
            "table2/65nm-two-regions",
            LibrarySpec::Commercial65,
            GridPolicy::Dual,
            ctx.fast,
        ),
        spec(
            "table2/nangate45-one-region",
            LibrarySpec::Nangate45,
            GridPolicy::Single,
            ctx.fast,
        ),
    ];
    let reports: Vec<ScenarioReport> = ctx
        .service
        .sweep(specs.to_vec(), ctx.seed_or(20100613))
        .map(|item| item.report)
        .collect::<cnfet_pipeline::Result<_>>()?;

    let a65_single = ctx
        .pipeline()
        .aligned_library(LibrarySpec::Commercial65, GridPolicy::Single)?;
    let a65_dual = ctx
        .pipeline()
        .aligned_library(LibrarySpec::Commercial65, GridPolicy::Dual)?;
    let a45_single = ctx
        .pipeline()
        .aligned_library(LibrarySpec::Nangate45, GridPolicy::Single)?;

    let stats65 = ctx
        .pipeline()
        .design_stats(LibrarySpec::Commercial65, ctx.fast)?;
    let stats45 = ctx
        .pipeline()
        .design_stats(LibrarySpec::Nangate45, ctx.fast)?;
    println!(
        "  measured rho: 45 nm design {:.2} FET/um (paper 1.8), 65 nm design {:.2} FET/um",
        stats45.rho_per_um, stats65.rho_per_um
    );

    let column = |label: &str, aligned: &cnfet_layout::LibraryAlignment, w_min: f64| Column {
        label: label.to_string(),
        cells: aligned.total_cells(),
        penalized_pct: aligned.penalized_fraction() * 100.0,
        min_penalty: aligned.min_penalty(),
        max_penalty: aligned.max_penalty(),
        w_min,
    };
    let cols = [
        column("65nm, one aligned region", &a65_single, reports[0].w_min_nm),
        column("65nm, two aligned regions", &a65_dual, reports[1].w_min_nm),
        column("Nangate 45nm, one region", &a45_single, reports[2].w_min_nm),
    ];

    let fmt_pen = |p: Option<f64>| -> String {
        match p {
            Some(v) => format!("{:.0} %", v * 100.0),
            None => "0 %".into(),
        }
    };
    let mut out = Table::new(
        "Table 2 — measured",
        &["quantity", &cols[0].label, &cols[1].label, &cols[2].label],
    );
    out.add_row(&[
        "# std. cells".into(),
        cols[0].cells.to_string(),
        cols[1].cells.to_string(),
        cols[2].cells.to_string(),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "cells with area penalty".into(),
        format!("{:.1} %", cols[0].penalized_pct),
        format!("{:.1} %", cols[1].penalized_pct),
        format!("{:.1} %", cols[2].penalized_pct),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "min penalty".into(),
        fmt_pen(cols[0].min_penalty),
        fmt_pen(cols[1].min_penalty),
        fmt_pen(cols[2].min_penalty),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "max penalty".into(),
        fmt_pen(cols[0].max_penalty),
        fmt_pen(cols[1].max_penalty),
        fmt_pen(cols[2].max_penalty),
    ])
    .map_err(analysis)?;
    out.add_row(&[
        "W_min (nm)".into(),
        format!("{:.0}", cols[0].w_min),
        format!("{:.0}", cols[1].w_min),
        format!("{:.0}", cols[2].w_min),
    ])
    .map_err(analysis)?;
    println!("{}", out.to_markdown());

    let mut cmp = Comparison::new("Table 2 vs paper");
    cmp.add(
        "65 nm cells penalized (one region)",
        format!("~{:.0} %", paper::COMMERCIAL65_PENALIZED_FRACTION * 100.0),
        format!("{:.1} %", cols[0].penalized_pct),
        (cols[0].penalized_pct / 100.0 - paper::COMMERCIAL65_PENALIZED_FRACTION).abs() < 0.07,
    )?;
    cmp.add(
        "65 nm penalty range (one region)",
        format!(
            "{:.0}-{:.0} %",
            paper::COMMERCIAL65_PENALTY_RANGE.0 * 100.0,
            paper::COMMERCIAL65_PENALTY_RANGE.1 * 100.0
        ),
        format!(
            "{}-{}",
            fmt_pen(cols[0].min_penalty),
            fmt_pen(cols[0].max_penalty)
        ),
        cols[0].min_penalty.unwrap_or(0.0) < 0.2 && cols[0].max_penalty.unwrap_or(0.0) > 0.25,
    )?;
    cmp.add(
        "65 nm cells penalized (two regions)",
        "0".into(),
        format!("{:.1} %", cols[1].penalized_pct),
        cols[1].penalized_pct == 0.0,
    )?;
    cmp.add(
        "Nangate cells penalized",
        format!(
            "{} of {} (3 %)",
            paper::NANGATE_PENALIZED_CELLS,
            paper::NANGATE_CELLS
        ),
        format!(
            "{} of {} ({:.0} %)",
            a45_single.penalized().len(),
            cols[2].cells,
            cols[2].penalized_pct
        ),
        a45_single.penalized().len() == paper::NANGATE_PENALIZED_CELLS,
    )?;
    cmp.add(
        "W_min 65/one, 65/two, 45 (nm)",
        format!(
            "{:.0}, {:.0}, {:.0}",
            paper::TABLE2_WMIN_NM.0,
            paper::TABLE2_WMIN_NM.1,
            paper::TABLE2_WMIN_NM.2
        ),
        format!(
            "{:.0}, {:.0}, {:.0}",
            cols[0].w_min, cols[1].w_min, cols[2].w_min
        ),
        (cols[0].w_min - paper::TABLE2_WMIN_NM.0).abs() < 10.0
            && (cols[1].w_min - paper::TABLE2_WMIN_NM.1).abs() < 10.0
            && (cols[2].w_min - paper::TABLE2_WMIN_NM.2).abs() < 10.0,
    )?;
    cmp.add(
        "two grids cost < 5 % extra W_min",
        "yes".into(),
        format!("{:.1} %", (cols[1].w_min / cols[0].w_min - 1.0) * 100.0),
        cols[1].w_min / cols[0].w_min < 1.06,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "table2", &out)?;
    write_csv(ctx, "table2-comparison", &cmp_table)?;
    Ok(())
}
