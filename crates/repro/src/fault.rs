//! `fault <spec.json>` — evaluate a purity/redundancy scenario and sweep
//! the purity requirement across redundancy schemes.
//!
//! The spec file is a plain scenario document (the same keys `sweep`
//! defaults and coopt `base` sections accept) whose `purity` and
//! `redundancy` knobs exercise the `cnfet-fault` subsystem. The run
//! prints the scenario's fault provenance block, then sweeps a purity
//! ladder under three redundancy schemes to show the paper-level
//! trade-off: every added layer of redundancy relaxes the s-CNT purity
//! the process has to deliver at the same chip-yield target.

use crate::common::{banner, write_csv, Result, RunContext};
use cnfet_fault::RedundancyScheme;
use cnfet_pipeline::{Json, ScenarioSpec};
use cnfet_plot::Table;
use cnt_stats::DistSpec;

/// Impurity ladder for the requirement sweep (defect fraction `1 − purity`,
/// most to least contaminated).
const IMPURITY_LADDER: [f64; 7] = [1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11];

/// Run a fault scenario file through the engine.
pub fn run(ctx: &RunContext, spec_file: &str) -> Result<()> {
    banner("FAULT", &format!("fault scenario `{spec_file}`"));

    let src = std::fs::read_to_string(spec_file)?;
    let mut spec = ScenarioSpec::from_json(&Json::parse(&src)?)?;
    if ctx.fast {
        spec.fast_design = true;
    }
    let seed = ctx.seed_or(20100614);

    let report = ctx.service.evaluate(&spec, seed)?;
    println!(
        "  `{}`: W_min {:.1} nm, penalty {:.4} (seed {seed})",
        report.name, report.w_min_nm, report.upsizing_penalty,
    );
    let Some(fault) = &report.fault else {
        println!("  spec has no purity/redundancy knobs active — nothing to analyze");
        return Ok(());
    };
    let mut block = Table::new("fault provenance", &["quantity", "value"]);
    for (k, v) in [
        ("purity", format!("{}", fault.purity)),
        ("mode", fault.mode.clone()),
        ("p_short", format!("{:.3e}", fault.p_short)),
        ("scheme", fault.scheme.clone()),
        ("area_overhead", format!("{:.4}", fault.area_overhead)),
        ("p_budget", format!("{:.3e}", fault.p_budget)),
        ("recovered_yield", format!("{:.6}", fault.recovered_yield)),
        ("shortfall", format!("{:.3e}", fault.shortfall)),
        ("method", fault.method.clone()),
        ("met_target", format!("{}", fault.met_target)),
    ] {
        block
            .add_row(&[k.to_string(), v])
            .map_err(crate::common::analysis)?;
    }
    println!("{}", block.to_markdown());

    // The requirement sweep: for each scheme, walk the impurity ladder
    // from dirty to clean and report the first purity that meets the
    // target. Short-mode purity shares one failure curve across the
    // whole sweep, so this is cheap.
    let schemes: Vec<RedundancyScheme> = {
        let mut s = vec![
            RedundancyScheme::None,
            RedundancyScheme::Tmr,
            RedundancyScheme::SpareUnits {
                spares: 8,
                unit_size: 65_536,
            },
        ];
        if !s.contains(&spec.redundancy) {
            s.push(spec.redundancy);
        }
        s
    };
    let mut sweep = Table::new(
        "required purity vs redundancy (at the spec's yield target)",
        &[
            "scheme",
            "area_overhead",
            "required_purity",
            "recovered_yield",
        ],
    );
    for scheme in schemes {
        let mut found: Option<(f64, f64)> = None;
        let mut overhead = 0.0;
        for impurity in IMPURITY_LADDER {
            let mut probe = spec.clone();
            probe.name = format!("{}-{}-{impurity:e}", spec.name, scheme.name());
            probe.redundancy = scheme;
            probe.purity.dist = DistSpec::Fixed(1.0 - impurity);
            let r = ctx.service.evaluate(&probe, seed)?;
            let f = r.fault.as_ref().expect("fault knobs are active");
            overhead = f.area_overhead;
            if f.met_target {
                found = Some((1.0 - impurity, f.recovered_yield));
                break;
            }
        }
        sweep
            .add_row(&[
                scheme.name().to_string(),
                format!("{overhead:.4}"),
                match found {
                    Some((p, _)) => format!("{p:.12}"),
                    None => "> ladder".to_string(),
                },
                match found {
                    Some((_, y)) => format!("{y:.6}"),
                    None => "-".to_string(),
                },
            ])
            .map_err(crate::common::analysis)?;
    }
    println!("{}", sweep.to_markdown());
    write_csv(ctx, &format!("{}-fault", report.name), &sweep)?;
    Ok(())
}
