//! Fig 2.2a — transistor width distribution of the OpenRISC-class core
//! synthesized onto the Nangate-45-class library.

use crate::common::{analysis, banner, write_csv, Comparison, Result, RunContext};
use cnfet_core::paper;
use cnfet_netlist::mapping::MappedDesign;
use cnfet_netlist::synth::{openrisc_class, DesignSpec};
use cnfet_pipeline::LibrarySpec;
use cnfet_plot::{BarChart, Table};

/// Run the experiment. `--fast` shrinks the generated design.
pub fn run(ctx: &RunContext) -> Result<()> {
    banner(
        "FIG 2.2a",
        "Transistor width distribution of an OpenRISC-class core (Nangate-45-class)",
    );

    let lib = ctx.pipeline().library(LibrarySpec::Nangate45);
    let spec = if ctx.fast {
        DesignSpec::small()
    } else {
        DesignSpec::openrisc()
    };
    let netlist = openrisc_class(&spec, 42);
    let mapped = MappedDesign::map(&netlist, &lib).map_err(analysis)?;

    println!(
        "  design: {} instances, {} transistors",
        netlist.instance_count(),
        mapped.transistor_count()
    );

    let hist = mapped
        .width_histogram(paper::FIG22A_BIN_NM, 480.0)
        .map_err(analysis)?;
    let mut chart = BarChart::new("fraction of transistors per 80-nm width bin", 40);
    let mut csv = Table::new("fig2-2a data", &["bin_lo_nm", "bin_hi_nm", "fraction"]);
    for i in 0..hist.nbins() {
        chart.add_bar(
            format!("{:>3.0}-{:<3.0}", hist.bin_lo(i), hist.bin_hi(i)),
            hist.bin_fraction(i),
        );
        csv.add_row(&[
            format!("{}", hist.bin_lo(i)),
            format!("{}", hist.bin_hi(i)),
            format!("{:.4}", hist.bin_fraction(i)),
        ])
        .map_err(analysis)?;
    }
    println!("{}", chart.render().map_err(analysis)?);

    let two_bins = hist.bin_fraction(0) + hist.bin_fraction(1);
    let mut cmp = Comparison::new("Fig 2.2a calibration");
    cmp.add(
        "two leftmost bins (M_min share)",
        format!("{:.0} %", paper::MMIN_FRACTION * 100.0),
        format!("{:.1} %", two_bins * 100.0),
        (two_bins - paper::MMIN_FRACTION).abs() < 0.05,
    )?;
    let frac155 = mapped.fraction_below(paper::WMIN_UNCORRELATED_NM);
    cmp.add(
        "fraction below W_min = 155 nm",
        format!("{:.0} %", paper::MMIN_FRACTION * 100.0),
        format!("{:.1} %", frac155 * 100.0),
        (frac155 - paper::MMIN_FRACTION).abs() < 0.05,
    )?;
    let cmp_table = cmp.finish();

    write_csv(ctx, "fig2-2a", &csv)?;
    write_csv(ctx, "fig2-2a-comparison", &cmp_table)?;
    Ok(())
}
