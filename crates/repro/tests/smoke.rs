//! Smoke tests: the `repro` binary's figure/table subcommands must run to
//! completion and print non-empty, finite output (no NaN/inf leaking into a
//! paper table).

use std::path::Path;
use std::process::Command;

/// Run one repro subcommand in `--fast` mode inside an isolated working
/// directory (the binary writes `results/*.csv` relative to its cwd) and
/// return its stdout.
fn run_subcommand(name: &str) -> String {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("repro-smoke-{name}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([name, "--fast"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "`repro {name} --fast` failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");

    // Every CSV the run announced must exist and be non-empty.
    let results = dir.join("results");
    let mut csvs = 0;
    if results.is_dir() {
        for entry in std::fs::read_dir(&results).expect("read results dir") {
            let path = entry.expect("dir entry").path();
            let body = std::fs::read_to_string(&path).expect("read csv");
            assert!(!body.trim().is_empty(), "{} is empty", path.display());
            assert_finite(&body, &path.display().to_string());
            csvs += 1;
        }
    }
    assert!(csvs > 0, "`repro {name}` wrote no CSV results");
    stdout
}

/// Assert the text contains at least one number and no NaN/inf tokens.
fn assert_finite(text: &str, what: &str) {
    let lowered = text.to_lowercase();
    for bad in ["nan", "-inf", "inf,", " inf", "infinity"] {
        assert!(
            !lowered.contains(bad),
            "{what} contains non-finite value `{bad}`:\n{text}"
        );
    }
    assert!(
        text.chars().any(|c| c.is_ascii_digit()),
        "{what} contains no numeric output:\n{text}"
    );
}

#[test]
fn fig2_1_runs_and_prints_finite_output() {
    let stdout = run_subcommand("fig2-1");
    assert!(!stdout.trim().is_empty(), "no stdout from fig2-1");
    assert_finite(&stdout, "fig2-1 stdout");
    // The figure sweeps pF over widths for the three corners.
    assert!(
        stdout.contains("pF") || stdout.to_lowercase().contains("failure"),
        "fig2-1 output does not mention the failure probability:\n{stdout}"
    );
}

#[test]
fn table1_runs_and_prints_finite_output() {
    let stdout = run_subcommand("table1");
    assert!(!stdout.trim().is_empty(), "no stdout from table1");
    assert_finite(&stdout, "table1 stdout");
    // Table 1 compares the three growth/layout scenarios.
    assert!(
        stdout.to_lowercase().contains("scenario") || stdout.contains("p_RF"),
        "table1 output does not look like Table 1:\n{stdout}"
    );
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("no-such-figure")
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
}
