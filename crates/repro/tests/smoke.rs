//! Smoke tests: the `repro` binary's figure/table subcommands must run to
//! completion and print non-empty, finite output (no NaN/inf leaking into a
//! paper table).

use std::path::Path;
use std::process::Command;

/// Run one repro subcommand in `--fast` mode inside an isolated working
/// directory (the binary writes `results/*.csv` relative to its cwd) and
/// return its stdout.
fn run_subcommand(name: &str) -> String {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("repro-smoke-{name}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([name, "--fast"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "`repro {name} --fast` failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");

    // Every CSV the run announced must exist and be non-empty.
    let results = dir.join("results");
    let mut csvs = 0;
    if results.is_dir() {
        for entry in std::fs::read_dir(&results).expect("read results dir") {
            let path = entry.expect("dir entry").path();
            let body = std::fs::read_to_string(&path).expect("read csv");
            assert!(!body.trim().is_empty(), "{} is empty", path.display());
            assert_finite(&body, &path.display().to_string());
            csvs += 1;
        }
    }
    assert!(csvs > 0, "`repro {name}` wrote no CSV results");
    stdout
}

/// Assert the text contains at least one number and no NaN/inf tokens
/// (token-wise, so words like "nangate45" do not false-positive).
fn assert_finite(text: &str, what: &str) {
    for token in text.split(|c: char| !(c.is_ascii_alphanumeric() || "+-.".contains(c))) {
        let core = token
            .trim_matches(|c| c == '+' || c == '-' || c == '.')
            .to_lowercase();
        assert!(
            core != "nan" && core != "inf" && core != "infinity",
            "{what} contains non-finite value `{token}`:\n{text}"
        );
    }
    assert!(
        text.chars().any(|c| c.is_ascii_digit()),
        "{what} contains no numeric output:\n{text}"
    );
}

#[test]
fn fig2_1_runs_and_prints_finite_output() {
    let stdout = run_subcommand("fig2-1");
    assert!(!stdout.trim().is_empty(), "no stdout from fig2-1");
    assert_finite(&stdout, "fig2-1 stdout");
    // The figure sweeps pF over widths for the three corners.
    assert!(
        stdout.contains("pF") || stdout.to_lowercase().contains("failure"),
        "fig2-1 output does not mention the failure probability:\n{stdout}"
    );
}

#[test]
fn table1_runs_and_prints_finite_output() {
    let stdout = run_subcommand("table1");
    assert!(!stdout.trim().is_empty(), "no stdout from table1");
    assert_finite(&stdout, "table1 stdout");
    // Table 1 compares the three growth/layout scenarios.
    assert!(
        stdout.to_lowercase().contains("scenario") || stdout.contains("p_RF"),
        "table1 output does not look like Table 1:\n{stdout}"
    );
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("no-such-figure")
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
}

#[test]
fn out_dir_flag_redirects_artifacts() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("repro-smoke-outdir");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let custom = dir.join("custom-results");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2-1", "--fast", "--out-dir"])
        .arg(&custom)
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        custom.join("fig2-1.csv").is_file(),
        "--out-dir must receive the CSVs"
    );
    assert!(
        !dir.join("results").exists(),
        "default results/ must not be created when --out-dir is given"
    );
}

#[test]
fn seed_flag_changes_mc_results_and_default_seed_is_stable() {
    let run = |label: &str, extra: &[&str]| -> String {
        let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("repro-smoke-seed-{label}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["table1", "--fast"])
            .args(extra)
            .current_dir(&dir)
            .output()
            .expect("spawn repro binary");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join("results/table1.csv")).expect("table1 csv")
    };
    let default_a = run("a", &[]);
    let default_b = run("b", &[]);
    assert_eq!(default_a, default_b, "default seed must be deterministic");
    let seeded = run("c", &["--seed", "12345"]);
    assert_ne!(
        default_a, seeded,
        "--seed must reach the conditional-MC estimator"
    );
}

#[test]
fn sweep_subcommand_runs_a_grid_file() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("repro-smoke-sweep");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let grid = dir.join("grid.json");
    std::fs::write(
        &grid,
        r#"// smoke grid: two correlation scenarios at the CLT back-end
{
  "name": "smoke",
  "defaults": { "backend": "gaussian-sum", "rho": "paper", "fast_design": true },
  "axes": { "correlation": ["none", "growth+aligned-layout"] }
}
"#,
    )
    .expect("write grid file");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sweep", "grid.json", "--workers", "2"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 scenarios"), "stdout: {stdout}");
    assert!(dir.join("results/sweep-summary.csv").is_file());
    let summary =
        std::fs::read_to_string(dir.join("results/sweep-summary.json")).expect("json artifact");
    assert!(summary.contains("w_min_nm"));
    assert_finite(&summary, "sweep-summary.json");

    // A broken grid file fails cleanly.
    std::fs::write(dir.join("bad.json"), "{ not json").expect("write bad grid");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sweep", "bad.json"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

#[test]
fn sweep_backend_override_runs_monte_carlo() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("repro-smoke-mc-backend");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let grid = dir.join("grid.json");
    std::fs::write(
        &grid,
        r#"{
  "name": "mc-smoke",
  "defaults": { "rho": "paper", "fast_design": true },
  "axes": { "correlation": ["none", "growth+aligned-layout"] }
}
"#,
    )
    .expect("write grid file");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "sweep",
            "grid.json",
            "--backend",
            r#"{"monte-carlo": {"rel_ci": 0.15, "max_trials": 100000, "batch": 1000}}"#,
            "--seed",
            "7",
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("backend override: monte-carlo"),
        "stdout: {stdout}"
    );
    let summary =
        std::fs::read_to_string(dir.join("results/sweep-summary.json")).expect("json artifact");
    assert!(summary.contains("\"backend\": \"monte-carlo\""));
    assert!(
        summary.contains("\"trials\"") && summary.contains("\"ci_hi\""),
        "MC provenance must land in the artifact: {summary}"
    );
    assert_finite(&summary, "mc sweep-summary.json");

    // A bogus override fails cleanly before any evaluation.
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sweep", "grid.json", "--backend", "quantum"])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));

    // --backend outside `sweep` is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2-1", "--backend", "monte-carlo"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--backend"));
}

#[test]
fn bad_flag_values_fail_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2-1", "--seed", "not-a-number"])
        .output()
        .expect("spawn repro binary");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--seed"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}
