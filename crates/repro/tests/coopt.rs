//! Acceptance tests of the `repro coopt` subcommand: the example trade
//! study runs end-to-end and its Pareto artifact is byte-identical for
//! any `--workers` value.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf()
}

/// Run `repro coopt` on an example spec with a given worker count in an
/// isolated scratch directory; return (stdout, artifact bytes).
fn run_coopt_spec(spec_rel: &str, artifact_rel: &str, tag: &str, workers: u32) -> (String, String) {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("repro-coopt-{tag}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let spec = repo_root().join(spec_rel);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "coopt",
            spec.to_str().expect("utf-8 path"),
            "--workers",
            &workers.to_string(),
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "`repro coopt --workers {workers}` failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let artifact = dir.join("results").join(artifact_rel);
    let bytes = std::fs::read_to_string(&artifact)
        .unwrap_or_else(|e| panic!("artifact {}: {e}", artifact.display()));
    (stdout, bytes)
}

fn run_coopt(tag: &str, workers: u32) -> (String, String) {
    run_coopt_spec(
        "examples/coopt/correlation_tradeoff.json",
        "correlation-tradeoff.coopt.json",
        tag,
        workers,
    )
}

#[test]
fn example_artifact_is_byte_identical_across_worker_counts() {
    let (stdout, one) = run_coopt("w1", 1);
    let (_, eight) = run_coopt("w8", 8);
    assert_eq!(
        one, eight,
        "the Pareto artifact must not depend on --workers"
    );
    assert!(
        stdout.contains("pareto front"),
        "stdout must render the front:\n{stdout}"
    );

    // The artifact parses back as a typed report and carries the paper's
    // qualitative result: along the single-grid slice, W_min strictly
    // decreases as the correlation length grows.
    let report = cnfet_pipeline::CoOptReport::from_json(
        &cnfet_pipeline::Json::parse(&one).expect("valid JSON artifact"),
    )
    .expect("typed artifact");
    assert_eq!(report.name, "correlation-tradeoff");
    assert_eq!(report.candidates, 16);
    assert_eq!(report.evaluations, 16, "the grid scan is exhaustive");
    let front = report.front.points();
    assert!(
        front.len() >= 3,
        "at least three correlation settings survive on the front"
    );
    // The paper's qualitative result, read straight off the front: every
    // step up in process demand (longer CNTs / stricter layout) buys a
    // strictly smaller W_min at the fixed 90 % yield target.
    for pair in front.windows(2) {
        assert!(pair[0].demand <= pair[1].demand, "front sorted by demand");
        assert!(
            pair[1].w_min_nm < pair[0].w_min_nm,
            "W_min must strictly decrease along the front: {} then {}",
            pair[0].scenario,
            pair[1].scenario
        );
    }
    // Table 2 anchor: the paper's ~350× relaxation (M_Rmin = 360) sits at
    // the correlated threshold, the 103 nm Nangate column.
    let anchored = front
        .iter()
        .find(|p| (p.relaxation - 360.0).abs() < 1.0)
        .expect("the paper's relaxation corner is on the front");
    assert!(
        (anchored.w_min_nm - 103.0).abs() < 8.0,
        "Table 2 Nangate column: measured {} nm",
        anchored.w_min_nm
    );
    // The cheapest candidate is the most process-demanding corner: the
    // longest correlation length on the single aligned grid.
    assert!(
        report.best.scenario.contains("l_cnt_um=400")
            && report.best.scenario.contains("grid=single"),
        "best: {}",
        report.best.scenario
    );
}

#[test]
fn genetic_example_artifact_is_byte_identical_across_worker_counts() {
    // The adaptive path: halving+genetic over seven axes with the
    // Monte-Carlo back-end. Search decisions are sequential and seeded,
    // so `--workers` must still not change a byte — including the
    // `search` provenance block.
    let (stdout, one) = run_coopt_spec(
        "examples/coopt/genetic_7axis.json",
        "genetic-7axis.coopt.json",
        "genetic-w1",
        1,
    );
    let (_, eight) = run_coopt_spec(
        "examples/coopt/genetic_7axis.json",
        "genetic-7axis.coopt.json",
        "genetic-w8",
        8,
    );
    assert_eq!(
        one, eight,
        "the adaptive Pareto artifact must not depend on --workers"
    );
    assert!(
        stdout.contains("searcher `halving+genetic`"),
        "stdout must name the composed strategy:\n{stdout}"
    );
    assert!(
        stdout.contains("rung 0:"),
        "stdout must render the precision ladder:\n{stdout}"
    );

    let report = cnfet_pipeline::CoOptReport::from_json(
        &cnfet_pipeline::Json::parse(&one).expect("valid JSON artifact"),
    )
    .expect("typed artifact");
    assert_eq!(report.name, "genetic-7axis");
    assert_eq!(report.searcher, "halving+genetic");
    assert_eq!(report.candidates, 288);
    assert!(
        report.evaluations * 2 < report.candidates,
        "the ladder must confirm far fewer candidates than the space: {} of {}",
        report.evaluations,
        report.candidates
    );
    let search = report.search.expect("adaptive artifact carries provenance");
    assert_eq!(search.rungs.len(), 3);
    assert_eq!(search.final_evaluations, report.evaluations);
}
