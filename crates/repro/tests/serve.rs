//! End-to-end tests of the `repro serve` JSON-lines daemon: a full
//! evaluate + sweep + describe session, byte-level determinism across
//! repeats and worker counts, and structured error behavior.

use std::io::Write;
use std::process::{Command, Stdio};

/// Run `repro serve` with `args`, feed it `input`, return its stdout.
fn serve_session(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon runs to EOF");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn session_script() -> String {
    [
        r#"{"schema":1,"id":"r1","body":{"evaluate":{"spec":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"seed":7}}}"#,
        r#"{"schema":1,"id":"r2","body":{"sweep":{"grid":{"defaults":{"backend":"gaussian-sum","rho":"paper","fast_design":true},"axes":{"correlation":["none","growth","growth+aligned-layout"]}},"seed":9}}}"#,
        r#"{"schema":1,"id":"r3","body":"describe"}"#,
        "",
    ]
    .join("\n")
}

/// The id of one response line (cheap field grab, no full JSON parse).
fn response_id(line: &str) -> &str {
    let start = line.find(r#""id":""#).expect("id field") + 6;
    &line[start..start + line[start..].find('"').expect("closing quote")]
}

#[test]
fn serve_answers_a_full_session_in_order_with_no_errors() {
    let stdout = serve_session(&[], &session_script());
    let lines: Vec<&str> = stdout.lines().collect();
    // r1 → 1 report; r2 → 3 sweep_reports + sweep_done; r3 → describe.
    assert_eq!(lines.len(), 6, "stdout:\n{stdout}");
    let ids: Vec<&str> = lines.iter().map(|l| response_id(l)).collect();
    assert_eq!(ids, ["r1", "r2", "r2", "r2", "r2", "r3"]);
    assert!(
        !stdout.contains(r#""error""#),
        "session must be error-free:\n{stdout}"
    );
    // Every line is a one-line JSON object of schema 1.
    for line in &lines {
        assert!(line.starts_with(r#"{"schema":1,"#), "line: {line}");
    }
    // The sweep streams in index order and terminates.
    assert!(lines[1].contains(r#""index":0"#));
    assert!(lines[2].contains(r#""index":1"#));
    assert!(lines[3].contains(r#""index":2"#));
    assert!(lines[4].contains(r#""sweep_done":{"total":3,"failed":0}"#));
    // Correlation shrinks W_min — the paper's claim, read off the wire.
    let w_min = |line: &str| -> f64 {
        let start = line.find(r#""w_min_nm":"#).expect("w_min field") + 11;
        line[start..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("numeric w_min")
    };
    assert!(w_min(lines[3]) < w_min(lines[1]) - 30.0);
}

#[test]
fn serve_is_byte_deterministic_across_repeats_sessions_and_workers() {
    // Identical requests repeated within one session: the second answer
    // (warm caches) must be byte-identical to the first.
    let twice = format!("{}{}", session_script(), session_script());
    let stdout = serve_session(&["--workers", "1"], &twice);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 12);
    assert_eq!(
        lines[..6].join("\n"),
        lines[6..].join("\n"),
        "warm-cache responses must repeat byte-identically"
    );
    // A fresh session with 8 workers: same bytes again.
    let eight = serve_session(&["--workers", "8"], &session_script());
    assert_eq!(
        lines[..6].join("\n"),
        eight.trim_end(),
        "worker count must never change a byte"
    );
}

#[test]
fn serve_survives_garbage_and_answers_structured_errors() {
    let script = [
        "not json at all",
        r#"{"schema":1,"id":"bad-spec","body":{"evaluate":{"spec":{"yield_target":2.0}}}}"#,
        r#"{"schema":1,"id":"typo","body":{"evaluate":{"spec":{"yeild_target":0.9}}}}"#,
        r#"{"schema":2,"id":"future","body":"describe"}"#,
        r#"{"schema":1,"id":"still-up","body":"describe"}"#,
        "",
    ]
    .join("\n");
    let stdout = serve_session(&[], &script);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout:\n{stdout}");
    assert!(lines[0].contains(r#""code":"bad_request""#));
    assert!(lines[1].contains(r#""code":"bad_spec""#));
    assert!(lines[1].contains(r#""field":"yield_target""#));
    assert!(lines[2].contains(r#""code":"unknown_key""#));
    assert!(
        lines[2].contains(r#""suggestion":"yield_target""#),
        "typo must come back with the nearest key: {}",
        lines[2]
    );
    assert!(lines[3].contains(r#""code":"unsupported_schema""#));
    assert!(lines[3].contains(r#""requested":2"#));
    // The daemon is still alive and serving after four failures.
    assert!(lines[4].contains(r#""describe""#));
    assert_eq!(response_id(lines[4]), "still-up");
}

#[test]
fn serve_shard_count_never_changes_bytes() {
    // The committed 50-request session CI replays: shard count may change
    // the interleaving across ids, never the bytes — sorting the
    // transcript makes the two runs comparable.
    let session = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/serve/determinism_session.jsonl"),
    )
    .expect("committed determinism session");
    let sorted = |args: &[&str]| {
        let mut lines: Vec<String> = serve_session(args, &session)
            .lines()
            .map(str::to_string)
            .collect();
        lines.sort();
        lines
    };
    let one = sorted(&["--shards", "1"]);
    let four = sorted(&["--shards", "4", "--queue-depth", "8"]);
    assert!(one.len() >= 50, "50 requests produce >= 50 responses");
    assert_eq!(one, four, "shard count changed response bytes");
}

#[test]
fn serve_drains_in_flight_work_on_sigterm() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    // Keep stdin open for the whole test: the exit below must be the
    // SIGTERM drain, not the EOF path.
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(
            concat!(
                r#"{"schema":1,"id":"swp","body":{"sweep":{"grid":{"defaults":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"axes":{"correlation":["none","growth","growth+aligned-layout"],"l_cnt_um":[120,140,160,180,200,220,240,260]}},"seed":1}}}"#,
                "\n"
            )
            .as_bytes(),
        )
        .expect("write sweep request");
    let mut reader = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut first = String::new();
    std::io::BufRead::read_line(&mut reader, &mut first).expect("first sweep report");
    assert!(first.contains(r#""index":0"#), "first line: {first}");
    // SIGTERM mid-sweep: the daemon must finish the 24-scenario sweep,
    // flush every response, and only then exit cleanly.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("drained responses");
    let last = rest.lines().last().expect("drained output ends the stream");
    assert!(
        last.contains(r#""sweep_done":{"total":24,"failed":0}"#),
        "sweep must complete before exit; last line: {last}"
    );
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "SIGTERM drain must exit 0");
    let mut stderr = String::new();
    std::io::Read::read_to_string(child.stderr.as_mut().expect("stderr piped"), &mut stderr)
        .expect("read stderr");
    assert!(stderr.contains("sigterm"), "stderr: {stderr}");
    drop(stdin);
}

#[test]
fn serve_validates_router_flags() {
    let fails_with = |args: &[&str], needle: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("spawn repro");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    };
    fails_with(&["serve", "--shards", "0"], "--shards must be >= 1");
    fails_with(
        &["serve", "--queue-depth", "0"],
        "--queue-depth must be >= 1",
    );
    fails_with(
        &["serve", "--admission", "bogus"],
        "--admission must be `block` or `shed`",
    );
    fails_with(
        &["fig2-1", "--shards", "2"],
        "only apply to the serve subcommand",
    );
    fails_with(
        &["fig2-1", "--admission", "shed"],
        "only applies to the serve subcommand",
    );
}

#[test]
fn serve_rejects_flags_that_belong_to_experiments() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--seed", "3"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("serve takes only"), "stderr: {stderr}");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2-1", "--curve-cache", "4"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
}
