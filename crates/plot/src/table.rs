//! Markdown and CSV table emission.

use crate::{PlotError, Result};

/// A simple column-aligned table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Errors
    ///
    /// [`PlotError::RowWidth`] if the cell count differs from the headers.
    pub fn add_row(&mut self, cells: &[String]) -> Result<()> {
        if cells.len() != self.headers.len() {
            return Err(PlotError::RowWidth {
                expected: self.headers.len(),
                found: cells.len(),
            });
        }
        self.rows.push(cells.to_vec());
        Ok(())
    }

    /// Append a row of displayable items (convenience).
    ///
    /// # Errors
    ///
    /// Same as [`Table::add_row`].
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) -> Result<()> {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&owned)
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as column-aligned markdown.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 1)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as a JSON array of objects keyed by the headers — the
    /// structured-artifact twin of [`Table::to_csv`]. Cells stay strings
    /// (they are already formatted for display); escaping covers quotes,
    /// backslashes, and control characters.
    pub fn to_json(&self) -> String {
        let quote = |c: &str| -> String {
            let mut out = String::with_capacity(c.len() + 2);
            out.push('"');
            for ch in c.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
                    ch => out.push(ch),
                }
            }
            out.push('"');
            out
        };
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (j, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quote(header));
                out.push_str(": ");
                out.push_str(&quote(cell));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Benefits", &["scenario", "pRF", "factor"]);
        t.add_row(&["uncorrelated".into(), "5.3e-6".into(), "1".into()])
            .unwrap();
        t.add_row(&["aligned".into(), "1.5e-8".into(), "353".into()])
            .unwrap();
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = table().to_markdown();
        assert!(md.contains("### Benefits"));
        assert!(md.contains("| scenario     |"));
        assert!(md.contains("| aligned      |"));
        let header_line = md.lines().nth(2).unwrap();
        let sep_line = md.lines().nth(3).unwrap();
        assert_eq!(header_line.len(), sep_line.len());
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("", &["a", "b"]);
        t.add_row(&["x,y".into(), "plain".into()]).unwrap();
        t.add_row(&["say \"hi\"".into(), "2".into()]).unwrap();
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.contains("plain"));
    }

    #[test]
    fn row_width_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        assert!(matches!(
            t.add_row(&["only one".into()]),
            Err(PlotError::RowWidth {
                expected: 2,
                found: 1
            })
        ));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn json_emission_escapes_and_keys_by_header() {
        let mut t = Table::new("", &["scenario", "value"]);
        t.add_row(&["say \"hi\"\n".into(), "1.5".into()]).unwrap();
        let json = t.to_json();
        assert!(json.contains("\"scenario\": \"say \\\"hi\\\"\\n\""));
        assert!(json.contains("\"value\": \"1.5\""));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn display_row_convenience() {
        let mut t = Table::new("t", &["a", "b"]);
        t.add_display_row(&[1.5, 2.5]).unwrap();
        assert_eq!(t.row_count(), 1);
        assert!(t.to_csv().contains("1.5,2.5"));
    }
}
