//! # cnfet-plot
//!
//! Terminal-friendly rendering for the experiment harness: ASCII line
//! charts (linear or log-y) for the paper's figures, bar charts for
//! histograms, and markdown/CSV table emitters for its tables.
//!
//! No external plotting dependency: reproduction outputs must be readable
//! in CI logs and diffable in version control.
//!
//! ## Example
//!
//! ```
//! use cnfet_plot::chart::LinePlot;
//!
//! let mut plot = LinePlot::new("pF vs W", 40, 10).log_y(true);
//! plot.add_series("pm=33%", (1..=10).map(|i| (i as f64 * 10.0, (10f64).powi(-i))).collect());
//! let text = plot.render().unwrap();
//! assert!(text.contains("pF vs W"));
//! ```

pub mod chart;
pub mod table;

use std::error::Error;
use std::fmt;

/// Error type for rendering operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PlotError {
    /// Nothing to render.
    Empty(&'static str),
    /// A value was invalid for the selected scale (e.g. non-positive on a
    /// log axis).
    InvalidValue {
        /// What was being rendered.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Inconsistent table row width.
    RowWidth {
        /// Expected number of columns.
        expected: usize,
        /// Found number of columns.
        found: usize,
    },
}

impl fmt::Display for PlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlotError::Empty(what) => write!(f, "nothing to render: {what}"),
            PlotError::InvalidValue { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            PlotError::RowWidth { expected, found } => {
                write!(f, "row has {found} columns, expected {expected}")
            }
        }
    }
}

impl Error for PlotError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PlotError>;

pub use chart::{BarChart, LinePlot};
pub use table::Table;
