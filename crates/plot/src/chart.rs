//! ASCII line and bar charts.

use crate::{PlotError, Result};

/// Glyphs cycled across series.
const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// A multi-series ASCII line plot.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
    markers: Vec<(f64, f64, String)>,
}

impl LinePlot {
    /// Create a plot with the given canvas size (characters).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        Self {
            title: title.into(),
            width: width.max(10),
            height: height.max(4),
            log_y: false,
            series: Vec::new(),
            markers: Vec::new(),
        }
    }

    /// Switch the y axis to log₁₀ scale (builder style).
    pub fn log_y(mut self, on: bool) -> Self {
        self.log_y = on;
        self
    }

    /// Add a named series of `(x, y)` points.
    pub fn add_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    /// Add a labeled marker (e.g. a `W_min` anchor).
    pub fn add_marker(&mut self, x: f64, y: f64, label: impl Into<String>) {
        self.markers.push((x, y, label.into()));
    }

    /// Render to a multi-line string.
    ///
    /// # Errors
    ///
    /// [`PlotError::Empty`] without any points;
    /// [`PlotError::InvalidValue`] for non-positive y on a log axis.
    pub fn render(&self) -> Result<String> {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                xs.push(x);
                ys.push(y);
            }
        }
        for &(x, y, _) in &self.markers {
            xs.push(x);
            ys.push(y);
        }
        if xs.is_empty() {
            return Err(PlotError::Empty("LinePlot without points"));
        }
        let ty = |y: f64| -> Result<f64> {
            if self.log_y {
                if y <= 0.0 {
                    return Err(PlotError::InvalidValue {
                        what: "log-scale y",
                        value: y,
                    });
                }
                Ok(y.log10())
            } else {
                Ok(y)
            }
        };
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            x0 = x0.min(x);
            x1 = x1.max(x);
        }
        for &y in &ys {
            let t = ty(y)?;
            y0 = y0.min(t);
            y1 = y1.max(t);
        }
        if x1 - x0 < 1e-300 {
            x1 = x0 + 1.0;
        }
        if y1 - y0 < 1e-300 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        let to_col = |x: f64| -> usize {
            (((x - x0) / (x1 - x0)) * (self.width - 1) as f64).round() as usize
        };
        let to_row = |t: f64| -> usize {
            let r = ((t - y0) / (y1 - y0)) * (self.height - 1) as f64;
            self.height - 1 - r.round() as usize
        };

        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in pts {
                let t = ty(y)?;
                grid[to_row(t)][to_col(x)] = glyph;
            }
        }
        for &(x, y, _) in &self.markers {
            let t = ty(y)?;
            grid[to_row(t)][to_col(x)] = '>';
        }

        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.title));
        let y_label = |t: f64| -> String {
            if self.log_y {
                format!("1e{t:>6.1}")
            } else {
                format!("{t:>8.2}")
            }
        };
        for (r, row) in grid.iter().enumerate() {
            let frac = 1.0 - r as f64 / (self.height - 1) as f64;
            let t = y0 + frac * (y1 - y0);
            let label = if r == 0 || r == self.height - 1 || r == self.height / 2 {
                y_label(t)
            } else {
                " ".repeat(8)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!("{} +{}\n", " ".repeat(8), "-".repeat(self.width)));
        out.push_str(&format!(
            "{} {:<12.4}{}{:>12.4}\n",
            " ".repeat(8),
            x0,
            " ".repeat(self.width.saturating_sub(24)),
            x1
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        for (x, y, label) in &self.markers {
            out.push_str(&format!("    > {label} at ({x:.4}, {y:.3e})\n"));
        }
        Ok(out)
    }
}

/// A horizontal ASCII bar chart (for histograms like Fig 2.2a).
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Create a chart whose longest bar spans `width` characters.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        Self {
            title: title.into(),
            width: width.max(10),
            bars: Vec::new(),
        }
    }

    /// Add a labeled bar.
    pub fn add_bar(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push((label.into(), value));
    }

    /// Render to a multi-line string.
    ///
    /// # Errors
    ///
    /// [`PlotError::Empty`] without bars; [`PlotError::InvalidValue`] for
    /// negative values.
    pub fn render(&self) -> Result<String> {
        if self.bars.is_empty() {
            return Err(PlotError::Empty("BarChart without bars"));
        }
        let mut max = 0.0_f64;
        for &(_, v) in &self.bars {
            if v < 0.0 || !v.is_finite() {
                return Err(PlotError::InvalidValue {
                    what: "bar value",
                    value: v,
                });
            }
            max = max.max(v);
        }
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = format!("  {}\n", self.title);
        for (label, v) in &self.bars {
            let n = if max > 0.0 {
                ((v / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!("  {label:>label_w$} |{} {v:.4}\n", "█".repeat(n)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_plot_renders_axes_and_legend() {
        let mut p = LinePlot::new("demo", 30, 8);
        p.add_series("a", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        p.add_series("b", vec![(0.0, 3.0), (2.0, 1.0)]);
        p.add_marker(1.0, 2.0, "anchor");
        let s = p.render().unwrap();
        assert!(s.contains("demo"));
        assert!(s.contains("* a"));
        assert!(s.contains("+ b"));
        assert!(s.contains("anchor"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn log_scale_rejects_non_positive() {
        let mut p = LinePlot::new("log", 30, 8).log_y(true);
        p.add_series("bad", vec![(0.0, 0.0)]);
        assert!(matches!(p.render(), Err(PlotError::InvalidValue { .. })));
    }

    #[test]
    fn log_scale_spans_decades() {
        let mut p = LinePlot::new("log", 40, 10).log_y(true);
        p.add_series("pF", vec![(20.0, 1e-1), (100.0, 1e-5), (180.0, 1e-9)]);
        let s = p.render().unwrap();
        assert!(s.contains("1e"), "{s}");
    }

    #[test]
    fn empty_plot_errors() {
        let p = LinePlot::new("empty", 30, 8);
        assert!(matches!(p.render(), Err(PlotError::Empty(_))));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut b = BarChart::new("hist", 20);
        b.add_bar("bin1", 1.0);
        b.add_bar("bin2", 0.5);
        let s = b.render().unwrap();
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.matches('█').count();
        assert_eq!(count(lines[1]), 20);
        assert_eq!(count(lines[2]), 10);
    }

    #[test]
    fn bar_chart_validation() {
        let b = BarChart::new("e", 10);
        assert!(matches!(b.render(), Err(PlotError::Empty(_))));
        let mut b = BarChart::new("n", 10);
        b.add_bar("x", -1.0);
        assert!(matches!(b.render(), Err(PlotError::InvalidValue { .. })));
    }
}
