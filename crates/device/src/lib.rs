//! # cnfet-device
//!
//! CNFET device models: geometry, CNT capture, count failure, drive current
//! and gate capacitance.
//!
//! A CNFET (Fig 1.1 of the paper) is a gate over an **active region** that
//! encloses a number of parallel CNTs; CNTs outside active regions are
//! etched away. The device-level quantities the yield analysis needs are:
//!
//! * the CNT count `N(W)` captured by a gate of width `W` — delegated to
//!   the renewal machinery of `cnt-stats` and validated here against the
//!   geometric populations of `cnt-growth`;
//! * the **count-failure** predicate: a CNFET fails when it has zero useful
//!   (semiconducting, surviving) CNTs ([`fet::Cnfet::fails`]);
//! * the drive current `Ion` ([`current::IonModel`]) exhibiting the
//!   `σ/µ ∝ 1/√N` statistical-averaging law that motivates upsizing;
//! * the gate capacitance ([`capacitance::GateCapModel`]) that prices the
//!   upsizing penalty of Figs 2.2b / 3.3.
//!
//! ## Example
//!
//! ```
//! use cnfet_device::fet::{Cnfet, FetType};
//! use cnt_growth::{DirectionalGrowth, Growth, GrowthParams, Rect, Vmr};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fet = Cnfet::new("M1", FetType::NType, 64.0, 32.0)?; // W = 64 nm
//! let growth = DirectionalGrowth::new(GrowthParams::paper_defaults()?);
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut pop = growth.grow(Rect::new(-100.0, -100.0, 400.0, 400.0)?, &mut rng);
//! Vmr::paper_aggressive().apply(&mut pop, &mut rng);
//! let n = fet.useful_cnt_count(&pop);
//! assert_eq!(fet.fails(&pop), n == 0);
//! # Ok(())
//! # }
//! ```

pub mod averaging;
pub mod capacitance;
pub mod current;
pub mod delay;
pub mod fet;

use std::error::Error;
use std::fmt;

/// Error type for device-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An underlying statistics operation failed.
    Stats(cnt_stats::StatsError),
    /// An underlying growth/geometry operation failed.
    Growth(cnt_growth::GrowthError),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            DeviceError::Stats(e) => write!(f, "statistics error: {e}"),
            DeviceError::Growth(e) => write!(f, "growth error: {e}"),
        }
    }
}

impl Error for DeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeviceError::Stats(e) => Some(e),
            DeviceError::Growth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_stats::StatsError> for DeviceError {
    fn from(e: cnt_stats::StatsError) -> Self {
        DeviceError::Stats(e)
    }
}

impl From<cnt_growth::GrowthError> for DeviceError {
    fn from(e: cnt_growth::GrowthError) -> Self {
        DeviceError::Growth(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

pub use capacitance::GateCapModel;
pub use current::IonModel;
pub use delay::DelayModel;
pub use fet::{Cnfet, FetType};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_sources_chain() {
        let e: DeviceError = cnt_stats::StatsError::EmptyData("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: DeviceError = cnt_growth::GrowthError::InvalidParameter {
            name: "pm",
            value: 2.0,
            constraint: "must be in [0,1]",
        }
        .into();
        assert!(e.to_string().contains("growth error"));
    }
}
