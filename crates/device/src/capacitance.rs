//! Gate-capacitance model — the cost function of upsizing.
//!
//! The paper prices upsizing by "the percentage increase of total gate
//! capacitance" (Sec 2.2), i.e. power penalty is proportional to total
//! transistor-width increase. We model gate capacitance as affine in width,
//! with the paper's proportional behaviour as the `c_fixed = 0` special
//! case.

use crate::{DeviceError, Result};

/// Affine gate capacitance: `C(W) = c_fixed + c_per_nm · W` (aF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCapModel {
    c_per_nm: f64,
    c_fixed: f64,
}

impl GateCapModel {
    /// Create a capacitance model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `c_per_nm` is not
    /// strictly positive or `c_fixed` is negative.
    pub fn new(c_per_nm: f64, c_fixed: f64) -> Result<Self> {
        if !(c_per_nm.is_finite() && c_per_nm > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "c_per_nm",
                value: c_per_nm,
                constraint: "must be finite and > 0",
            });
        }
        if !(c_fixed.is_finite() && c_fixed >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "c_fixed",
                value: c_fixed,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self { c_per_nm, c_fixed })
    }

    /// Width-proportional capacitance (the paper's penalty metric):
    /// ~1 aF/nm of gate width, no fixed component.
    pub fn proportional() -> Self {
        Self {
            c_per_nm: 1.0,
            c_fixed: 0.0,
        }
    }

    /// Capacitance per nm of width (aF/nm).
    pub fn c_per_nm(&self) -> f64 {
        self.c_per_nm
    }

    /// Width-independent capacitance (aF).
    pub fn c_fixed(&self) -> f64 {
        self.c_fixed
    }

    /// Gate capacitance of one device (aF).
    pub fn cap(&self, width: f64) -> f64 {
        self.c_fixed + self.c_per_nm * width
    }

    /// Total capacitance of a width population (aF).
    pub fn total_cap<I: IntoIterator<Item = f64>>(&self, widths: I) -> f64 {
        widths.into_iter().map(|w| self.cap(w)).sum()
    }

    /// Relative capacitance increase when each width `w` is upsized to
    /// `max(w, w_min)` — the paper's *penalty* metric (Fig 2.2b / 3.3).
    ///
    /// Returns 0 for an empty population.
    pub fn upsizing_penalty(&self, widths: &[f64], w_min: f64) -> f64 {
        let before = self.total_cap(widths.iter().copied());
        if before <= 0.0 {
            return 0.0;
        }
        let after = self.total_cap(widths.iter().map(|&w| w.max(w_min)));
        after / before - 1.0
    }
}

impl Default for GateCapModel {
    fn default() -> Self {
        Self::proportional()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(GateCapModel::new(0.0, 0.0).is_err());
        assert!(GateCapModel::new(1.0, -1.0).is_err());
        assert!(GateCapModel::new(0.8, 5.0).is_ok());
    }

    #[test]
    fn cap_is_affine() {
        let m = GateCapModel::new(2.0, 10.0).unwrap();
        assert_eq!(m.cap(0.0), 10.0);
        assert_eq!(m.cap(50.0), 110.0);
        // cap(10) = 10 + 2·10 = 30; cap(20) = 10 + 2·20 = 50.
        assert_eq!(m.total_cap([10.0, 20.0]), 80.0);
    }

    #[test]
    fn penalty_proportional_model() {
        let m = GateCapModel::proportional();
        // Widths 100 and 300; upsizing to 200 turns (100, 300) → (200, 300):
        // total 400 → 500, penalty 25 %.
        let p = m.upsizing_penalty(&[100.0, 300.0], 200.0);
        assert!((p - 0.25).abs() < 1e-12, "penalty {p}");
        // No device below threshold → zero penalty.
        assert_eq!(m.upsizing_penalty(&[300.0, 400.0], 200.0), 0.0);
        // Empty population.
        assert_eq!(m.upsizing_penalty(&[], 200.0), 0.0);
    }

    #[test]
    fn fixed_component_dilutes_penalty() {
        let prop = GateCapModel::proportional();
        let fixed = GateCapModel::new(1.0, 100.0).unwrap();
        let widths = [100.0, 300.0];
        assert!(fixed.upsizing_penalty(&widths, 200.0) < prop.upsizing_penalty(&widths, 200.0));
    }
}
