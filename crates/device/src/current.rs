//! CNFET drive-current model.
//!
//! Per \[Deng 07, Wei 09\], the on-current of a CNFET is, to first order,
//! the sum of the per-CNT currents of its useful CNTs; each CNT's current
//! depends on its diameter (band gap shrinks with diameter, raising drive).
//! We use the standard linearized model
//!
//! ```text
//! I_cnt(d) = I₀ · (1 + k·(d − d̄)/d̄)
//! ```
//!
//! with `I₀ ≈ 20 µA` at nominal diameter `d̄ = 1.5 nm` and sensitivity
//! `k ≈ 1.2`. The exact constants matter only for absolute numbers; the
//! yield analysis uses relative quantities (`σ/µ`, capacitance ratios).

use crate::{DeviceError, Result};
use cnt_growth::Cnt;

/// Per-CNT current model and aggregation to device `Ion`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IonModel {
    i0_ua: f64,
    nominal_diameter: f64,
    diameter_sensitivity: f64,
}

impl IonModel {
    /// Create a current model.
    ///
    /// * `i0_ua` — per-CNT on-current at nominal diameter (µA),
    /// * `nominal_diameter` — nominal CNT diameter (nm),
    /// * `diameter_sensitivity` — relative current change per relative
    ///   diameter change.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive current or
    /// diameter, or a negative sensitivity.
    pub fn new(i0_ua: f64, nominal_diameter: f64, diameter_sensitivity: f64) -> Result<Self> {
        for (name, v) in [("i0_ua", i0_ua), ("nominal_diameter", nominal_diameter)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        if !(diameter_sensitivity.is_finite() && diameter_sensitivity >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "diameter_sensitivity",
                value: diameter_sensitivity,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self {
            i0_ua,
            nominal_diameter,
            diameter_sensitivity,
        })
    }

    /// Literature-typical defaults (\[Deng 07\]): 20 µA per CNT at
    /// `d̄ = 1.5 nm`, sensitivity 1.2.
    pub fn typical() -> Self {
        Self {
            i0_ua: 20.0,
            nominal_diameter: 1.5,
            diameter_sensitivity: 1.2,
        }
    }

    /// Per-CNT current (µA) for a CNT of the given diameter (nm).
    ///
    /// Clamped at zero: a pathologically thin CNT contributes nothing
    /// rather than a negative current.
    pub fn per_cnt_current(&self, diameter: f64) -> f64 {
        let rel = (diameter - self.nominal_diameter) / self.nominal_diameter;
        (self.i0_ua * (1.0 + self.diameter_sensitivity * rel)).max(0.0)
    }

    /// Device on-current (µA): sum over *useful* CNTs.
    pub fn ion(&self, cnts: &[Cnt]) -> f64 {
        cnts.iter()
            .filter(|c| c.is_useful())
            .map(|c| self.per_cnt_current(c.diameter))
            .sum()
    }

    /// Analytic `σ(Ion)/µ(Ion)` given the CNT count statistics and diameter
    /// CoV — the statistical-averaging law.
    ///
    /// With per-CNT current CoV `c_I` and a random useful count `N` with
    /// mean `µ_N`, variance `σ_N²`:
    ///
    /// ```text
    /// σ²(Ion)/µ²(Ion) = c_I²/µ_N + σ_N²/µ_N²
    /// ```
    ///
    /// For Poisson-like counts (`σ_N² ≈ µ_N`) both terms fall as `1/µ_N`,
    /// giving the `1/√N` dependence of \[Raychowdhury 09, Zhang 09a/b\].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `mean_count` is not
    /// strictly positive.
    pub fn ion_cov(&self, mean_count: f64, var_count: f64, diameter_cov: f64) -> Result<f64> {
        if !(mean_count.is_finite() && mean_count > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "mean_count",
                value: mean_count,
                constraint: "must be finite and > 0",
            });
        }
        let c_i = self.diameter_sensitivity * diameter_cov;
        Ok((c_i * c_i / mean_count + var_count / (mean_count * mean_count)).sqrt())
    }
}

impl Default for IonModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_growth::{CntType, Point};

    fn cnt(y: f64, ty: CntType, d: f64, removed: bool) -> Cnt {
        let mut c = Cnt::new(Point::new(0.0, y), Point::new(100.0, y), ty);
        c.diameter = d;
        c.removed = removed;
        c
    }

    #[test]
    fn validation() {
        assert!(IonModel::new(0.0, 1.5, 1.0).is_err());
        assert!(IonModel::new(20.0, -1.0, 1.0).is_err());
        assert!(IonModel::new(20.0, 1.5, -0.1).is_err());
        assert!(IonModel::new(20.0, 1.5, 0.0).is_ok());
    }

    #[test]
    fn per_cnt_current_scales_with_diameter() {
        let m = IonModel::typical();
        assert!((m.per_cnt_current(1.5) - 20.0).abs() < 1e-12);
        assert!(m.per_cnt_current(2.0) > 20.0);
        assert!(m.per_cnt_current(1.0) < 20.0);
        // Clamped at zero for extreme thin tubes.
        assert_eq!(m.per_cnt_current(0.01), 0.0);
    }

    #[test]
    fn ion_sums_useful_cnts_only() {
        let m = IonModel::typical();
        let cnts = vec![
            cnt(0.0, CntType::Semiconducting, 1.5, false),  // 20
            cnt(4.0, CntType::Metallic, 1.5, false),        // excluded: metallic
            cnt(8.0, CntType::Semiconducting, 1.5, true),   // excluded: removed
            cnt(12.0, CntType::Semiconducting, 1.5, false), // 20
        ];
        assert!((m.ion(&cnts) - 40.0).abs() < 1e-12);
        assert_eq!(m.ion(&[]), 0.0);
    }

    #[test]
    fn cov_follows_inverse_sqrt_n() {
        let m = IonModel::typical();
        // Poisson-like counts: var = mean.
        let c10 = m.ion_cov(10.0, 10.0, 0.1).unwrap();
        let c40 = m.ion_cov(40.0, 40.0, 0.1).unwrap();
        // Quadrupling N must halve the CoV.
        assert!(
            ((c10 / c40) - 2.0).abs() < 1e-9,
            "ratio {} should be 2",
            c10 / c40
        );
        assert!(m.ion_cov(0.0, 1.0, 0.1).is_err());
    }
}
