//! The CNFET device: geometry, CNT capture and the count-failure predicate.

use crate::{DeviceError, Result};
use cnt_growth::{CntPopulation, Point, Rect};
use cnt_stats::renewal::RenewalCount;

/// Polarity of a CNFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetType {
    /// n-type (NMOS-like) CNFET.
    NType,
    /// p-type (PMOS-like) CNFET.
    PType,
}

impl FetType {
    /// Short display tag, `"n"` or `"p"`.
    pub fn tag(&self) -> &'static str {
        match self {
            FetType::NType => "n",
            FetType::PType => "p",
        }
    }
}

/// A CNFET instance.
///
/// Geometry convention (matching `cnt-growth`): CNTs run along **x**; the
/// transistor *width* `W` extends along **y**, so a gate of width `W`
/// captures the CNT tracks inside its y-span. The channel length `L` extends
/// along x.
#[derive(Debug, Clone, PartialEq)]
pub struct Cnfet {
    name: String,
    fet_type: FetType,
    width: f64,
    l_channel: f64,
    origin: Point,
}

impl Cnfet {
    /// Create a CNFET with the given gate width `W` and channel length `L`
    /// (both nm), placed at the origin.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `width` or `l_channel`
    /// is not finite and strictly positive.
    pub fn new(
        name: impl Into<String>,
        fet_type: FetType,
        width: f64,
        l_channel: f64,
    ) -> Result<Self> {
        for (pname, v) in [("width", width), ("l_channel", l_channel)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter {
                    name: pname,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(Self {
            name: name.into(),
            fet_type,
            width,
            l_channel,
            origin: Point::new(0.0, 0.0),
        })
    }

    /// Move the device so its active region's lower-left corner sits at
    /// `(x, y)` (builder style).
    pub fn at(mut self, x: f64, y: f64) -> Self {
        self.origin = Point::new(x, y);
        self
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Polarity.
    pub fn fet_type(&self) -> FetType {
        self.fet_type
    }

    /// Gate width `W` (nm) — the y-extent that captures CNT tracks.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Channel length `L` (nm).
    pub fn l_channel(&self) -> f64 {
        self.l_channel
    }

    /// Lower-left corner of the active region.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Return a copy resized to a new width, keeping everything else.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive width.
    pub fn resized(&self, new_width: f64) -> Result<Self> {
        let mut c = Self::new(self.name.clone(), self.fet_type, new_width, self.l_channel)?;
        c.origin = self.origin;
        Ok(c)
    }

    /// The active region rectangle.
    pub fn active_region(&self) -> Rect {
        Rect::new(self.origin.x, self.origin.y, self.l_channel, self.width)
            .expect("validated dimensions")
    }

    /// Number of CNTs crossing the active region (before/after removal —
    /// counts all).
    pub fn cnt_count(&self, pop: &CntPopulation) -> usize {
        pop.count_in(&self.active_region())
    }

    /// Number of *useful* CNTs (semiconducting, not removed).
    pub fn useful_cnt_count(&self, pop: &CntPopulation) -> usize {
        pop.useful_count_in(&self.active_region())
    }

    /// CNT count failure: no useful CNT connects source and drain.
    pub fn fails(&self, pop: &CntPopulation) -> bool {
        self.useful_cnt_count(pop) == 0
    }

    /// Analytic failure probability via Eq. (2.2): `pF = E[pf^N(W)]`.
    ///
    /// # Errors
    ///
    /// Propagates renewal-model errors (invalid `pf`, etc.).
    pub fn failure_probability(&self, renewal: &RenewalCount, pf: f64) -> Result<f64> {
        Ok(renewal.failure_probability(self.width, pf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_growth::{Cnt, CntType};
    use cnt_stats::renewal::CountModel;
    use cnt_stats::TruncatedGaussian;

    #[test]
    fn construction_and_validation() {
        assert!(Cnfet::new("M0", FetType::NType, 0.0, 32.0).is_err());
        assert!(Cnfet::new("M0", FetType::NType, 64.0, f64::NAN).is_err());
        let f = Cnfet::new("M0", FetType::PType, 64.0, 32.0)
            .unwrap()
            .at(10.0, 20.0);
        assert_eq!(f.name(), "M0");
        assert_eq!(f.fet_type(), FetType::PType);
        assert_eq!(f.fet_type().tag(), "p");
        let ar = f.active_region();
        assert_eq!(ar.x0(), 10.0);
        assert_eq!(ar.y0(), 20.0);
        assert_eq!(ar.width(), 32.0); // channel length along x
        assert_eq!(ar.height(), 64.0); // gate width along y
    }

    #[test]
    fn resizing_preserves_placement() {
        let f = Cnfet::new("M1", FetType::NType, 64.0, 32.0)
            .unwrap()
            .at(5.0, 7.0);
        let g = f.resized(128.0).unwrap();
        assert_eq!(g.width(), 128.0);
        assert_eq!(g.origin(), Point::new(5.0, 7.0));
        assert!(f.resized(-1.0).is_err());
    }

    #[test]
    fn counting_against_synthetic_population() {
        // Tracks at y = 2, 6, 10; FET spans y ∈ [0, 8] → captures 2 tracks.
        let region = Rect::new(0.0, 0.0, 100.0, 20.0).unwrap();
        let mk = |y: f64, ty: CntType| Cnt::new(Point::new(-10.0, y), Point::new(110.0, y), ty);
        let pop = CntPopulation::new(
            region,
            vec![
                mk(2.0, CntType::Semiconducting),
                mk(6.0, CntType::Metallic),
                mk(10.0, CntType::Semiconducting),
            ],
            vec![2.0, 6.0, 10.0],
        );
        let fet = Cnfet::new("M2", FetType::NType, 8.0, 32.0)
            .unwrap()
            .at(20.0, 0.0);
        assert_eq!(fet.cnt_count(&pop), 2);
        assert_eq!(fet.useful_cnt_count(&pop), 1);
        assert!(!fet.fails(&pop));
        // A FET sitting on the metallic track only → fails.
        let unlucky = Cnfet::new("M3", FetType::NType, 2.0, 32.0)
            .unwrap()
            .at(20.0, 5.0);
        assert_eq!(unlucky.useful_cnt_count(&pop), 0);
        assert!(unlucky.fails(&pop));
    }

    #[test]
    fn analytic_failure_probability_matches_renewal() {
        let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap();
        let renewal = RenewalCount::new(pitch, CountModel::GaussianSum);
        let fet = Cnfet::new("M4", FetType::NType, 100.0, 32.0).unwrap();
        let p = fet.failure_probability(&renewal, 0.531).unwrap();
        let direct = renewal.failure_probability(100.0, 0.531).unwrap();
        assert_eq!(p, direct);
        assert!(p > 0.0 && p < 1e-4);
    }
}
