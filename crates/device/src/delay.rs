//! First-order gate-delay model: the performance side of upsizing.
//!
//! The paper prices upsizing in gate capacitance (power). Designers also
//! ask what it does to speed. To first order a CNFET logic stage obeys the
//! usual RC picture with per-CNT current replacing per-µm drive:
//!
//! ```text
//! t_d ≈ C_load · V_dd / I_on(W)
//! ```
//!
//! Upsizing a *driver* speeds it up; upsizing the *loads* slows their
//! drivers down. This module exposes both directions so the optimizer's
//! capacitance penalty can be translated into a fanout-4-style delay
//! figure.

use crate::capacitance::GateCapModel;
use crate::current::IonModel;
use crate::{DeviceError, Result};

/// First-order stage-delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    ion: IonModel,
    cap: GateCapModel,
    vdd: f64,
    mean_pitch_nm: f64,
}

impl DelayModel {
    /// Create a delay model.
    ///
    /// * `vdd` — supply voltage (V),
    /// * `mean_pitch_nm` — inter-CNT pitch, converting gate width to an
    ///   expected CNT count (`N ≈ W/S̄`).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive `vdd` or
    /// pitch.
    pub fn new(ion: IonModel, cap: GateCapModel, vdd: f64, mean_pitch_nm: f64) -> Result<Self> {
        for (name, v) in [("vdd", vdd), ("mean_pitch_nm", mean_pitch_nm)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        Ok(Self {
            ion,
            cap,
            vdd,
            mean_pitch_nm,
        })
    }

    /// Literature-typical CNFET operating point: 0.9 V, 4 nm pitch,
    /// default current/capacitance models.
    pub fn typical() -> Self {
        Self {
            ion: IonModel::typical(),
            cap: GateCapModel::proportional(),
            vdd: 0.9,
            mean_pitch_nm: 4.0,
        }
    }

    /// Expected on-current of a width-`w` driver (µA): per-CNT current ×
    /// expected CNT count.
    pub fn drive_current_ua(&self, w: f64) -> f64 {
        let n = w / self.mean_pitch_nm;
        n * self.ion.per_cnt_current(1.5)
    }

    /// Stage delay (ps) of a width-`w_driver` gate driving a total load of
    /// `fanout` gates of width `w_load` each.
    ///
    /// `t = C·V/I` with C in aF, I in µA → t in ps (aF·V/µA = ps).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive widths or
    /// zero fanout.
    pub fn stage_delay_ps(&self, w_driver: f64, w_load: f64, fanout: u32) -> Result<f64> {
        for (name, v) in [("w_driver", w_driver), ("w_load", w_load)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite and > 0",
                });
            }
        }
        if fanout == 0 {
            return Err(DeviceError::InvalidParameter {
                name: "fanout",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        let c_load = fanout as f64 * self.cap.cap(w_load);
        Ok(c_load * self.vdd / self.drive_current_ua(w_driver))
    }

    /// Relative change in a fanout-`f` ring's stage delay when *every*
    /// width below `w_min` is upsized to it. For a self-loaded stage
    /// (driver and loads scale together) the delay is width-independent,
    /// so the net effect comes only from stages whose driver and loads
    /// straddle the threshold. This evaluates the worst case: a driver
    /// already above threshold whose loads all get upsized.
    ///
    /// # Errors
    ///
    /// Propagates [`DelayModel::stage_delay_ps`] validation.
    pub fn worst_case_slowdown(
        &self,
        w_driver: f64,
        w_load_before: f64,
        w_min: f64,
        fanout: u32,
    ) -> Result<f64> {
        let before = self.stage_delay_ps(w_driver, w_load_before, fanout)?;
        let after = self.stage_delay_ps(w_driver, w_load_before.max(w_min), fanout)?;
        Ok(after / before - 1.0)
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(
            DelayModel::new(IonModel::typical(), GateCapModel::proportional(), 0.0, 4.0).is_err()
        );
        assert!(
            DelayModel::new(IonModel::typical(), GateCapModel::proportional(), 0.9, -1.0).is_err()
        );
        let m = DelayModel::typical();
        assert!(m.stage_delay_ps(0.0, 100.0, 4).is_err());
        assert!(m.stage_delay_ps(100.0, 100.0, 0).is_err());
    }

    #[test]
    fn self_loaded_stage_delay_is_width_invariant() {
        // Driver and load scale together → C/I ratio fixed.
        let m = DelayModel::typical();
        let d1 = m.stage_delay_ps(100.0, 100.0, 4).unwrap();
        let d2 = m.stage_delay_ps(200.0, 200.0, 4).unwrap();
        assert!((d1 - d2).abs() / d1 < 1e-12);
    }

    #[test]
    fn upsized_loads_slow_their_driver() {
        let m = DelayModel::typical();
        // Loads at 110 nm upsized to 155 nm: +41 % load, +41 % delay.
        let slowdown = m.worst_case_slowdown(300.0, 110.0, 155.0, 4).unwrap();
        assert!(
            (slowdown - (155.0 / 110.0 - 1.0)).abs() < 1e-9,
            "{slowdown}"
        );
        // Nothing below threshold → no slowdown.
        assert_eq!(m.worst_case_slowdown(300.0, 200.0, 155.0, 4).unwrap(), 0.0);
    }

    #[test]
    fn delay_magnitude_is_plausible() {
        // FO4 of a 100-nm gate: C = 4·100 aF, I = 25 CNTs · 20 µA = 500 µA,
        // t = 400·0.9/500 = 0.72 ps (ballistic first-order — optimistic but
        // the right order for CNFET projections).
        let m = DelayModel::typical();
        let d = m.stage_delay_ps(100.0, 100.0, 4).unwrap();
        assert!((0.1..10.0).contains(&d), "FO4 {d} ps");
    }
}
