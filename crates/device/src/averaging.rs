//! Statistical averaging: `σ(Ion)/µ(Ion) ∝ 1/√N`.
//!
//! The motivating observation of the paper's Sec. 1 (\[Raychowdhury 09,
//! Zhang 09a, Zhang 09b\]): every CNT-specific imperfection averages out as
//! the CNT count `N` grows, so *wide* CNFETs are well-behaved and *narrow*
//! ones are the yield hazard. This module verifies the law end-to-end
//! against grown populations and exposes the sweep used by examples.

use crate::current::IonModel;
use crate::fet::{Cnfet, FetType};
use crate::Result;
use cnt_growth::{Growth, Rect, Vmr};
use cnt_stats::Summary;
use rand::Rng;

/// One point of an averaging sweep: the measured `Ion` statistics of a
/// CNFET of a given width.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragingPoint {
    /// Gate width (nm).
    pub width: f64,
    /// Mean useful CNT count.
    pub mean_count: f64,
    /// Mean device on-current (µA).
    pub mean_ion: f64,
    /// Measured `σ(Ion)/µ(Ion)`.
    pub ion_cov: f64,
    /// Fraction of trials with zero useful CNTs (count failures).
    pub failure_fraction: f64,
}

/// Monte-Carlo sweep of `σ/µ(Ion)` versus gate width.
///
/// For each width, grows `trials` independent populations, applies `vmr`,
/// and measures the on-current of a device placed mid-region.
///
/// # Errors
///
/// Propagates device/geometry errors; widths must be positive.
pub fn averaging_sweep(
    growth: &dyn Growth,
    vmr: &Vmr,
    ion: &IonModel,
    widths: &[f64],
    trials: u32,
    mut rng: &mut (impl Rng + ?Sized),
) -> Result<Vec<AveragingPoint>> {
    let mut out = Vec::with_capacity(widths.len());
    for &w in widths {
        let fet = Cnfet::new("sweep", FetType::NType, w, 32.0)?.at(0.0, 0.0);
        let region = Rect::new(-64.0, -32.0, 160.0, w + 64.0).map_err(crate::DeviceError::from)?;
        let mut ion_stats = Summary::new();
        let mut count_stats = Summary::new();
        let mut failures = 0u32;
        for _ in 0..trials {
            let mut pop = growth.grow(region, &mut rng);
            vmr.apply(&mut pop, &mut rng);
            let cnts = pop.cnts_in(&fet.active_region());
            let useful = cnts.iter().filter(|c| c.is_useful()).count();
            count_stats.add(useful as f64);
            if useful == 0 {
                failures += 1;
            }
            ion_stats.add(ion.ion(&cnts));
        }
        let mean_ion = ion_stats.mean();
        out.push(AveragingPoint {
            width: w,
            mean_count: count_stats.mean(),
            mean_ion,
            ion_cov: if mean_ion > 0.0 {
                ion_stats.std_dev() / mean_ion
            } else {
                f64::NAN
            },
            failure_fraction: failures as f64 / trials as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_growth::{DirectionalGrowth, GrowthParams, LengthModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cov_falls_roughly_as_inverse_sqrt_width() {
        let params = GrowthParams::new(4.0, 0.82, 0.33, LengthModel::Fixed(1000.0)).unwrap();
        let growth = DirectionalGrowth::new(params);
        let vmr = Vmr::paper_aggressive();
        let ion = IonModel::typical();
        let mut rng = StdRng::seed_from_u64(11);
        let pts = averaging_sweep(&growth, &vmr, &ion, &[32.0, 128.0], 600, &mut rng).unwrap();
        assert_eq!(pts.len(), 2);
        let (narrow, wide) = (&pts[0], &pts[1]);
        // 4× width → ≈ 2× lower CoV; allow generous slack for MC noise.
        let ratio = narrow.ion_cov / wide.ion_cov;
        assert!(
            (1.5..3.0).contains(&ratio),
            "CoV ratio {ratio}: narrow {} wide {}",
            narrow.ion_cov,
            wide.ion_cov
        );
        // Counts scale with width.
        assert!(narrow.mean_count < wide.mean_count);
        // Narrow devices fail more often.
        assert!(narrow.failure_fraction >= wide.failure_fraction);
    }

    #[test]
    fn mean_ion_scales_with_width() {
        let params = GrowthParams::new(4.0, 0.82, 0.0, LengthModel::Fixed(1000.0)).unwrap();
        let growth = DirectionalGrowth::new(params);
        let vmr = Vmr::ideal(); // nothing removed, pm = 0 → all CNTs useful
        let ion = IonModel::typical();
        let mut rng = StdRng::seed_from_u64(12);
        let pts = averaging_sweep(&growth, &vmr, &ion, &[40.0, 80.0], 400, &mut rng).unwrap();
        let r = pts[1].mean_ion / pts[0].mean_ion;
        assert!((1.6..2.4).contains(&r), "Ion ratio {r}");
        assert_eq!(pts[0].failure_fraction, 0.0);
    }
}
