//! Adaptive-precision Monte-Carlo driver: batched trial chunks fanned
//! across scoped threads, streaming [`Summary`] merging, and a stopping
//! rule on the confidence interval's relative half-width.
//!
//! ## Determinism contract
//!
//! Trials are organized into fixed-size **batches**; batch `k` always runs
//! on an RNG seeded with [`split_seed`]`(seed, k)`, batches are merged in
//! index order, and the stopping rule is evaluated after *every* committed
//! batch — exactly as a serial run would. Worker threads only execute
//! batches speculatively (a wave of up to `workers` batches at a time;
//! batches past the stopping point are discarded), so the outcome is
//! **bit-identical for any worker count**. This extends the
//! [`run_parallel`](crate::engine::run_parallel) guarantee (reproducible
//! for a fixed `(seed, workers)` pair) to full worker independence, which
//! is what lets the scenario pipeline treat a Monte-Carlo back-end like an
//! analytic one.

use crate::engine::split_seed;
use crate::{Result, SimError};
use cnt_stats::ci::{mean_ci, ConfidenceInterval};
use cnt_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Precision target of an adaptive Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McPrecision {
    /// Stop once the confidence interval's relative half-width falls to
    /// this target (e.g. `0.05` = ±5 %).
    pub rel_ci: f64,
    /// Hard cap on the total number of trials.
    pub max_trials: u64,
    /// Trials per batch (the seeding/commit granularity).
    pub batch: u32,
    /// Confidence level of the interval, e.g. `0.95`.
    pub level: f64,
}

impl Default for McPrecision {
    /// ±5 % at 95 % confidence, batches of 2000, at most 2 M trials.
    fn default() -> Self {
        Self {
            rel_ci: 0.05,
            max_trials: 2_000_000,
            batch: 2_000,
            level: 0.95,
        }
    }
}

impl McPrecision {
    /// Validate the precision parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.rel_ci.is_finite() && self.rel_ci > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "rel_ci",
                value: self.rel_ci,
                constraint: "must be finite and > 0",
            });
        }
        if self.batch < 2 {
            return Err(SimError::InvalidParameter {
                name: "batch",
                value: f64::from(self.batch),
                constraint: "must be >= 2 (a CI needs two observations)",
            });
        }
        if self.max_trials < u64::from(self.batch) {
            return Err(SimError::InvalidParameter {
                name: "max_trials",
                value: self.max_trials as f64,
                constraint: "must be >= batch",
            });
        }
        if !(self.level > 0.0 && self.level < 1.0) {
            return Err(SimError::InvalidParameter {
                name: "level",
                value: self.level,
                constraint: "must be in (0, 1)",
            });
        }
        Ok(())
    }
}

/// Result of an adaptive Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct McOutcome {
    /// Confidence interval on the (affine-transformed) mean, clamped to
    /// `[0, 1]` — every estimand in this workspace is a probability.
    pub ci: ConfidenceInterval,
    /// Trials actually consumed (committed batches × batch size).
    pub trials: u64,
    /// Committed batches.
    pub batches: u32,
    /// Whether the precision target was met (vs. hitting `max_trials`).
    pub converged: bool,
    /// Merged per-trial summary (of the raw `job` samples, pre-transform).
    pub summary: Summary,
}

/// Absolute half-width floor: an interval this narrow is converged no
/// matter what the relative target says. Protects effectively-zero
/// estimands (e.g. `pf = 0` corners, where every sample is exactly 0 and
/// the relative half-width would be 0/0).
const ABS_HALF_WIDTH_FLOOR: f64 = 1e-12;

/// Run `job` in adaptive batches until the confidence interval of
/// `offset + scale·mean(job)` is tighter than `precision.rel_ci` (relative)
/// or `precision.max_trials` is reached.
///
/// The affine transform supports stratified estimators: an exactly-known
/// stratum contributes `offset`, the sampled stratum is scaled by its
/// weight, and the CI shrinks accordingly — see
/// `cnt_stats::renewal::FailureSampler`.
///
/// `job` must be a pure function of its RNG; see the module docs for the
/// worker-independence contract.
///
/// # Errors
///
/// Propagates precision-validation and CI errors.
pub fn run_adaptive_affine<F>(
    precision: &McPrecision,
    workers: usize,
    seed: u64,
    offset: f64,
    scale: f64,
    job: F,
) -> Result<McOutcome>
where
    F: Fn(&mut StdRng) -> f64 + Sync,
{
    run_adaptive_affine_fill(precision, workers, seed, offset, scale, |rng, out| {
        for v in out.iter_mut() {
            *v = job(rng);
        }
    })
}

/// Batch-fill variant of [`run_adaptive_affine`]: instead of one `job`
/// callback per trial, `fill` receives the batch's RNG and a sample buffer
/// of `precision.batch` slots to fill in order — one buffer per in-flight
/// batch, reused across the run, so the hot loop does no per-trial calls
/// through a function-pointer boundary and no allocation.
///
/// The determinism contract is unchanged and the outcome is bit-identical
/// to [`run_adaptive_affine`] with the equivalent scalar `job`: batch `k`
/// still runs on `split_seed(seed, k)`, `fill` must consume the RNG stream
/// exactly as the scalar loop would, per-batch summaries accumulate the
/// buffer in index order, and commits/stopping are evaluated identically.
/// With `workers == 1` the speculative thread scope is bypassed entirely
/// (same commit sequence, no spawn overhead).
///
/// # Errors
///
/// Propagates precision-validation and CI errors.
pub fn run_adaptive_affine_fill<F>(
    precision: &McPrecision,
    workers: usize,
    seed: u64,
    offset: f64,
    scale: f64,
    fill: F,
) -> Result<McOutcome>
where
    F: Fn(&mut StdRng, &mut [f64]) + Sync,
{
    precision.validate()?;
    if !(offset.is_finite() && scale.is_finite() && scale >= 0.0) {
        return Err(SimError::InvalidParameter {
            name: "offset/scale",
            value: offset,
            constraint: "must be finite with scale >= 0",
        });
    }
    let workers = workers.max(1);
    let batch = precision.batch;
    // Clamp instead of `as u32` so an enormous max_trials saturates the
    // batch budget rather than wrapping (2^33 trials / batch 2 would
    // truncate to *zero* batches).
    let max_batches = precision
        .max_trials
        .div_ceil(u64::from(batch))
        .min(u64::from(u32::MAX)) as u32;

    let run_batch = |index: u32, buf: &mut [f64]| -> Summary {
        let mut rng = StdRng::seed_from_u64(split_seed(seed, u64::from(index)));
        fill(&mut rng, buf);
        let mut acc = Summary::new();
        for &v in buf.iter() {
            acc.add(v);
        }
        acc
    };

    let affine_ci = |merged: &Summary| -> Result<ConfidenceInterval> {
        let ci = mean_ci(merged, precision.level)?;
        Ok(ConfidenceInterval {
            estimate: (offset + scale * ci.estimate).clamp(0.0, 1.0),
            lo: (offset + scale * ci.lo).clamp(0.0, 1.0),
            hi: (offset + scale * ci.hi).clamp(0.0, 1.0),
            level: ci.level,
        })
    };
    let stop = |ci: &ConfidenceInterval| -> bool {
        ci.half_width() <= ABS_HALF_WIDTH_FLOOR || ci.relative_half_width() <= precision.rel_ci
    };

    let mut merged = Summary::new();
    let mut committed = 0u32;
    let mut converged = false;
    if workers == 1 {
        // Serial fast path: no speculative waves to discard, so skip the
        // thread scope and reuse one sample buffer for the whole run.
        let mut buf = vec![0.0_f64; batch as usize];
        while committed < max_batches {
            let s = run_batch(committed, &mut buf);
            merged.merge(&s);
            committed += 1;
            if stop(&affine_ci(&merged)?) {
                converged = true;
                break;
            }
        }
    } else {
        // One reusable sample buffer per worker slot, swapped into the wave.
        let mut buffers: Vec<Vec<f64>> = (0..workers)
            .map(|_| vec![0.0_f64; batch as usize])
            .collect();
        'outer: while committed < max_batches {
            let wave = workers.min((max_batches - committed) as usize);
            let mut speculative: Vec<Summary> = Vec::with_capacity(wave);
            std::thread::scope(|scope| {
                let run_batch = &run_batch;
                let handles: Vec<_> = buffers
                    .iter_mut()
                    .take(wave)
                    .enumerate()
                    .map(|(j, buf)| {
                        let index = committed + j as u32;
                        scope.spawn(move || run_batch(index, buf))
                    })
                    .collect();
                for h in handles {
                    speculative.push(h.join().expect("adaptive MC batch panicked"));
                }
            });
            // Commit in index order, re-checking the stopping rule after
            // every batch — the same decision sequence a one-worker run
            // makes.
            for s in speculative {
                merged.merge(&s);
                committed += 1;
                if stop(&affine_ci(&merged)?) {
                    converged = true;
                    break 'outer;
                }
            }
        }
    }

    let ci = affine_ci(&merged)?;
    Ok(McOutcome {
        ci,
        trials: merged.count(),
        batches: committed,
        converged,
        summary: merged,
    })
}

/// [`run_adaptive_affine`] with the identity transform: the estimand is
/// the plain mean of `job`.
///
/// # Errors
///
/// Same as [`run_adaptive_affine`].
pub fn run_adaptive<F>(
    precision: &McPrecision,
    workers: usize,
    seed: u64,
    job: F,
) -> Result<McOutcome>
where
    F: Fn(&mut StdRng) -> f64 + Sync,
{
    run_adaptive_affine(precision, workers, seed, 0.0, 1.0, job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn precision(rel_ci: f64) -> McPrecision {
        McPrecision {
            rel_ci,
            max_trials: 100_000,
            batch: 500,
            level: 0.95,
        }
    }

    #[test]
    fn stops_when_the_target_is_met() {
        // Mean of U(0,1): ±2 % needs ~ (1.96·0.577/0.02)² ≈ 3200 trials.
        let out = run_adaptive(&precision(0.02), 4, 7, |rng| rng.gen::<f64>()).unwrap();
        assert!(out.converged);
        assert!(out.trials < 100_000, "converged early, used {}", out.trials);
        assert!(out.ci.relative_half_width() <= 0.02);
        assert!(out.ci.contains(0.5), "ci {} must cover 0.5", out.ci);
        assert_eq!(out.trials, u64::from(out.batches) * 500);
    }

    #[test]
    fn caps_at_max_trials_without_converging() {
        // A wildly heavy-tailed estimand cannot reach ±0.01 % in 10k trials.
        let p = McPrecision {
            rel_ci: 1e-4,
            max_trials: 10_000,
            batch: 1_000,
            level: 0.95,
        };
        let out = run_adaptive(&p, 3, 1, |rng| rng.gen::<f64>().powi(8)).unwrap();
        assert!(!out.converged);
        assert_eq!(out.trials, 10_000);
    }

    #[test]
    fn degenerate_zero_variance_converges_immediately() {
        let out = run_adaptive_affine(&precision(0.05), 4, 3, 1e-11, 1.0, |_| 0.0).unwrap();
        assert!(out.converged);
        assert_eq!(out.batches, 1, "first batch must suffice");
        assert_eq!(out.ci.estimate, 1e-11);
        assert_eq!(out.ci.half_width(), 0.0);
    }

    #[test]
    fn affine_transform_scales_the_interval() {
        // Shifting the estimand up makes the *relative* target easier, so
        // the affine run may stop sooner; its interval must nevertheless be
        // the exact affine image of its own merged summary.
        let shifted =
            run_adaptive_affine(&precision(0.04), 2, 9, 0.25, 0.5, |rng| rng.gen::<f64>()).unwrap();
        assert!(shifted.converged);
        let mean = shifted.summary.mean();
        assert!((shifted.ci.estimate - (0.25 + 0.5 * mean)).abs() < 1e-12);
        let half = shifted.ci.half_width();
        assert!(half > 0.0);
        assert!((shifted.ci.hi - shifted.ci.estimate - half).abs() < 1e-12);
        assert!(shifted.ci.relative_half_width() <= 0.04);
    }

    #[test]
    fn huge_max_trials_saturates_instead_of_truncating() {
        // 2^33 trials at batch 2 used to truncate to zero batches via
        // `as u32`; it must instead run (and here converge immediately).
        let p = McPrecision {
            rel_ci: 0.9,
            max_trials: 1 << 33,
            batch: 2,
            level: 0.95,
        };
        let out = run_adaptive(&p, 1, 3, |rng| 0.5 + 0.01 * rng.gen::<f64>()).unwrap();
        assert!(out.converged);
        assert!(out.batches >= 1);
    }

    #[test]
    fn fill_variant_is_bit_identical_to_scalar_for_any_worker_count() {
        // Heavy-tailed estimand so convergence takes several waves and the
        // commit/stop sequence is actually exercised.
        let p = McPrecision {
            rel_ci: 0.05,
            max_trials: 200_000,
            batch: 500,
            level: 0.95,
        };
        let reference =
            run_adaptive_affine(&p, 1, 13, 1e-9, 0.7, |rng| rng.gen::<f64>().powi(4)).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let scalar =
                run_adaptive_affine(&p, workers, 13, 1e-9, 0.7, |rng| rng.gen::<f64>().powi(4))
                    .unwrap();
            let filled = run_adaptive_affine_fill(&p, workers, 13, 1e-9, 0.7, |rng, out| {
                for v in out.iter_mut() {
                    *v = rng.gen::<f64>().powi(4);
                }
            })
            .unwrap();
            assert_eq!(scalar, reference, "scalar path, workers={workers}");
            assert_eq!(filled, reference, "fill path, workers={workers}");
        }
    }

    #[test]
    fn validation_rejects_bad_precision() {
        let bad_rel = McPrecision {
            rel_ci: 0.0,
            ..McPrecision::default()
        };
        assert!(run_adaptive(&bad_rel, 1, 0, |_| 0.0).is_err());
        let bad_batch = McPrecision {
            batch: 1,
            ..McPrecision::default()
        };
        assert!(bad_batch.validate().is_err());
        let bad_cap = McPrecision {
            max_trials: 10,
            ..McPrecision::default()
        };
        assert!(bad_cap.validate().is_err());
        let bad_level = McPrecision {
            level: 1.0,
            ..McPrecision::default()
        };
        assert!(bad_level.validate().is_err());
    }
}
