//! # cnfet-sim
//!
//! Monte-Carlo engine for CNFET yield: conditional (Rao-Blackwellised)
//! estimators, an exact run-DP row-failure evaluator, and parallel
//! execution.
//!
//! ## Why conditional Monte Carlo
//!
//! The probabilities of interest sit at 1e-6 … 1e-9 (paper Table 1). Naive
//! MC would need ≳1e11 trials. Instead, every estimator here *integrates
//! out the per-CNT failure coin flips analytically*:
//!
//! * for a single CNFET, conditioned on its CNT count `n`, the failure
//!   probability is exactly `pf^n` ([`condmc::estimate_fet_failure`]);
//! * for a whole row of CNFETs sharing directional CNTs, conditioned on
//!   the CNT track positions, the row failure probability is computed
//!   **exactly** by a linear-time dynamic program over failure runs
//!   ([`rundp::row_failure_probability`]).
//!
//! Only the CNT geometry (a few hundred track positions) is sampled, so a
//! few thousand trials give percent-level accuracy at any probability
//! scale — this is what makes the paper's Table 1 reproducible on a laptop.
//!
//! ## Example
//!
//! ```
//! use cnfet_sim::rundp::row_failure_probability;
//!
//! // Three tracks; two FETs: one covers tracks 0..=1, one covers track 2.
//! // Row fails if (t0 and t1 fail) or (t2 fails).
//! let p = row_failure_probability(3, &[(0, 1), (2, 2)], 0.5).unwrap();
//! assert!((p - (0.25 + 0.5 - 0.125)).abs() < 1e-12);
//! ```

pub mod adaptive;
pub mod condmc;
pub mod engine;
pub mod rundp;

use std::error::Error;
use std::fmt;

/// Error type for simulation operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An interval refers to tracks outside the row.
    BadInterval {
        /// Interval start (track index).
        lo: usize,
        /// Interval end (track index, inclusive).
        hi: usize,
        /// Number of tracks in the row.
        n_tracks: usize,
    },
    /// Underlying statistics error.
    Stats(cnt_stats::StatsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            SimError::BadInterval { lo, hi, n_tracks } => {
                write!(f, "interval [{lo}, {hi}] outside 0..{n_tracks}")
            }
            SimError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_stats::StatsError> for SimError {
    fn from(e: cnt_stats::StatsError) -> Self {
        SimError::Stats(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;

pub use adaptive::{run_adaptive, run_adaptive_affine, McOutcome, McPrecision};
pub use condmc::{
    estimate_fet_failure, estimate_fet_failure_adaptive, estimate_row_failure, RowScenario,
};
pub use engine::run_parallel;
pub use rundp::{row_failure_probability, row_failure_probability_weighted};
