//! Exact row-failure probability over shared CNT tracks: the run DP.
//!
//! ## Problem
//!
//! A placement row has `n_tracks` CNT tracks (indexed bottom to top). Every
//! CNFET in the row covers a *contiguous* interval of tracks (its active
//! region's y-span). Each track fails independently with probability `pf`
//! (its CNT is metallic or was removed — shared by every CNFET crossing
//! it, which is exactly the correlation directional growth creates). The
//! **row fails** if some CNFET has *all* of its tracks failing.
//!
//! ## Algorithm
//!
//! `P(no CNFET fails)` is computed by scanning tracks left to right with a
//! DP whose state is the length `r` of the current trailing run of failed
//! tracks. After processing track `i`, any interval `[a, b]` with `b = i`
//! and length `≤ r` would be fully failed, so those states are pruned.
//! With interval lengths bounded by `L`, the complexity is
//! `O(n_tracks · L)` and the result is exact — no sampling of the
//! exponentially many track outcomes.

use crate::{Result, SimError};

/// Exact probability that at least one interval is fully failed.
///
/// `intervals` are inclusive `(lo, hi)` track-index pairs; they may overlap
/// arbitrarily and need not be sorted. `pf` is the per-track failure
/// probability.
///
/// An **empty** interval list means no CNFET can fail → probability 0. A
/// CNFET whose active region contains *no tracks* must be encoded by the
/// caller as a certain failure (this function cannot see it).
///
/// # Errors
///
/// Returns [`SimError::BadInterval`] if an interval exceeds the track
/// range or has `lo > hi`, and [`SimError::InvalidParameter`] for `pf`
/// outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cnfet_sim::rundp::row_failure_probability;
///
/// // One FET over one track: fails exactly when the track fails.
/// let p = row_failure_probability(1, &[(0, 0)], 0.3).unwrap();
/// assert!((p - 0.3).abs() < 1e-12);
/// ```
pub fn row_failure_probability(
    n_tracks: usize,
    intervals: &[(usize, usize)],
    pf: f64,
) -> Result<f64> {
    if !(0.0..=1.0).contains(&pf) {
        return Err(SimError::InvalidParameter {
            name: "pf",
            value: pf,
            constraint: "must be in [0, 1]",
        });
    }
    for &(lo, hi) in intervals {
        if lo > hi || hi >= n_tracks {
            return Err(SimError::BadInterval { lo, hi, n_tracks });
        }
    }
    if intervals.is_empty() {
        return Ok(0.0);
    }
    if pf == 0.0 {
        return Ok(0.0);
    }
    if pf == 1.0 {
        return Ok(1.0);
    }

    // For each track i: the tightest constraint among intervals ending at
    // i — the maximal allowed run length after processing i is
    // min(i - lo) over intervals with hi == i.
    let mut max_run_after = vec![usize::MAX; n_tracks];
    let mut longest = 1usize;
    for &(lo, hi) in intervals {
        let allowed = hi - lo; // run of length > allowed covers [lo, hi]
        if allowed < max_run_after[hi] {
            max_run_after[hi] = allowed;
        }
        longest = longest.max(hi - lo + 1);
    }

    // state[r] = P(current trailing failure run has length exactly r, and
    // no interval has fully failed so far). Runs longer than `longest`
    // can be capped: they can never become "short" again without an OK
    // track, and any constraint they'd violate has length ≤ longest.
    let cap = longest; // states 0..=cap, cap is "saturated"
    let mut state = vec![0.0_f64; cap + 1];
    state[0] = 1.0;
    let ps = 1.0 - pf;
    let mut next = vec![0.0_f64; cap + 1];

    for max_allowed in max_run_after.iter().take(n_tracks) {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut total = 0.0;
        for (r, &p) in state.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            total += p;
            // Track fails: run extends (saturating at cap).
            let nr = (r + 1).min(cap);
            next[nr] += p * pf;
        }
        // Track OK: run resets to zero, from any state.
        next[0] += total * ps;
        // Prune states that fully cover an interval ending here.
        if *max_allowed != usize::MAX {
            for (r, x) in next.iter_mut().enumerate() {
                if r > *max_allowed {
                    *x = 0.0;
                }
            }
        }
        std::mem::swap(&mut state, &mut next);
    }

    let survive: f64 = state.iter().sum();
    Ok((1.0 - survive).clamp(0.0, 1.0))
}

/// Heterogeneous variant of [`row_failure_probability`]: per-track failure
/// probabilities.
///
/// Real removal processes are not uniform — thin CNTs are removed more
/// easily, and measured wafers show position-dependent metallic fractions.
/// The DP generalizes directly: the "track fails" transition at step `i`
/// uses `pf[i]` instead of a shared constant.
///
/// # Errors
///
/// Same as [`row_failure_probability`], plus a length check between `pf`
/// and `n_tracks`, and per-element range validation.
pub fn row_failure_probability_weighted(pf: &[f64], intervals: &[(usize, usize)]) -> Result<f64> {
    let n_tracks = pf.len();
    for &p in pf {
        if !(0.0..=1.0).contains(&p) {
            return Err(SimError::InvalidParameter {
                name: "pf[i]",
                value: p,
                constraint: "must be in [0, 1]",
            });
        }
    }
    for &(lo, hi) in intervals {
        if lo > hi || hi >= n_tracks {
            return Err(SimError::BadInterval { lo, hi, n_tracks });
        }
    }
    if intervals.is_empty() || n_tracks == 0 {
        return Ok(0.0);
    }

    let mut max_run_after = vec![usize::MAX; n_tracks];
    let mut longest = 1usize;
    for &(lo, hi) in intervals {
        let allowed = hi - lo;
        if allowed < max_run_after[hi] {
            max_run_after[hi] = allowed;
        }
        longest = longest.max(hi - lo + 1);
    }

    let cap = longest;
    let mut state = vec![0.0_f64; cap + 1];
    state[0] = 1.0;
    let mut next = vec![0.0_f64; cap + 1];

    for (i, max_allowed) in max_run_after.iter().enumerate() {
        let p_fail = pf[i];
        let p_ok = 1.0 - p_fail;
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut total = 0.0;
        for (r, &p) in state.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            total += p;
            let nr = (r + 1).min(cap);
            next[nr] += p * p_fail;
        }
        next[0] += total * p_ok;
        if *max_allowed != usize::MAX {
            for (r, x) in next.iter_mut().enumerate() {
                if r > *max_allowed {
                    *x = 0.0;
                }
            }
        }
        std::mem::swap(&mut state, &mut next);
    }

    let survive: f64 = state.iter().sum();
    Ok((1.0 - survive).clamp(0.0, 1.0))
}

/// Brute-force reference: enumerate all `2^n_tracks` outcomes.
///
/// Only for testing (`n_tracks ≤ 20`).
///
/// # Errors
///
/// Same validation as [`row_failure_probability`]; additionally rejects
/// `n_tracks > 20`.
pub fn row_failure_probability_bruteforce(
    n_tracks: usize,
    intervals: &[(usize, usize)],
    pf: f64,
) -> Result<f64> {
    if n_tracks > 20 {
        return Err(SimError::InvalidParameter {
            name: "n_tracks",
            value: n_tracks as f64,
            constraint: "brute force limited to <= 20 tracks",
        });
    }
    for &(lo, hi) in intervals {
        if lo > hi || hi >= n_tracks {
            return Err(SimError::BadInterval { lo, hi, n_tracks });
        }
    }
    let mut p_fail = 0.0;
    for mask in 0u32..(1 << n_tracks) {
        let mut prob = 1.0;
        for t in 0..n_tracks {
            if mask >> t & 1 == 1 {
                prob *= pf;
            } else {
                prob *= 1.0 - pf;
            }
        }
        let fails = intervals
            .iter()
            .any(|&(lo, hi)| (lo..=hi).all(|t| mask >> t & 1 == 1));
        if fails {
            p_fail += prob;
        }
    }
    Ok(p_fail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(row_failure_probability(3, &[(0, 3)], 0.5).is_err());
        assert!(row_failure_probability(3, &[(2, 1)], 0.5).is_err());
        assert!(row_failure_probability(3, &[(0, 1)], 1.5).is_err());
        assert_eq!(row_failure_probability(3, &[], 0.5).unwrap(), 0.0);
    }

    #[test]
    fn single_interval_is_pf_power() {
        for len in 1..6usize {
            let p = row_failure_probability(10, &[(2, 2 + len - 1)], 0.531).unwrap();
            let want = 0.531f64.powi(len as i32);
            assert!((p - want).abs() < 1e-12, "len {len}: {p} vs {want}");
        }
    }

    #[test]
    fn aligned_fets_cost_one_fet() {
        // 100 identical intervals — the aligned-active case: row failure
        // equals single-FET failure.
        let intervals: Vec<(usize, usize)> = (0..100).map(|_| (5, 30)).collect();
        let p = row_failure_probability(40, &intervals, 0.5).unwrap();
        let single = row_failure_probability(40, &[(5, 30)], 0.5).unwrap();
        assert!((p - single).abs() < 1e-15);
    }

    #[test]
    fn disjoint_intervals_are_independent() {
        let p = row_failure_probability(10, &[(0, 1), (4, 5), (8, 9)], 0.3).unwrap();
        let q = 0.3f64 * 0.3;
        let want = 1.0 - (1.0 - q).powi(3);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    #[test]
    fn extremes() {
        assert_eq!(row_failure_probability(5, &[(0, 2)], 0.0).unwrap(), 0.0);
        assert_eq!(row_failure_probability(5, &[(0, 2)], 1.0).unwrap(), 1.0);
    }

    #[test]
    fn matches_bruteforce_on_fixed_cases() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (6, vec![(0, 2), (1, 3), (4, 5)]),
            (8, vec![(0, 0), (0, 7), (3, 4)]),
            (10, vec![(2, 6), (5, 9), (0, 1), (7, 7)]),
            (12, vec![(0, 3), (2, 5), (4, 7), (6, 9), (8, 11)]),
        ];
        for (n, intervals) in cases {
            for pf in [0.1, 0.531, 0.9] {
                let fast = row_failure_probability(n, &intervals, pf).unwrap();
                let slow = row_failure_probability_bruteforce(n, &intervals, pf).unwrap();
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "n={n} pf={pf} intervals={intervals:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn nested_intervals_inner_dominates() {
        // [2,3] nested in [1,4]: the union event is just "inner fails".
        let p = row_failure_probability(6, &[(1, 4), (2, 3)], 0.4).unwrap();
        let inner = row_failure_probability(6, &[(2, 3)], 0.4).unwrap();
        assert!((p - inner).abs() < 1e-12);
    }

    #[test]
    fn weighted_reduces_to_uniform() {
        let intervals = [(0usize, 2usize), (3, 5), (2, 4)];
        let uniform = row_failure_probability(8, &intervals, 0.531).unwrap();
        let weighted = row_failure_probability_weighted(&[0.531; 8], &intervals).unwrap();
        assert!((uniform - weighted).abs() < 1e-14);
    }

    #[test]
    fn weighted_certain_and_impossible_tracks() {
        // Track 1 never fails → any interval containing it never fails.
        let pf = [0.9, 0.0, 0.9, 0.9];
        let p = row_failure_probability_weighted(&pf, &[(0, 2)]).unwrap();
        assert_eq!(p, 0.0);
        // All tracks of an interval certain to fail → probability 1.
        let pf = [1.0, 1.0, 0.2, 0.2];
        let p = row_failure_probability_weighted(&pf, &[(0, 1)]).unwrap();
        assert!((p - 1.0).abs() < 1e-14);
    }

    #[test]
    fn weighted_validation() {
        assert!(row_failure_probability_weighted(&[0.5, 1.5], &[(0, 1)]).is_err());
        assert!(row_failure_probability_weighted(&[0.5], &[(0, 1)]).is_err());
        assert_eq!(row_failure_probability_weighted(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn weighted_matches_bruteforce_mixture() {
        // Compare against brute force by expanding the heterogeneous case
        // into an equivalent-by-hand enumeration over 6 tracks.
        let pf = [0.1, 0.6, 0.3, 0.9, 0.5, 0.2];
        let intervals = [(0usize, 1usize), (2, 4), (4, 5)];
        let fast = row_failure_probability_weighted(&pf, &intervals).unwrap();
        let mut slow = 0.0;
        for mask in 0u32..64 {
            let mut prob = 1.0;
            for (t, &p) in pf.iter().enumerate() {
                prob *= if mask >> t & 1 == 1 { p } else { 1.0 - p };
            }
            let fails = intervals
                .iter()
                .any(|&(lo, hi)| (lo..=hi).all(|t| mask >> t & 1 == 1));
            if fails {
                slow += prob;
            }
        }
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    proptest! {
        #[test]
        fn prop_matches_bruteforce(
            n in 1usize..12,
            seed in 0u64..1000,
            pf in 0.05f64..0.95,
            k in 1usize..6,
        ) {
            // Deterministic pseudo-random intervals from the seed.
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut nextu = |m: usize| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s as usize) % m
            };
            let intervals: Vec<(usize, usize)> = (0..k)
                .map(|_| {
                    let a = nextu(n);
                    let b = a + nextu(n - a);
                    (a, b)
                })
                .collect();
            let fast = row_failure_probability(n, &intervals, pf).unwrap();
            let slow = row_failure_probability_bruteforce(n, &intervals, pf).unwrap();
            prop_assert!((fast - slow).abs() < 1e-10,
                "n={} pf={} intervals={:?}: fast {} slow {}", n, pf, intervals, fast, slow);
        }

        #[test]
        fn prop_monotone_in_pf(
            n in 2usize..15,
            k in 1usize..5,
            seed in 0u64..500,
        ) {
            let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
            let mut nextu = |m: usize| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s as usize) % m
            };
            let intervals: Vec<(usize, usize)> = (0..k)
                .map(|_| {
                    let a = nextu(n);
                    let b = a + nextu(n - a);
                    (a, b)
                })
                .collect();
            let lo = row_failure_probability(n, &intervals, 0.2).unwrap();
            let hi = row_failure_probability(n, &intervals, 0.7).unwrap();
            prop_assert!(lo <= hi + 1e-12);
        }

        #[test]
        fn prop_more_intervals_means_more_failure(
            n in 3usize..15,
            seed in 0u64..500,
            pf in 0.1f64..0.9,
        ) {
            let mut s = seed.wrapping_mul(0xDA942042E4DD58B5).wrapping_add(3);
            let mut nextu = |m: usize| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s as usize) % m
            };
            let mk = |nextu: &mut dyn FnMut(usize) -> usize| {
                let a = nextu(n);
                let b = a + nextu(n - a);
                (a, b)
            };
            let i1 = mk(&mut nextu);
            let i2 = mk(&mut nextu);
            let p1 = row_failure_probability(n, &[i1], pf).unwrap();
            let p12 = row_failure_probability(n, &[i1, i2], pf).unwrap();
            prop_assert!(p12 >= p1 - 1e-12);
        }
    }
}
