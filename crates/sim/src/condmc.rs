//! Conditional (Rao-Blackwellised) Monte-Carlo estimators.
//!
//! Geometry (CNT track positions) is sampled; the per-CNT failure coin
//! flips are integrated out exactly — per device as `pf^n`, per row via the
//! run DP. Estimates at the 1e-9 scale converge in thousands of trials.

use crate::adaptive::{run_adaptive_affine_fill, McOutcome, McPrecision};
use crate::rundp::row_failure_probability;
use crate::{Result, SimError};
use cnt_stats::ci::{conditional_mc_ci, ConfidenceInterval};
use cnt_stats::renewal::{CountModel, RenewalCount};
use cnt_stats::{Summary, TruncatedGaussian};
use rand::Rng;

/// A row of CNFETs sharing directional CNTs.
#[derive(Debug, Clone, PartialEq)]
pub struct RowScenario {
    /// Height of the row (nm): CNT tracks are sampled over this span.
    pub row_height: f64,
    /// Per-CNFET active-region y-spans `(y0, y1)` within the row (nm).
    pub fet_spans: Vec<(f64, f64)>,
    /// Inter-CNT pitch distribution.
    pub pitch: TruncatedGaussian,
    /// Per-CNT failure probability `pf` (Eq. 2.1).
    pub pf: f64,
}

impl RowScenario {
    /// Validate the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty FET list, spans
    /// outside the row, or `pf` outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(self.row_height.is_finite() && self.row_height > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "row_height",
                value: self.row_height,
                constraint: "must be finite and > 0",
            });
        }
        if self.fet_spans.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "fet_spans",
                value: 0.0,
                constraint: "must not be empty",
            });
        }
        for &(y0, y1) in &self.fet_spans {
            if !(y0 >= 0.0 && y1 > y0 && y1 <= self.row_height) {
                return Err(SimError::InvalidParameter {
                    name: "fet_span",
                    value: y0,
                    constraint: "must satisfy 0 <= y0 < y1 <= row_height",
                });
            }
        }
        if !(0.0..=1.0).contains(&self.pf) {
            return Err(SimError::InvalidParameter {
                name: "pf",
                value: self.pf,
                constraint: "must be in [0, 1]",
            });
        }
        Ok(())
    }
}

/// Result of a conditional-MC estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEstimate {
    /// Point estimate of the failure probability.
    pub probability: f64,
    /// 95 % confidence interval.
    pub ci95: ConfidenceInterval,
    /// Number of geometry trials.
    pub trials: u32,
}

/// Estimate a single CNFET's count-failure probability by sampling its CNT
/// count and averaging `pf^n` — the Monte-Carlo twin of Eq. (2.2), used to
/// cross-validate the analytic back-ends.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for invalid `width`/`pf`/zero
/// trials.
pub fn estimate_fet_failure(
    width: f64,
    pitch: TruncatedGaussian,
    pf: f64,
    trials: u32,
    mut rng: &mut (impl Rng + ?Sized),
) -> Result<FailureEstimate> {
    if !(width.is_finite() && width > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "width",
            value: width,
            constraint: "must be finite and > 0",
        });
    }
    if !(0.0..=1.0).contains(&pf) {
        return Err(SimError::InvalidParameter {
            name: "pf",
            value: pf,
            constraint: "must be in [0, 1]",
        });
    }
    if trials == 0 {
        return Err(SimError::InvalidParameter {
            name: "trials",
            value: 0.0,
            constraint: "must be >= 1",
        });
    }
    let renewal = RenewalCount::new(pitch, CountModel::GaussianSum);
    let mut acc = Summary::new();
    for _ in 0..trials {
        let mut pos = renewal.sample_first_gap(&mut rng);
        let mut n = 0u32;
        while pos <= width {
            n += 1;
            pos += {
                use cnt_stats::ContinuousDist;
                pitch.sample(&mut rng)
            };
        }
        acc.add(pf.powi(n as i32));
    }
    let ci95 = conditional_mc_ci(&acc, 0.95)?;
    Ok(FailureEstimate {
        probability: acc.mean(),
        ci95,
        trials,
    })
}

/// Adaptive-precision estimate of a single CNFET's count-failure
/// probability `pF(width)` — the Monte-Carlo back-end's workhorse.
///
/// Strategy: build the stratified, exponentially tilted
/// [`cnt_stats::renewal::FailureSampler`] (the `N = 0` stratum is exact;
/// the `N ≥ 1` tail is importance-sampled at the saddle point), then run it
/// through the batched [`crate::adaptive`] driver until the confidence
/// interval meets `precision.rel_ci` or `precision.max_trials` is spent.
/// The result is bit-identical for any `workers` count.
///
/// # Errors
///
/// Propagates sampler-construction and precision-validation errors.
pub fn estimate_fet_failure_adaptive(
    width: f64,
    pitch: TruncatedGaussian,
    pf: f64,
    precision: &McPrecision,
    workers: usize,
    seed: u64,
) -> Result<McOutcome> {
    let renewal = RenewalCount::new(pitch, CountModel::GaussianSum);
    let sampler = renewal.failure_sampler(width, pf)?;
    run_adaptive_affine_fill(
        precision,
        workers,
        seed,
        sampler.p_empty(),
        sampler.tail_weight(),
        |rng, out| sampler.sample_tail_fill(rng, out),
    )
}

/// Estimate the row failure probability `p_RF` of a [`RowScenario`]:
/// sample track positions (stationary renewal over the row height), build
/// per-FET track intervals, evaluate the exact conditional probability via
/// the run DP, and average.
///
/// A FET whose span contains no track fails with certainty (zero CNTs), so
/// such trials contribute probability 1.
///
/// # Errors
///
/// Propagates validation and DP errors.
pub fn estimate_row_failure(
    scenario: &RowScenario,
    trials: u32,
    mut rng: &mut (impl Rng + ?Sized),
) -> Result<FailureEstimate> {
    scenario.validate()?;
    if trials == 0 {
        return Err(SimError::InvalidParameter {
            name: "trials",
            value: 0.0,
            constraint: "must be >= 1",
        });
    }
    let renewal = RenewalCount::new(scenario.pitch, CountModel::GaussianSum);
    let mut acc = Summary::new();
    let mut tracks: Vec<f64> = Vec::new();
    let mut intervals: Vec<(usize, usize)> = Vec::new();

    for _ in 0..trials {
        // Sample track y positions over the row.
        tracks.clear();
        let mut y = renewal.sample_first_gap(&mut rng);
        while y <= scenario.row_height {
            tracks.push(y);
            y += {
                use cnt_stats::ContinuousDist;
                scenario.pitch.sample(&mut rng)
            };
        }

        // Convert FET spans to track-index intervals.
        intervals.clear();
        let mut certain_failure = false;
        for &(y0, y1) in &scenario.fet_spans {
            let lo = tracks.partition_point(|&t| t < y0);
            let hi = tracks.partition_point(|&t| t <= y1);
            if hi == lo {
                certain_failure = true; // no CNT in the active region
                break;
            }
            intervals.push((lo, hi - 1));
        }
        if certain_failure {
            acc.add(1.0);
            continue;
        }
        acc.add(row_failure_probability(
            tracks.len(),
            &intervals,
            scenario.pf,
        )?);
    }
    let ci95 = conditional_mc_ci(&acc, 0.95)?;
    Ok(FailureEstimate {
        probability: acc.mean(),
        ci95,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnt_stats::renewal::CountModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pitch() -> TruncatedGaussian {
        TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap()
    }

    #[test]
    fn fet_failure_matches_analytic_renewal() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = 60.0;
        let pf = 0.531;
        let est = estimate_fet_failure(w, pitch(), pf, 20_000, &mut rng).unwrap();
        let analytic = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 })
            .failure_probability(w, pf)
            .unwrap();
        let ratio = est.probability / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "MC {} vs analytic {analytic} (ratio {ratio})",
            est.probability
        );
        assert!(est.ci95.lo <= est.probability && est.probability <= est.ci95.hi);
    }

    #[test]
    fn aligned_row_equals_single_fet() {
        // All FETs perfectly aligned: p_RF = pF regardless of FET count.
        let span = (100.0, 203.0);
        let single = RowScenario {
            row_height: 1400.0,
            fet_spans: vec![span],
            pitch: pitch(),
            pf: 0.531,
        };
        let many = RowScenario {
            row_height: 1400.0,
            fet_spans: vec![span; 50],
            pitch: pitch(),
            pf: 0.531,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let a = estimate_row_failure(&single, 4_000, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let b = estimate_row_failure(&many, 4_000, &mut rng).unwrap();
        assert!(
            (a.probability - b.probability).abs() / a.probability < 1e-9,
            "aligned row must cost exactly one FET: {} vs {}",
            a.probability,
            b.probability
        );
    }

    #[test]
    fn disjoint_rows_multiply_like_independent_fets() {
        // FETs on disjoint spans: p_RF ≈ 1 − (1 − pF)^k ≈ k·pF.
        let spans: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let y0 = 100.0 + i as f64 * 160.0;
                (y0, y0 + 103.0)
            })
            .collect();
        let scenario = RowScenario {
            row_height: 1500.0,
            fet_spans: spans,
            pitch: pitch(),
            pf: 0.531,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let row = estimate_row_failure(&scenario, 6_000, &mut rng).unwrap();
        let single = RowScenario {
            row_height: 1500.0,
            fet_spans: vec![(100.0, 203.0)],
            pitch: pitch(),
            pf: 0.531,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let one = estimate_row_failure(&single, 6_000, &mut rng).unwrap();
        let ratio = row.probability / one.probability;
        assert!(
            (6.0..10.0).contains(&ratio),
            "independent FETs should multiply: ratio {ratio}"
        );
    }

    #[test]
    fn validation_errors() {
        let bad = RowScenario {
            row_height: 100.0,
            fet_spans: vec![(50.0, 150.0)], // escapes the row
            pitch: pitch(),
            pf: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(estimate_row_failure(&bad, 10, &mut rng).is_err());
        let empty = RowScenario {
            row_height: 100.0,
            fet_spans: vec![],
            pitch: pitch(),
            pf: 0.5,
        };
        assert!(estimate_row_failure(&empty, 10, &mut rng).is_err());
        assert!(estimate_fet_failure(0.0, pitch(), 0.5, 10, &mut rng).is_err());
        assert!(estimate_fet_failure(10.0, pitch(), 2.0, 10, &mut rng).is_err());
        assert!(estimate_fet_failure(10.0, pitch(), 0.5, 0, &mut rng).is_err());
    }
}
