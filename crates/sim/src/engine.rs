//! Parallel Monte-Carlo execution with deterministic seeding.
//!
//! Work is split across scoped threads; worker `k` derives its
//! RNG from `seed ⊕ SplitMix64(k)`, so results are reproducible for a given
//! `(seed, workers)` pair and workers never share a stream.

use cnt_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

// The canonical seed-splitting rule lives in `cnt_stats::seed` (one place
// for the whole workspace); this re-export keeps the engine's historical
// import path working for the fan-out layers built on it.
pub use cnt_stats::seed::split_seed;

/// Run `trials` evaluations of `job` across `workers` threads and merge the
/// per-worker [`Summary`] accumulators.
///
/// `job` receives a worker-local RNG and must return one sample (e.g. a
/// conditional failure probability). Trials are split as evenly as
/// possible; the total is exactly `trials`.
///
/// # Panics
///
/// Panics if `workers == 0` or if `job` panics in any worker.
pub fn run_parallel<F>(trials: u64, workers: usize, seed: u64, job: F) -> Summary
where
    F: Fn(&mut StdRng) -> f64 + Sync,
{
    assert!(workers > 0, "run_parallel requires at least one worker");
    let base = trials / workers as u64;
    let extra = (trials % workers as u64) as usize;

    let mut results: Vec<Summary> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for k in 0..workers {
            let quota = base + (k < extra) as u64;
            let job = &job;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(split_seed(seed, k as u64));
                let mut acc = Summary::new();
                for _ in 0..quota {
                    acc.add(job(&mut rng));
                }
                acc
            }));
        }
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });

    let mut merged = Summary::new();
    for s in &results {
        merged.merge(s);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn trial_counts_are_exact() {
        let s = run_parallel(1001, 4, 7, |_| 1.0);
        assert_eq!(s.count(), 1001);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_workers() {
        let f = |rng: &mut StdRng| rng.gen::<f64>();
        let a = run_parallel(10_000, 3, 42, f);
        let b = run_parallel(10_000, 3, 42, f);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.variance(), b.variance());
        let c = run_parallel(10_000, 3, 43, f);
        assert_ne!(a.mean(), c.mean());
    }

    #[test]
    fn workers_have_distinct_streams() {
        // With one trial per worker, samples must differ across workers.
        let s = run_parallel(4, 4, 9, |rng| rng.gen::<f64>());
        assert!(
            s.max() - s.min() > 1e-6,
            "workers produced identical values"
        );
    }

    #[test]
    fn mean_of_uniform_converges() {
        let s = run_parallel(200_000, 8, 11, |rng| rng.gen::<f64>());
        assert!((s.mean() - 0.5).abs() < 0.005, "mean {}", s.mean());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        run_parallel(10, 0, 0, |_| 0.0);
    }
}
