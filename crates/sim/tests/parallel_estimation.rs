//! Integration: the parallel engine driving the conditional row estimator
//! at Table-1 scale.

use cnfet_sim::condmc::{estimate_row_failure, RowScenario};
use cnfet_sim::engine::run_parallel;
use cnt_stats::ci::conditional_mc_ci;
use cnt_stats::TruncatedGaussian;
use rand::Rng;

fn scenario() -> RowScenario {
    // 120 devices at staggered offsets in a 560-nm band — a scaled-down
    // Table-1 row that still exercises interval overlap heavily.
    let width = 103.0;
    let spans: Vec<(f64, f64)> = (0..120)
        .map(|i| {
            let y0 = ((i * 7) % 10) as f64 * 45.0;
            (y0, y0 + width)
        })
        .collect();
    RowScenario {
        row_height: 560.0,
        fet_spans: spans,
        pitch: TruncatedGaussian::positive_with_moments(4.0, 3.2).expect("valid pitch"),
        pf: 0.531,
    }
}

#[test]
fn parallel_workers_agree_with_single_threaded_estimate() {
    let sc = scenario();

    // Single-threaded reference.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    use rand::SeedableRng;
    let reference = estimate_row_failure(&sc, 3000, &mut rng).expect("estimable");

    // Parallel: each job runs a 25-trial conditional estimate and returns
    // its mean; the merged mean is an unbiased estimate of the same p_RF.
    let sc2 = sc.clone();
    let merged = run_parallel(120, 4, 99, move |rng| {
        estimate_row_failure(&sc2, 25, rng)
            .expect("estimable")
            .probability
    });
    assert_eq!(merged.count(), 120);

    let ci = conditional_mc_ci(&merged, 0.999).expect("ci");
    assert!(
        ci.contains(reference.probability)
            || (merged.mean() / reference.probability - 1.0).abs() < 0.5,
        "parallel {:.3e} vs reference {:.3e} (ci {ci})",
        merged.mean(),
        reference.probability
    );
}

#[test]
fn parallel_run_is_reproducible() {
    let sc = scenario();
    let f = {
        let sc = sc.clone();
        move |rng: &mut rand::rngs::StdRng| {
            estimate_row_failure(&sc, 10, rng)
                .expect("estimable")
                .probability
        }
    };
    let a = run_parallel(40, 4, 7, &f);
    let b = run_parallel(40, 4, 7, &f);
    assert_eq!(a.mean(), b.mean());
    assert_eq!(a.min(), b.min());
}

#[test]
fn engine_handles_more_workers_than_trials() {
    let s = run_parallel(3, 8, 5, |rng| rng.gen::<f64>());
    assert_eq!(s.count(), 3);
}
