//! Regression tests for the adaptive-precision Monte-Carlo driver: worker
//! independence at a fixed seed (the contract the scenario pipeline relies
//! on) and agreement with the analytic convolution back-end.

use cnfet_sim::adaptive::{run_adaptive, McPrecision};
use cnfet_sim::estimate_fet_failure_adaptive;
use cnt_stats::renewal::{CountModel, RenewalCount};
use cnt_stats::TruncatedGaussian;
use rand::Rng;

fn pitch() -> TruncatedGaussian {
    TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap()
}

#[test]
fn workers_1_vs_8_bit_identical_at_fixed_seed() {
    // The sweep-runner guarantee, extended to the MC driver: identical
    // results for any worker count, not just a fixed (seed, workers) pair.
    let precision = McPrecision {
        rel_ci: 0.03,
        max_trials: 200_000,
        batch: 1_000,
        level: 0.95,
    };
    let job = |rng: &mut rand::rngs::StdRng| rng.gen::<f64>() * rng.gen::<f64>();
    let serial = run_adaptive(&precision, 1, 42, job).unwrap();
    let parallel = run_adaptive(&precision, 8, 42, job).unwrap();
    assert_eq!(serial.ci.estimate, parallel.ci.estimate, "estimate differs");
    assert_eq!(serial.ci.lo, parallel.ci.lo);
    assert_eq!(serial.ci.hi, parallel.ci.hi);
    assert_eq!(serial.trials, parallel.trials, "stopping point differs");
    assert_eq!(serial.batches, parallel.batches);
    assert_eq!(serial.summary, parallel.summary);

    // A different seed must change the answer (the test has teeth).
    let other = run_adaptive(&precision, 8, 43, job).unwrap();
    assert_ne!(serial.ci.estimate, other.ci.estimate);
}

#[test]
fn fet_failure_adaptive_is_worker_independent_end_to_end() {
    let precision = McPrecision {
        rel_ci: 0.10,
        max_trials: 100_000,
        batch: 1_000,
        level: 0.95,
    };
    let a = estimate_fet_failure_adaptive(103.0, pitch(), 0.531, &precision, 1, 7).unwrap();
    let b = estimate_fet_failure_adaptive(103.0, pitch(), 0.531, &precision, 8, 7).unwrap();
    assert_eq!(a, b, "workers must not change the adaptive estimate");
}

#[test]
fn fet_failure_adaptive_brackets_the_convolution_backend() {
    // The cross-validation loop of the paper reproduction: at the paper's
    // two anchor widths (pF ≈ 1e-6 and ≈ 1e-9) the MC estimate's CI must
    // bracket the analytic value.
    let precision = McPrecision {
        rel_ci: 0.05,
        max_trials: 400_000,
        batch: 2_000,
        level: 0.99,
    };
    let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.02 });
    for w in [103.0, 155.0] {
        let analytic = conv.failure_probability(w, 0.531).unwrap();
        let mc = estimate_fet_failure_adaptive(w, pitch(), 0.531, &precision, 4, 11).unwrap();
        assert!(
            mc.converged,
            "W={w}: did not converge in {} trials",
            mc.trials
        );
        assert!(
            mc.ci.lo <= analytic && analytic <= mc.ci.hi,
            "W={w}: conv {analytic:.4e} outside MC CI {}",
            mc.ci
        );
        assert!(
            mc.trials < 400_000,
            "W={w}: tilted sampler should converge early, used {}",
            mc.trials
        );
    }
}

#[test]
fn zero_pf_corner_converges_in_one_batch() {
    // All-semiconducting corner: pf = 0 reduces pF to the exact zero-count
    // stratum; the driver must not stall hunting an unobservable event.
    let precision = McPrecision::default();
    let mc = estimate_fet_failure_adaptive(40.0, pitch(), 0.0, &precision, 4, 1).unwrap();
    assert!(mc.converged);
    assert_eq!(mc.batches, 1);
    assert_eq!(mc.ci.half_width(), 0.0);
    let conv = RenewalCount::new(pitch(), CountModel::Convolution { step: 0.05 })
        .failure_probability(40.0, 0.0)
        .unwrap();
    assert!(
        (mc.ci.estimate - conv).abs() / conv < 0.05,
        "exact stratum {:.3e} vs conv {conv:.3e}",
        mc.ci.estimate
    );
}
