//! Seeded-RNG determinism regression tests for the Monte-Carlo estimators:
//! the same seed must give bit-identical estimates, and library code must
//! never consult an ambient entropy source.

use cnfet_sim::condmc::{estimate_fet_failure, estimate_row_failure, RowScenario};
use cnfet_sim::engine::run_parallel;
use cnt_stats::TruncatedGaussian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pitch() -> TruncatedGaussian {
    TruncatedGaussian::positive_with_moments(4.0, 3.28).unwrap()
}

#[test]
fn fet_failure_same_seed_same_estimate() {
    let a =
        estimate_fet_failure(60.0, pitch(), 0.531, 5_000, &mut StdRng::seed_from_u64(11)).unwrap();
    let b =
        estimate_fet_failure(60.0, pitch(), 0.531, 5_000, &mut StdRng::seed_from_u64(11)).unwrap();
    assert_eq!(a.probability, b.probability);
    assert_eq!(a.ci95, b.ci95);
    let c =
        estimate_fet_failure(60.0, pitch(), 0.531, 5_000, &mut StdRng::seed_from_u64(12)).unwrap();
    assert_ne!(a.probability, c.probability);
}

#[test]
fn row_failure_same_seed_same_estimate() {
    let scenario = RowScenario {
        row_height: 1400.0,
        fet_spans: vec![(100.0, 203.0), (400.0, 503.0), (800.0, 903.0)],
        pitch: pitch(),
        pf: 0.531,
    };
    let a = estimate_row_failure(&scenario, 2_000, &mut StdRng::seed_from_u64(5)).unwrap();
    let b = estimate_row_failure(&scenario, 2_000, &mut StdRng::seed_from_u64(5)).unwrap();
    assert_eq!(a.probability, b.probability);
    assert_eq!(a.ci95, b.ci95);
}

#[test]
fn parallel_engine_is_deterministic_per_seed_and_worker_count() {
    let job = |rng: &mut StdRng| rng.gen::<f64>();
    let a = run_parallel(50_000, 4, 17, job);
    let b = run_parallel(50_000, 4, 17, job);
    assert_eq!(a.mean(), b.mean());
    assert_eq!(a.variance(), b.variance());
}
