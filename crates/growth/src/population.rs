//! A grown CNT population and region queries against it.

use crate::cnt::Cnt;
use crate::geom::Rect;

/// The result of growing CNTs over a substrate region.
///
/// Supports the two queries the yield models need:
/// *how many useful CNTs* cross a given active region, and *which CNTs* do
/// (for correlation measurements between regions).
#[derive(Debug, Clone, PartialEq)]
pub struct CntPopulation {
    region: Rect,
    cnts: Vec<Cnt>,
    /// y positions of growth tracks (empty for non-directional growth).
    tracks: Vec<f64>,
}

impl CntPopulation {
    /// Assemble a population (used by the growth models).
    pub fn new(region: Rect, cnts: Vec<Cnt>, tracks: Vec<f64>) -> Self {
        Self {
            region,
            cnts,
            tracks,
        }
    }

    /// The grown region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// All CNTs (including removed ones; check [`Cnt::removed`]).
    pub fn cnts(&self) -> &[Cnt] {
        &self.cnts
    }

    /// Mutable access for process steps (VMR marks removals here).
    pub fn cnts_mut(&mut self) -> &mut [Cnt] {
        &mut self.cnts
    }

    /// Track y positions (directional growth only).
    pub fn tracks(&self) -> &[f64] {
        &self.tracks
    }

    /// Number of growth tracks.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Indices of CNTs crossing `rect`.
    pub fn indices_in(&self, rect: &Rect) -> Vec<usize> {
        self.cnts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.crosses(rect))
            .map(|(i, _)| i)
            .collect()
    }

    /// All CNTs crossing `rect` (unclipped copies).
    pub fn cnts_in(&self, rect: &Rect) -> Vec<Cnt> {
        self.cnts
            .iter()
            .filter(|c| c.crosses(rect))
            .copied()
            .collect()
    }

    /// Number of CNTs crossing `rect`, regardless of type/removal.
    ///
    /// This is the `N(W)` of \[Zhang 09a\] when `rect` is an active region:
    /// the pre-removal CNT count.
    pub fn count_in(&self, rect: &Rect) -> usize {
        self.cnts.iter().filter(|c| c.crosses(rect)).count()
    }

    /// Number of *useful* CNTs (semiconducting and not removed) in `rect`.
    ///
    /// A CNFET whose active region has zero useful CNTs suffers CNT count
    /// failure (paper Sec. 1).
    pub fn useful_count_in(&self, rect: &Rect) -> usize {
        self.cnts
            .iter()
            .filter(|c| c.is_useful() && c.crosses(rect))
            .count()
    }

    /// Number of surviving metallic CNTs in `rect` (noise-margin residue,
    /// \[Zhang 09b\]).
    pub fn surviving_metallic_in(&self, rect: &Rect) -> usize {
        self.cnts
            .iter()
            .filter(|c| c.is_surviving_metallic() && c.crosses(rect))
            .count()
    }

    /// Whether a CNFET with this active region fails by CNT count.
    pub fn count_failure(&self, active_region: &Rect) -> bool {
        self.useful_count_in(active_region) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnt::CntType;
    use crate::geom::Point;

    fn pop() -> CntPopulation {
        let region = Rect::new(0.0, 0.0, 100.0, 20.0).unwrap();
        let mk = |y: f64, ty: CntType, removed: bool| {
            let mut c = Cnt::new(Point::new(-10.0, y), Point::new(110.0, y), ty);
            c.removed = removed;
            c
        };
        let cnts = vec![
            mk(2.0, CntType::Semiconducting, false),
            mk(6.0, CntType::Metallic, false),
            mk(10.0, CntType::Semiconducting, true),
            mk(14.0, CntType::Metallic, true),
            mk(18.0, CntType::Semiconducting, false),
        ];
        CntPopulation::new(region, cnts, vec![2.0, 6.0, 10.0, 14.0, 18.0])
    }

    #[test]
    fn counting_queries() {
        let p = pop();
        let all = Rect::new(0.0, 0.0, 100.0, 20.0).unwrap();
        assert_eq!(p.count_in(&all), 5);
        assert_eq!(p.useful_count_in(&all), 2);
        assert_eq!(p.surviving_metallic_in(&all), 1);
        assert!(!p.count_failure(&all));
    }

    #[test]
    fn window_selects_tracks() {
        let p = pop();
        // Window covering only y in [4, 12]: tracks at 6 (metallic) and 10
        // (removed s-CNT) → zero useful CNTs → count failure.
        let win = Rect::new(10.0, 4.0, 50.0, 8.0).unwrap();
        assert_eq!(p.count_in(&win), 2);
        assert_eq!(p.useful_count_in(&win), 0);
        assert!(p.count_failure(&win));
    }

    #[test]
    fn indices_and_copies_agree() {
        let p = pop();
        let win = Rect::new(0.0, 0.0, 100.0, 7.0).unwrap();
        let idx = p.indices_in(&win);
        let copies = p.cnts_in(&win);
        assert_eq!(idx.len(), copies.len());
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn mutation_through_cnts_mut() {
        let mut p = pop();
        let all = Rect::new(0.0, 0.0, 100.0, 20.0).unwrap();
        for c in p.cnts_mut() {
            c.removed = true;
        }
        assert_eq!(p.useful_count_in(&all), 0);
        assert!(p.count_failure(&all));
    }
}
