//! Measuring the CNT count/type correlation between CNFET active regions.
//!
//! These estimators quantify what the paper's Fig 3.1 shows qualitatively:
//! aligned active regions on directional growth see (near-)perfectly
//! correlated CNT counts and types; misaligned or uncorrelated growth does
//! not.

use crate::geom::Rect;
use crate::growth::Growth;
use crate::vmr::Vmr;
use crate::Result;
use cnt_stats::correlation::pearson;
use rand::Rng;

/// Joint count statistics of two active regions over repeated growths.
#[derive(Debug, Clone, PartialEq)]
pub struct PairCorrelation {
    /// Pearson correlation of the *useful* CNT counts.
    pub count_correlation: f64,
    /// Fraction of trials in which both regions fail together, given at
    /// least one fails. 1.0 means failures are perfectly synchronized.
    pub joint_failure_fraction: f64,
    /// Mean useful count of region A.
    pub mean_count_a: f64,
    /// Mean useful count of region B.
    pub mean_count_b: f64,
    /// Number of growth trials performed.
    pub trials: u32,
}

/// Estimate the count correlation between two active regions under a growth
/// model and a VMR process.
///
/// Each trial grows a fresh population over the bounding region, applies
/// VMR, and records the useful CNT counts of both regions.
///
/// # Errors
///
/// Propagates geometry/statistics errors; in particular the correlation is
/// undefined (and an error is returned) if either count is constant across
/// trials — raise `trials` or widen the regions.
pub fn pair_correlation(
    growth: &dyn Growth,
    vmr: &Vmr,
    region_a: Rect,
    region_b: Rect,
    trials: u32,
    mut rng: &mut (impl Rng + ?Sized),
) -> Result<PairCorrelation> {
    let bounding = Rect::from_corners(
        region_a.x0().min(region_b.x0()) - 1.0,
        region_a.y0().min(region_b.y0()) - 1.0,
        region_a.x1().max(region_b.x1()) + 1.0,
        region_a.y1().max(region_b.y1()) + 1.0,
    )?;
    let mut counts_a = Vec::with_capacity(trials as usize);
    let mut counts_b = Vec::with_capacity(trials as usize);
    let mut joint_failures = 0u32;
    let mut any_failures = 0u32;
    for _ in 0..trials {
        let mut pop = growth.grow(bounding, &mut rng);
        vmr.apply(&mut pop, &mut rng);
        let a = pop.useful_count_in(&region_a);
        let b = pop.useful_count_in(&region_b);
        if a == 0 || b == 0 {
            any_failures += 1;
            if a == 0 && b == 0 {
                joint_failures += 1;
            }
        }
        counts_a.push(a as f64);
        counts_b.push(b as f64);
    }
    let count_correlation = pearson(&counts_a, &counts_b)?;
    let n = trials as f64;
    Ok(PairCorrelation {
        count_correlation,
        joint_failure_fraction: if any_failures > 0 {
            joint_failures as f64 / any_failures as f64
        } else {
            f64::NAN
        },
        mean_count_a: counts_a.iter().sum::<f64>() / n,
        mean_count_b: counts_b.iter().sum::<f64>() / n,
        trials,
    })
}

/// Fraction of CNT tracks shared between two regions in a single grown
/// population (directional growth only): |tracks ∩ both| / |tracks ∩ either|.
///
/// 1.0 for perfectly aligned equal-height regions, 0.0 for disjoint spans.
pub fn track_sharing_fraction(pop: &crate::CntPopulation, a: &Rect, b: &Rect) -> f64 {
    let in_a = |y: f64| y >= a.y0() && y <= a.y1();
    let in_b = |y: f64| y >= b.y0() && y <= b.y1();
    let mut both = 0usize;
    let mut either = 0usize;
    for &y in pop.tracks() {
        let (ia, ib) = (in_a(y), in_b(y));
        if ia || ib {
            either += 1;
        }
        if ia && ib {
            both += 1;
        }
    }
    if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growth::{DirectionalGrowth, GrowthParams, LengthModel, UncorrelatedGrowth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> GrowthParams {
        GrowthParams::new(4.0, 0.82, 0.33, LengthModel::Fixed(100_000.0)).unwrap()
    }

    #[test]
    fn aligned_regions_on_directional_growth_are_strongly_correlated() {
        let growth = DirectionalGrowth::new(params());
        let vmr = Vmr::paper_aggressive();
        // Two 32-nm-wide FETs aligned on the same tracks, 2 µm apart in x.
        let a = Rect::new(0.0, 0.0, 32.0, 32.0).unwrap();
        let b = Rect::new(2000.0, 0.0, 32.0, 32.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let pc = pair_correlation(&growth, &vmr, a, b, 400, &mut rng).unwrap();
        assert!(
            pc.count_correlation > 0.95,
            "aligned correlation {}",
            pc.count_correlation
        );
    }

    #[test]
    fn misaligned_regions_lose_correlation() {
        let growth = DirectionalGrowth::new(params());
        let vmr = Vmr::paper_aggressive();
        let a = Rect::new(0.0, 0.0, 32.0, 32.0).unwrap();
        // Shifted fully off a's tracks.
        let b = Rect::new(2000.0, 200.0, 32.0, 32.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let pc = pair_correlation(&growth, &vmr, a, b, 400, &mut rng).unwrap();
        assert!(
            pc.count_correlation.abs() < 0.2,
            "misaligned correlation {}",
            pc.count_correlation
        );
    }

    #[test]
    fn uncorrelated_growth_has_no_pair_correlation() {
        let p = GrowthParams::new(8.0, 0.82, 0.33, LengthModel::Fixed(500.0)).unwrap();
        let growth = UncorrelatedGrowth::density_matched(p).unwrap();
        let vmr = Vmr::paper_aggressive();
        let a = Rect::new(0.0, 0.0, 64.0, 64.0).unwrap();
        let b = Rect::new(1200.0, 0.0, 64.0, 64.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let pc = pair_correlation(&growth, &vmr, a, b, 300, &mut rng).unwrap();
        assert!(
            pc.count_correlation.abs() < 0.2,
            "uncorrelated correlation {}",
            pc.count_correlation
        );
    }

    #[test]
    fn track_sharing_extremes() {
        let growth = DirectionalGrowth::new(params());
        let region = Rect::new(0.0, 0.0, 1000.0, 200.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pop = growth.grow(region, &mut rng);
        let a = Rect::new(0.0, 50.0, 100.0, 64.0).unwrap();
        let aligned = Rect::new(500.0, 50.0, 100.0, 64.0).unwrap();
        let disjoint = Rect::new(500.0, 130.0, 100.0, 64.0).unwrap();
        assert!((track_sharing_fraction(&pop, &a, &aligned) - 1.0).abs() < 1e-12);
        assert_eq!(track_sharing_fraction(&pop, &a, &disjoint), 0.0);
    }
}
