//! CNT growth models: directional (correlated) and uncorrelated.

use crate::cnt::{Cnt, CntType};
use crate::geom::{Point, Rect};
use crate::population::CntPopulation;
use crate::{GrowthError, Result};
use cnt_stats::dist::Poisson;
use cnt_stats::renewal::{CountModel, RenewalCount};
use cnt_stats::{ContinuousDist, TruncatedGaussian};
use rand::Rng;

/// Coefficient of variation of the inter-CNT pitch, `σ_S / S̄`.
///
/// The paper keeps "the σ_S / S ratio as reported in \[Zhang 09a\]" without
/// restating the number. This value is *calibrated* (see
/// `cnfet_core::calibration`) so that the model reproduces the paper's own
/// Fig 2.1 anchors: `pF(103 nm) ≈ 1.1e-6` and `W_min` pairs (155 nm, 103 nm)
/// at `pm = 33 %`, `pRs = 30 %`.
pub const ZHANG09A_PITCH_COV: f64 = 0.80;

/// Paper-level constants for directional growth.
pub mod paper {
    /// Mean inter-CNT pitch `S`, nm (optimized value assumed in the paper,
    /// from \[Deng 07\]).
    pub const MEAN_PITCH_NM: f64 = 4.0;
    /// Fraction of CNTs that grow metallic, `pm` (typical 1/3; the paper's
    /// case study uses 33 %).
    pub const PM: f64 = 0.33;
    /// CNT length under aligned growth, nm (200 µm, \[Kang 07, Patil 09b\]).
    pub const L_CNT_NM: f64 = 200_000.0;
}

/// CNT length model along the growth direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Every CNT has exactly this length (nm) — the paper's assumption.
    Fixed(f64),
    /// Exponentially distributed lengths with this mean (nm) — the
    /// "CNT length variations" extension the paper defers to future work.
    Exponential {
        /// Mean CNT length (nm).
        mean: f64,
    },
}

impl LengthModel {
    /// Mean CNT length (nm).
    pub fn mean(&self) -> f64 {
        match *self {
            LengthModel::Fixed(l) => l,
            LengthModel::Exponential { mean } => mean,
        }
    }

    fn validate(&self) -> Result<()> {
        let l = self.mean();
        if !(l.is_finite() && l > 0.0) {
            return Err(GrowthError::InvalidParameter {
                name: "length",
                value: l,
                constraint: "must be finite and > 0",
            });
        }
        Ok(())
    }

    fn sample(&self, rng: &mut (impl Rng + ?Sized)) -> f64 {
        match *self {
            LengthModel::Fixed(l) => l,
            LengthModel::Exponential { mean } => {
                let u: f64 = rng.gen::<f64>().clamp(1e-16, 1.0 - 1e-16);
                -mean * (1.0 - u).ln()
            }
        }
    }
}

/// Parameters shared by the growth models.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthParams {
    pitch: TruncatedGaussian,
    pm: f64,
    length: LengthModel,
    diameter: TruncatedGaussian,
}

impl GrowthParams {
    /// Build growth parameters.
    ///
    /// * `mean_pitch` — achieved mean inter-CNT pitch `S̄` (nm),
    /// * `pitch_cov` — pitch coefficient of variation `σ_S / S̄`,
    /// * `pm` — probability a CNT is metallic,
    /// * `length` — CNT length model.
    ///
    /// # Errors
    ///
    /// Returns [`GrowthError::InvalidParameter`] for out-of-domain values.
    pub fn new(mean_pitch: f64, pitch_cov: f64, pm: f64, length: LengthModel) -> Result<Self> {
        if !(0.0..=1.0).contains(&pm) {
            return Err(GrowthError::InvalidParameter {
                name: "pm",
                value: pm,
                constraint: "must be in [0, 1]",
            });
        }
        if !(pitch_cov.is_finite() && pitch_cov > 0.0) {
            return Err(GrowthError::InvalidParameter {
                name: "pitch_cov",
                value: pitch_cov,
                constraint: "must be finite and > 0",
            });
        }
        length.validate()?;
        let pitch = TruncatedGaussian::positive_with_moments(mean_pitch, pitch_cov * mean_pitch)?;
        // Typical SWCNT diameter distribution: 1.5 ± 0.2 nm, bounded to the
        // physically meaningful [0.5, 3] nm window [Deng 07].
        let diameter = TruncatedGaussian::new(1.5, 0.2, 0.5, 3.0)?;
        Ok(Self {
            pitch,
            pm,
            length,
            diameter,
        })
    }

    /// The paper's processing conditions: `S = 4 nm`,
    /// `σ_S/S` = [`ZHANG09A_PITCH_COV`], `pm = 33 %`, fixed 200 µm CNTs.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors [`GrowthParams::new`].
    pub fn paper_defaults() -> Result<Self> {
        Self::new(
            paper::MEAN_PITCH_NM,
            ZHANG09A_PITCH_COV,
            paper::PM,
            LengthModel::Fixed(paper::L_CNT_NM),
        )
    }

    /// Achieved pitch distribution.
    pub fn pitch(&self) -> &TruncatedGaussian {
        &self.pitch
    }

    /// Metallic probability `pm`.
    pub fn pm(&self) -> f64 {
        self.pm
    }

    /// CNT length model.
    pub fn length(&self) -> LengthModel {
        self.length
    }

    /// The renewal counting process induced by this pitch model — the link
    /// to the analytic `N(W)` machinery of `cnt-stats`.
    pub fn renewal(&self, model: CountModel) -> RenewalCount {
        RenewalCount::new(self.pitch, model)
    }

    fn sample_type(&self, rng: &mut (impl Rng + ?Sized)) -> CntType {
        if rng.gen::<f64>() < self.pm {
            CntType::Metallic
        } else {
            CntType::Semiconducting
        }
    }
}

/// Common interface of growth models; object-safe so simulation drivers can
/// switch scenarios at run time (Fig 3.1 a/b/c).
pub trait Growth: std::fmt::Debug {
    /// Grow a CNT population covering `region`.
    fn grow(&self, region: Rect, rng: &mut dyn rand::RngCore) -> CntPopulation;
}

/// Directional growth: long parallel CNTs on y-tracks (paper Fig 3.1b/c).
///
/// Track positions follow the stationary renewal pitch process; each track
/// is tiled along x with CNT segments drawn from the length model, each
/// segment carrying an independent type. CNFETs that overlap the *same
/// segment* therefore share count and type — the correlation the paper
/// exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionalGrowth {
    params: GrowthParams,
}

impl DirectionalGrowth {
    /// Create a directional growth model.
    pub fn new(params: GrowthParams) -> Self {
        Self { params }
    }

    /// Access the parameters.
    pub fn params(&self) -> &GrowthParams {
        &self.params
    }
}

impl Growth for DirectionalGrowth {
    fn grow(&self, region: Rect, rng: &mut dyn rand::RngCore) -> CntPopulation {
        let renewal = RenewalCount::new(*self.params.pitch(), CountModel::GaussianSum);
        let mut cnts = Vec::new();
        let mut tracks = Vec::new();
        let mut y = region.y0() + renewal.sample_first_gap(rng);
        while y <= region.y1() {
            tracks.push(y);
            // Tile the track with CNT segments; the tiling phase is uniform
            // in the first segment length so every x position is
            // statistically equivalent.
            let first_len = self.params.length.sample(rng);
            let mut x = region.x0() - rng.gen::<f64>() * first_len;
            let mut len = first_len;
            while x < region.x1() {
                let ty = self.params.sample_type(rng);
                let diameter = self.params.diameter.sample(rng);
                cnts.push(Cnt {
                    p0: Point::new(x, y),
                    p1: Point::new(x + len, y),
                    ty,
                    removed: false,
                    diameter,
                });
                x += len;
                len = self.params.length.sample(rng);
            }
            y += self.params.pitch().sample(rng);
        }
        CntPopulation::new(region, cnts, tracks)
    }
}

/// Non-directional ("uncorrelated") growth: short CNTs scattered with
/// random positions and orientations (paper Fig 3.1a).
///
/// Centers follow a 2-D Poisson point process; no two CNFETs share a CNT
/// unless they physically overlap, so failures are independent — the
/// baseline assumption of the paper's Sec. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct UncorrelatedGrowth {
    params: GrowthParams,
    density_per_um2: f64,
}

impl UncorrelatedGrowth {
    /// Create an uncorrelated growth model with the given areal density of
    /// CNT centers (CNTs per µm²).
    ///
    /// # Errors
    ///
    /// Returns [`GrowthError::InvalidParameter`] for a non-positive density.
    pub fn new(params: GrowthParams, density_per_um2: f64) -> Result<Self> {
        if !(density_per_um2.is_finite() && density_per_um2 > 0.0) {
            return Err(GrowthError::InvalidParameter {
                name: "density_per_um2",
                value: density_per_um2,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self {
            params,
            density_per_um2,
        })
    }

    /// Density matched to directional growth: the expected number of CNTs
    /// crossing a vertical line equals `1/S̄` per nm, mirroring the track
    /// density of [`DirectionalGrowth`]. With mean length `ℓ` and isotropic
    /// orientation, a density `ρ = π / (2 ℓ S̄)` achieves this (Cauchy's
    /// formula for line intersections with segment processes).
    ///
    /// # Errors
    ///
    /// Same as [`UncorrelatedGrowth::new`].
    pub fn density_matched(params: GrowthParams) -> Result<Self> {
        let l_nm = params.length().mean();
        let s_nm = params.pitch().mean();
        // ρ in nm⁻², converted to µm⁻² (×10⁶).
        let rho_nm2 = std::f64::consts::PI / (2.0 * l_nm * s_nm);
        Self::new(params, rho_nm2 * 1e6)
    }

    /// Access the parameters.
    pub fn params(&self) -> &GrowthParams {
        &self.params
    }

    /// Areal density of CNT centers (per µm²).
    pub fn density_per_um2(&self) -> f64 {
        self.density_per_um2
    }
}

impl Growth for UncorrelatedGrowth {
    fn grow(&self, region: Rect, rng: &mut dyn rand::RngCore) -> CntPopulation {
        // Expand the sampled window so CNTs centered outside the region but
        // crossing into it are represented (edge correction).
        let margin = self.params.length.mean() * 1.5;
        let x0 = region.x0() - margin;
        let y0 = region.y0() - margin;
        let w = region.width() + 2.0 * margin;
        let h = region.height() + 2.0 * margin;
        let area_um2 = w * h * 1e-6;
        let lambda = (self.density_per_um2 * area_um2).max(1e-9);
        let n = Poisson::new(lambda)
            .expect("lambda validated > 0")
            .sample(rng);
        let mut cnts = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let cx = x0 + rng.gen::<f64>() * w;
            let cy = y0 + rng.gen::<f64>() * h;
            let len = self.params.length.sample(rng);
            let theta = rng.gen::<f64>() * std::f64::consts::PI;
            let (dx, dy) = (theta.cos() * len / 2.0, theta.sin() * len / 2.0);
            let ty = self.params.sample_type(rng);
            let diameter = self.params.diameter.sample(rng);
            let cnt = Cnt {
                p0: Point::new(cx - dx, cy - dy),
                p1: Point::new(cx + dx, cy + dy),
                ty,
                removed: false,
                diameter,
            };
            if cnt.crosses(&region) {
                cnts.push(cnt);
            }
        }
        CntPopulation::new(region, cnts, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(777)
    }

    fn small_params() -> GrowthParams {
        // Short CNTs so both models stay cheap in tests.
        GrowthParams::new(4.0, 0.82, 0.33, LengthModel::Fixed(1000.0)).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(GrowthParams::new(4.0, 0.82, 1.5, LengthModel::Fixed(10.0)).is_err());
        assert!(GrowthParams::new(4.0, -0.1, 0.3, LengthModel::Fixed(10.0)).is_err());
        assert!(GrowthParams::new(4.0, 0.82, 0.3, LengthModel::Fixed(0.0)).is_err());
        assert!(GrowthParams::paper_defaults().is_ok());
    }

    #[test]
    fn paper_defaults_pitch_mean_is_exact() {
        let p = GrowthParams::paper_defaults().unwrap();
        assert!((p.pitch().mean() - 4.0).abs() < 1e-3);
        assert!((p.pitch().std_dev() / p.pitch().mean() - ZHANG09A_PITCH_COV).abs() < 1e-3);
        assert_eq!(p.length().mean(), 200_000.0);
    }

    #[test]
    fn directional_track_density_matches_pitch() {
        let g = DirectionalGrowth::new(small_params());
        let region = Rect::new(0.0, 0.0, 100.0, 4000.0).unwrap();
        let mut r = rng();
        let mut total_tracks = 0usize;
        let reps = 30;
        for _ in 0..reps {
            total_tracks += g.grow(region, &mut r).track_count();
        }
        let mean_tracks = total_tracks as f64 / reps as f64;
        let want = 4000.0 / 4.0;
        assert!(
            (mean_tracks - want).abs() < want * 0.05,
            "tracks {mean_tracks} want {want}"
        );
    }

    #[test]
    fn directional_metallic_fraction() {
        let g = DirectionalGrowth::new(small_params());
        let region = Rect::new(0.0, 0.0, 5000.0, 2000.0).unwrap();
        let mut r = rng();
        let pop = g.grow(region, &mut r);
        let total = pop.cnts().len();
        let metallic = pop
            .cnts()
            .iter()
            .filter(|c| c.ty == CntType::Metallic)
            .count();
        let frac = metallic as f64 / total as f64;
        assert!(total > 500, "population too small: {total}");
        assert!((frac - 0.33).abs() < 0.05, "metallic fraction {frac}");
    }

    #[test]
    fn directional_cnts_are_horizontal_and_cover_region() {
        let g = DirectionalGrowth::new(small_params());
        let region = Rect::new(0.0, 0.0, 3000.0, 100.0).unwrap();
        let mut r = rng();
        let pop = g.grow(region, &mut r);
        for c in pop.cnts() {
            assert_eq!(c.p0.y, c.p1.y, "directional CNTs must be horizontal");
        }
        // Every track must be fully tiled: for each track the min x0 must be
        // <= region start and max x1 >= region end.
        for &y in pop.tracks() {
            let xs: Vec<&Cnt> = pop.cnts().iter().filter(|c| c.p0.y == y).collect();
            let lo = xs.iter().map(|c| c.p0.x).fold(f64::INFINITY, f64::min);
            let hi = xs.iter().map(|c| c.p1.x).fold(f64::NEG_INFINITY, f64::max);
            assert!(
                lo <= region.x0() && hi >= region.x1(),
                "track {y} not tiled"
            );
        }
    }

    #[test]
    fn exponential_lengths_vary() {
        let p =
            GrowthParams::new(4.0, 0.82, 0.33, LengthModel::Exponential { mean: 500.0 }).unwrap();
        let g = DirectionalGrowth::new(p);
        let region = Rect::new(0.0, 0.0, 5000.0, 200.0).unwrap();
        let mut r = rng();
        let pop = g.grow(region, &mut r);
        let lengths: Vec<f64> = pop.cnts().iter().map(Cnt::length).collect();
        let mean = lengths.iter().sum::<f64>() / lengths.len() as f64;
        let distinct = lengths
            .iter()
            .filter(|&&l| (l - lengths[0]).abs() > 1e-9)
            .count();
        assert!(distinct > 0, "exponential lengths must vary");
        assert!(mean > 100.0 && mean < 2000.0, "mean length {mean}");
    }

    #[test]
    fn uncorrelated_growth_line_density_matches() {
        let params = GrowthParams::new(8.0, 0.82, 0.33, LengthModel::Fixed(800.0)).unwrap();
        let g = UncorrelatedGrowth::density_matched(params).unwrap();
        let region = Rect::new(0.0, 0.0, 2000.0, 2000.0).unwrap();
        let mut r = rng();
        // Count crossings of a vertical probe line x = 1000 over many grows.
        let probe = Rect::new(999.9, 0.0, 0.2, 2000.0).unwrap();
        let mut crossings = 0usize;
        let reps = 20;
        for _ in 0..reps {
            let pop = g.grow(region, &mut r);
            crossings += pop.cnts().iter().filter(|c| c.crosses(&probe)).count();
        }
        let per_nm = crossings as f64 / reps as f64 / 2000.0;
        let want = 1.0 / 8.0;
        assert!(
            (per_nm - want).abs() < want * 0.25,
            "line density {per_nm} want {want}"
        );
    }

    #[test]
    fn uncorrelated_growth_validation() {
        let params = small_params();
        assert!(UncorrelatedGrowth::new(params.clone(), 0.0).is_err());
        assert!(UncorrelatedGrowth::new(params, 5.0).is_ok());
    }

    #[test]
    fn growth_is_reproducible_from_seed() {
        let g = DirectionalGrowth::new(small_params());
        let region = Rect::new(0.0, 0.0, 1000.0, 200.0).unwrap();
        let pop1 = g.grow(region, &mut StdRng::seed_from_u64(5));
        let pop2 = g.grow(region, &mut StdRng::seed_from_u64(5));
        assert_eq!(pop1.cnts().len(), pop2.cnts().len());
        for (a, b) in pop1.cnts().iter().zip(pop2.cnts()) {
            assert_eq!(a.p0, b.p0);
            assert_eq!(a.ty, b.ty);
        }
    }
}
