//! VMR — VLSI-compatible Metallic-CNT Removal (\[Patil 09c\]).
//!
//! An electrical/chemical processing step that removes metallic CNTs with
//! (conditional) probability `pRm` and, as collateral damage, removes
//! semiconducting CNTs with probability `pRs`. The paper requires
//! `pRm > 99.99 %` for VLSI and assumes `pRm ≈ 1` throughout.

use crate::cnt::CntType;
use crate::population::CntPopulation;
use crate::{GrowthError, Result};
use rand::Rng;

/// The VMR removal channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vmr {
    p_rm: f64,
    p_rs: f64,
}

impl Vmr {
    /// Create a VMR process with metallic-removal probability `p_rm` and
    /// collateral semiconducting-removal probability `p_rs`.
    ///
    /// # Errors
    ///
    /// Returns [`GrowthError::InvalidParameter`] if either probability lies
    /// outside `[0, 1]`.
    pub fn new(p_rm: f64, p_rs: f64) -> Result<Self> {
        for (name, v) in [("p_rm", p_rm), ("p_rs", p_rs)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(GrowthError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be in [0, 1]",
                });
            }
        }
        Ok(Self { p_rm, p_rs })
    }

    /// The paper's main processing corner: perfect metallic removal
    /// (`pRm = 1`) with 30 % collateral s-CNT loss.
    pub fn paper_aggressive() -> Self {
        Self {
            p_rm: 1.0,
            p_rs: 0.30,
        }
    }

    /// An idealized VMR with perfect selectivity (`pRm = 1`, `pRs = 0`) —
    /// the middle curve of paper Fig 2.1.
    pub fn ideal() -> Self {
        Self {
            p_rm: 1.0,
            p_rs: 0.0,
        }
    }

    /// Metallic removal probability `pRm`.
    pub fn p_rm(&self) -> f64 {
        self.p_rm
    }

    /// Collateral semiconducting removal probability `pRs`.
    pub fn p_rs(&self) -> f64 {
        self.p_rs
    }

    /// Per-CNT *count-failure* probability, Eq. (2.1): the probability that
    /// a CNT does **not** end up as a working semiconducting channel,
    ///
    /// ```text
    /// pf = pm + (1 − pm)·pRs
    /// ```
    ///
    /// Note this is independent of `pRm`: a metallic CNT is useless for the
    /// channel count whether removed or not (an un-removed m-CNT degrades
    /// noise margins instead — a different failure mode the paper defers to
    /// \[Zhang 09b\]).
    pub fn per_cnt_failure_probability(&self, pm: f64) -> f64 {
        pm + (1.0 - pm) * self.p_rs
    }

    /// Rate of *surviving metallic* CNTs, `pm·(1 − pRm)` — the input to
    /// noise-margin analyses.
    pub fn surviving_metallic_rate(&self, pm: f64) -> f64 {
        pm * (1.0 - self.p_rm)
    }

    /// Apply the removal channel to a population in place, drawing one
    /// Bernoulli trial per CNT.
    pub fn apply(&self, pop: &mut CntPopulation, rng: &mut (impl Rng + ?Sized)) {
        for cnt in pop.cnts_mut() {
            let p = match cnt.ty {
                CntType::Metallic => self.p_rm,
                CntType::Semiconducting => self.p_rs,
            };
            if rng.gen::<f64>() < p {
                cnt.removed = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::growth::{DirectionalGrowth, Growth, GrowthParams, LengthModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Vmr::new(1.1, 0.0).is_err());
        assert!(Vmr::new(1.0, -0.2).is_err());
        assert!(Vmr::new(0.9999, 0.3).is_ok());
    }

    #[test]
    fn eq_2_1_failure_probability() {
        let vmr = Vmr::paper_aggressive();
        // pf = 0.33 + 0.67 · 0.30 = 0.531
        assert!((vmr.per_cnt_failure_probability(0.33) - 0.531).abs() < 1e-12);
        let ideal = Vmr::ideal();
        assert_eq!(ideal.per_cnt_failure_probability(0.33), 0.33);
        assert_eq!(ideal.per_cnt_failure_probability(0.0), 0.0);
        // pf does not depend on pRm.
        let leaky = Vmr::new(0.5, 0.30).unwrap();
        assert!(
            (leaky.per_cnt_failure_probability(0.33) - vmr.per_cnt_failure_probability(0.33)).abs()
                < 1e-12
        );
    }

    #[test]
    fn surviving_metallic_rate() {
        let v = Vmr::new(0.9999, 0.3).unwrap();
        assert!((v.surviving_metallic_rate(0.33) - 0.33 * 1e-4).abs() < 1e-9);
        assert_eq!(Vmr::ideal().surviving_metallic_rate(0.33), 0.0);
    }

    #[test]
    fn apply_removes_expected_fractions() {
        let params = GrowthParams::new(4.0, 0.82, 0.33, LengthModel::Fixed(500.0)).unwrap();
        let growth = DirectionalGrowth::new(params);
        let region = Rect::new(0.0, 0.0, 4000.0, 2000.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut pop = growth.grow(region, &mut rng);
        let vmr = Vmr::new(1.0, 0.30).unwrap();
        vmr.apply(&mut pop, &mut rng);

        let (mut m_total, mut m_removed, mut s_total, mut s_removed) = (0u32, 0u32, 0u32, 0u32);
        for c in pop.cnts() {
            match c.ty {
                CntType::Metallic => {
                    m_total += 1;
                    m_removed += c.removed as u32;
                }
                CntType::Semiconducting => {
                    s_total += 1;
                    s_removed += c.removed as u32;
                }
            }
        }
        assert_eq!(m_total, m_removed, "pRm = 1 must remove every m-CNT");
        let s_frac = s_removed as f64 / s_total as f64;
        assert!(
            (s_frac - 0.30).abs() < 0.03,
            "s-CNT removal fraction {s_frac}"
        );
    }
}
