//! Individual carbon nanotubes: geometry, electronic type, removal state.

use crate::geom::{clip_segment, Point, Rect};

/// Electronic type of a CNT, set by its chirality at growth time.
///
/// Chirality cannot be controlled during synthesis; roughly one third of
/// grown CNTs are metallic \[Patil 09a\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CntType {
    /// Semiconducting CNT — a useful transistor channel.
    Semiconducting,
    /// Metallic CNT — a source–drain short; must be removed by VMR.
    Metallic,
}

impl CntType {
    /// Whether this type provides a gateable channel.
    pub fn is_useful(&self) -> bool {
        matches!(self, CntType::Semiconducting)
    }
}

/// One carbon nanotube on the substrate, modeled as a straight segment.
///
/// Directional growth gives horizontal segments (`p0.y == p1.y`); the
/// uncorrelated growth model produces arbitrary orientations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cnt {
    /// Starting endpoint (nm).
    pub p0: Point,
    /// Ending endpoint (nm).
    pub p1: Point,
    /// Electronic type.
    pub ty: CntType,
    /// Whether the VMR process removed this CNT.
    pub removed: bool,
    /// Diameter in nm; drives per-CNT current in `cnfet-device`.
    pub diameter: f64,
}

impl Cnt {
    /// Create a CNT segment of the given type with the default 1.5 nm
    /// diameter (typical SWCNT, \[Deng 07\]).
    pub fn new(p0: Point, p1: Point, ty: CntType) -> Self {
        Self {
            p0,
            p1,
            ty,
            removed: false,
            diameter: 1.5,
        }
    }

    /// Length of the segment (nm).
    pub fn length(&self) -> f64 {
        self.p0.distance(&self.p1)
    }

    /// Whether the CNT survives VMR *and* is semiconducting — i.e. counts
    /// toward the CNT count of a CNFET channel.
    pub fn is_useful(&self) -> bool {
        !self.removed && self.ty.is_useful()
    }

    /// Whether the CNT is a *surviving metallic* CNT — the residue that
    /// degrades noise margins (\[Zhang 09b\]; out of scope for count-limited
    /// yield but exported for completeness).
    pub fn is_surviving_metallic(&self) -> bool {
        !self.removed && self.ty == CntType::Metallic
    }

    /// Whether the CNT crosses the given rectangle.
    pub fn crosses(&self, rect: &Rect) -> bool {
        clip_segment(self.p0, self.p1, rect).is_some()
    }

    /// The portion of the CNT inside `rect`, if any.
    pub fn clipped_to(&self, rect: &Rect) -> Option<Cnt> {
        clip_segment(self.p0, self.p1, rect).map(|(a, b)| Cnt {
            p0: a,
            p1: b,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usefulness_rules() {
        let mut c = Cnt::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            CntType::Semiconducting,
        );
        assert!(c.is_useful());
        assert!(!c.is_surviving_metallic());
        c.removed = true;
        assert!(!c.is_useful());
        let m = Cnt::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            CntType::Metallic,
        );
        assert!(!m.is_useful());
        assert!(m.is_surviving_metallic());
        assert!(CntType::Semiconducting.is_useful());
        assert!(!CntType::Metallic.is_useful());
    }

    #[test]
    fn crossing_and_clipping() {
        let c = Cnt::new(
            Point::new(-10.0, 5.0),
            Point::new(100.0, 5.0),
            CntType::Semiconducting,
        );
        let r = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!(c.crosses(&r));
        let clipped = c.clipped_to(&r).unwrap();
        assert_eq!(clipped.p0.x, 0.0);
        assert_eq!(clipped.p1.x, 10.0);
        assert_eq!(clipped.ty, c.ty);
        let above = Rect::new(0.0, 6.0, 10.0, 10.0).unwrap();
        assert!(!c.crosses(&above));
        assert!(c.clipped_to(&above).is_none());
    }

    #[test]
    fn length() {
        let c = Cnt::new(
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            CntType::Metallic,
        );
        assert_eq!(c.length(), 5.0);
        assert_eq!(c.diameter, 1.5);
    }
}
