//! Plane geometry primitives shared by the growth, device and layout layers.
//!
//! Units are nanometres throughout the workspace.

use crate::{GrowthError, Result};

/// A point in the substrate plane (nm).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate — the CNT **growth direction** in directional
    /// growth.
    pub x: f64,
    /// Vertical coordinate — perpendicular to growth; CNT tracks stack
    /// along `y`.
    pub y: f64,
}

impl Point {
    /// Create a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` (nm).
///
/// Models active regions, cell bounding boxes and substrate patches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Create a rectangle from its lower-left corner and extents.
    ///
    /// # Errors
    ///
    /// Returns [`GrowthError::InvalidParameter`] for non-finite inputs or
    /// non-positive width/height.
    pub fn new(x0: f64, y0: f64, width: f64, height: f64) -> Result<Self> {
        for (name, v) in [("x0", x0), ("y0", y0), ("width", width), ("height", height)] {
            if !v.is_finite() {
                return Err(GrowthError::InvalidParameter {
                    name,
                    value: v,
                    constraint: "must be finite",
                });
            }
        }
        if width <= 0.0 || height <= 0.0 {
            return Err(GrowthError::InvalidParameter {
                name: "width/height",
                value: width.min(height),
                constraint: "must be > 0",
            });
        }
        Ok(Self {
            x0,
            y0,
            x1: x0 + width,
            y1: y0 + height,
        })
    }

    /// Create from corner coordinates, normalizing the order.
    ///
    /// # Errors
    ///
    /// Returns [`GrowthError::InvalidParameter`] for non-finite inputs or a
    /// degenerate (zero-area) rectangle.
    pub fn from_corners(xa: f64, ya: f64, xb: f64, yb: f64) -> Result<Self> {
        Self::new(xa.min(xb), ya.min(yb), (xb - xa).abs(), (yb - ya).abs())
    }

    /// Left edge.
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// Bottom edge.
    pub fn y0(&self) -> f64 {
        self.y0
    }

    /// Right edge.
    pub fn x1(&self) -> f64 {
        self.x1
    }

    /// Top edge.
    pub fn y1(&self) -> f64 {
        self.y1
    }

    /// Horizontal extent.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Vertical extent.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Whether the point lies inside (closed on all edges).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Whether two rectangles overlap (closed-edge semantics).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Intersection rectangle, if the overlap has positive area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            Some(Rect { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// Translate by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// The vertical span `[y0, y1]` as a tuple — the quantity that decides
    /// which CNT tracks a CNFET captures.
    pub fn y_span(&self) -> (f64, f64) {
        (self.y0, self.y1)
    }
}

/// Clip the segment `(p0, p1)` to `rect` using the Liang–Barsky algorithm.
///
/// Returns the clipped endpoints, or `None` if the segment misses the
/// rectangle entirely. Used both to intersect CNTs with active regions and
/// to crop populations for rendering.
pub fn clip_segment(p0: Point, p1: Point, rect: &Rect) -> Option<(Point, Point)> {
    let dx = p1.x - p0.x;
    let dy = p1.y - p0.y;
    let mut t0 = 0.0_f64;
    let mut t1 = 1.0_f64;

    // Each (p, q) pair encodes one clip boundary: the segment is inside
    // where p·t ≤ q.
    let checks = [
        (-dx, p0.x - rect.x0()),
        (dx, rect.x1() - p0.x),
        (-dy, p0.y - rect.y0()),
        (dy, rect.y1() - p0.y),
    ];
    for (p, q) in checks {
        if p == 0.0 {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return None;
                }
                t0 = t0.max(r);
            } else {
                if r < t0 {
                    return None;
                }
                t1 = t1.min(r);
            }
        }
    }
    if t0 > t1 {
        return None;
    }
    Some((
        Point::new(p0.x + t0 * dx, p0.y + t0 * dy),
        Point::new(p0.x + t1 * dx, p0.y + t1 * dy),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 10.0, 10.0).unwrap()
    }

    #[test]
    fn rect_validation() {
        assert!(Rect::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 1.0, -1.0).is_err());
        assert!(Rect::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
        let r = Rect::from_corners(5.0, 8.0, 1.0, 2.0).unwrap();
        assert_eq!(r.x0(), 1.0);
        assert_eq!(r.y1(), 8.0);
    }

    #[test]
    fn rect_accessors() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0).unwrap();
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert_eq!(r.y_span(), (2.0, 6.0));
        assert!(r.contains(&Point::new(1.0, 2.0)));
        assert!(!r.contains(&Point::new(0.9, 2.0)));
    }

    #[test]
    fn rect_intersection() {
        let a = unit();
        let b = Rect::new(5.0, 5.0, 10.0, 10.0).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.x0(), 5.0);
        assert_eq!(i.x1(), 10.0);
        assert!(a.intersects(&b));
        let far = Rect::new(20.0, 20.0, 1.0, 1.0).unwrap();
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
        // Touching edges intersect but have no area.
        let touch = Rect::new(10.0, 0.0, 5.0, 5.0).unwrap();
        assert!(a.intersects(&touch));
        assert!(a.intersection(&touch).is_none());
    }

    #[test]
    fn clip_horizontal_segment() {
        let r = unit();
        let (a, b) = clip_segment(Point::new(-5.0, 5.0), Point::new(15.0, 5.0), &r).expect("clips");
        assert_eq!(a, Point::new(0.0, 5.0));
        assert_eq!(b, Point::new(10.0, 5.0));
    }

    #[test]
    fn clip_miss_and_inside() {
        let r = unit();
        assert!(clip_segment(Point::new(-5.0, 20.0), Point::new(15.0, 20.0), &r).is_none());
        let (a, b) = clip_segment(Point::new(2.0, 2.0), Point::new(3.0, 3.0), &r).expect("inside");
        assert_eq!(a, Point::new(2.0, 2.0));
        assert_eq!(b, Point::new(3.0, 3.0));
    }

    #[test]
    fn clip_diagonal_crossing_corner() {
        let r = unit();
        let (a, b) =
            clip_segment(Point::new(-10.0, -10.0), Point::new(20.0, 20.0), &r).expect("diag");
        assert!((a.x - 0.0).abs() < 1e-12 && (a.y - 0.0).abs() < 1e-12);
        assert!((b.x - 10.0).abs() < 1e-12 && (b.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn translation() {
        let r = unit().translated(2.0, -1.0);
        assert_eq!(r.x0(), 2.0);
        assert_eq!(r.y0(), -1.0);
        assert_eq!(r.width(), 10.0);
    }

    #[test]
    fn point_distance() {
        assert_eq!(Point::new(0.0, 0.0).distance(&Point::new(3.0, 4.0)), 5.0);
    }
}
