//! # cnt-growth
//!
//! Stochastic simulator of carbon-nanotube (CNT) growth on a substrate.
//!
//! The paper's yield analysis rests on three statistical properties of grown
//! CNTs, all of which this crate models explicitly:
//!
//! 1. **Density variation** — inter-CNT pitch is random (truncated Gaussian,
//!    mean `S = 4 nm`), so the CNT count under a gate varies (\[Zhang 09a\]).
//! 2. **Typing** — each CNT is metallic with probability `pm ≈ 1/3`;
//!    metallic-CNT removal (VMR, \[Patil 09c\]) removes m-CNTs with
//!    probability `pRm` and collaterally removes s-CNTs with probability
//!    `pRs` ([`vmr`]).
//! 3. **Spatial correlation** — *directional* growth produces CNTs that are
//!    hundreds of micrometres long (`L_CNT ≈ 200 µm`, \[Kang 07,
//!    Patil 09b\]), so CNFETs aligned along the growth direction share the
//!    same physical CNTs and therefore the same counts *and* types
//!    ([`growth::DirectionalGrowth`]). Non-directional growth
//!    ([`growth::UncorrelatedGrowth`]) has no such sharing.
//!
//! The geometric population produced here ([`population::CntPopulation`]) is
//! used for visualization (paper Fig 3.1), for *measuring* correlation
//! ([`correlation`]), and for validating the analytic models in
//! `cnfet-core` against brute-force geometry.
//!
//! All lengths in this crate are in **nanometres** unless stated otherwise.
//!
//! ## Example
//!
//! ```
//! use cnt_growth::geom::Rect;
//! use cnt_growth::growth::{DirectionalGrowth, Growth, GrowthParams};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), cnt_growth::GrowthError> {
//! let params = GrowthParams::paper_defaults()?;
//! let growth = DirectionalGrowth::new(params);
//! let region = Rect::new(0.0, 0.0, 2000.0, 500.0)?; // 2 µm × 0.5 µm, in nm
//! let mut rng = StdRng::seed_from_u64(42);
//! let pop = growth.grow(region, &mut rng);
//! // Expect about 500 nm / 4 nm = 125 tracks.
//! assert!((pop.track_count() as f64 - 125.0).abs() < 40.0);
//! # Ok(())
//! # }
//! ```

pub mod cnt;
pub mod correlation;
pub mod geom;
pub mod growth;
pub mod population;
pub mod vmr;

use std::error::Error;
use std::fmt;

/// Error type for growth-simulation operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GrowthError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An underlying statistics operation failed.
    Stats(cnt_stats::StatsError),
}

impl fmt::Display for GrowthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrowthError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            GrowthError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for GrowthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GrowthError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_stats::StatsError> for GrowthError {
    fn from(e: cnt_stats::StatsError) -> Self {
        GrowthError::Stats(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GrowthError>;

pub use cnt::{Cnt, CntType};
pub use geom::{Point, Rect};
pub use growth::{DirectionalGrowth, Growth, GrowthParams, LengthModel, UncorrelatedGrowth};
pub use population::CntPopulation;
pub use vmr::Vmr;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversion_and_display() {
        let e: GrowthError = cnt_stats::StatsError::EmptyData("x").into();
        assert!(e.to_string().contains("statistics error"));
        let e = GrowthError::InvalidParameter {
            name: "pm",
            value: 2.0,
            constraint: "must be in [0,1]",
        };
        assert!(e.to_string().contains("pm"));
    }
}
