//! Seeded-RNG determinism regression tests: the growth simulator must be a
//! pure function of `(params, region, seed)`. No library path may fall back
//! to an entropy source — a silent `thread_rng` would make paper figures
//! unreproducible.

use cnt_growth::geom::Rect;
use cnt_growth::growth::{
    DirectionalGrowth, Growth, GrowthParams, LengthModel, UncorrelatedGrowth,
};
use cnt_growth::Vmr;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn region() -> Rect {
    Rect::new(0.0, 0.0, 1000.0, 400.0).unwrap()
}

#[test]
fn directional_growth_same_seed_same_population() {
    let params = GrowthParams::paper_defaults().unwrap();
    let growth = DirectionalGrowth::new(params);
    let a = growth.grow(region(), &mut StdRng::seed_from_u64(1234));
    let b = growth.grow(region(), &mut StdRng::seed_from_u64(1234));
    assert_eq!(a, b, "same seed must reproduce the exact population");
    let c = growth.grow(region(), &mut StdRng::seed_from_u64(1235));
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn uncorrelated_growth_same_seed_same_population() {
    let params = GrowthParams::new(4.0, 0.8, 0.33, LengthModel::Fixed(300.0)).unwrap();
    let growth = UncorrelatedGrowth::new(params, 0.6).unwrap();
    let a = growth.grow(region(), &mut StdRng::seed_from_u64(99));
    let b = growth.grow(region(), &mut StdRng::seed_from_u64(99));
    assert_eq!(a, b);
}

#[test]
fn vmr_same_seed_same_removal() {
    let params = GrowthParams::paper_defaults().unwrap();
    let growth = DirectionalGrowth::new(params);
    let mut a = growth.grow(region(), &mut StdRng::seed_from_u64(7));
    let mut b = a.clone();
    let vmr = Vmr::new(0.9999, 0.0393).unwrap();
    vmr.apply(&mut a, &mut StdRng::seed_from_u64(42));
    vmr.apply(&mut b, &mut StdRng::seed_from_u64(42));
    assert_eq!(a, b, "VMR must be deterministic under a fixed seed");
}
