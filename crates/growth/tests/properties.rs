//! Property-based tests for geometry and growth.

use cnt_growth::geom::{clip_segment, Point, Rect};
use cnt_growth::{DirectionalGrowth, Growth, GrowthParams, LengthModel, Vmr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn clipped_segments_stay_inside_the_rect(
        x0 in -50.0f64..50.0,
        y0 in -50.0f64..50.0,
        x1 in -50.0f64..50.0,
        y1 in -50.0f64..50.0,
    ) {
        let rect = Rect::new(-10.0, -10.0, 20.0, 20.0).unwrap();
        if let Some((a, b)) = clip_segment(Point::new(x0, y0), Point::new(x1, y1), &rect) {
            for p in [a, b] {
                prop_assert!(p.x >= rect.x0() - 1e-9 && p.x <= rect.x1() + 1e-9);
                prop_assert!(p.y >= rect.y0() - 1e-9 && p.y <= rect.y1() + 1e-9);
            }
        }
    }

    #[test]
    fn clipping_is_idempotent(
        x0 in -50.0f64..50.0,
        y0 in -50.0f64..50.0,
        x1 in -50.0f64..50.0,
        y1 in -50.0f64..50.0,
    ) {
        let rect = Rect::new(-10.0, -10.0, 20.0, 20.0).unwrap();
        if let Some((a, b)) = clip_segment(Point::new(x0, y0), Point::new(x1, y1), &rect) {
            let again = clip_segment(a, b, &rect);
            prop_assert!(again.is_some(), "clipped segment must re-clip");
            let (a2, b2) = again.unwrap();
            prop_assert!(a.distance(&a2) < 1e-6 && b.distance(&b2) < 1e-6);
        }
    }

    #[test]
    fn segments_fully_inside_are_unchanged(
        x0 in -9.0f64..9.0,
        y0 in -9.0f64..9.0,
        x1 in -9.0f64..9.0,
        y1 in -9.0f64..9.0,
    ) {
        let rect = Rect::new(-10.0, -10.0, 20.0, 20.0).unwrap();
        let (a, b) = clip_segment(Point::new(x0, y0), Point::new(x1, y1), &rect)
            .expect("inside segment must clip to itself");
        prop_assert!(a.distance(&Point::new(x0, y0)) < 1e-12);
        prop_assert!(b.distance(&Point::new(x1, y1)) < 1e-12);
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(
        ax in -20.0f64..20.0, ay in -20.0f64..20.0, aw in 0.1f64..30.0, ah in 0.1f64..30.0,
        bx in -20.0f64..20.0, by in -20.0f64..20.0, bw in 0.1f64..30.0, bh in 0.1f64..30.0,
    ) {
        let a = Rect::new(ax, ay, aw, ah).unwrap();
        let b = Rect::new(bx, by, bw, bh).unwrap();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(i), Some(j)) = (ab, ba) {
            prop_assert!((i.x0() - j.x0()).abs() < 1e-12);
            prop_assert!((i.area() - j.area()).abs() < 1e-9);
            prop_assert!(i.area() <= a.area() + 1e-9 && i.area() <= b.area() + 1e-9);
        }
    }

    #[test]
    fn track_count_scales_with_region_height(
        height in 400.0f64..1200.0,
        seed in 0u64..50,
    ) {
        let params = GrowthParams::new(4.0, 0.8, 0.33, LengthModel::Fixed(500.0)).unwrap();
        let growth = DirectionalGrowth::new(params);
        let region = Rect::new(0.0, 0.0, 200.0, height).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = growth.grow(region, &mut rng);
        let expected = height / 4.0;
        // Counting noise: ±40 % covers seeds comfortably at these sizes.
        prop_assert!(
            (pop.track_count() as f64) > expected * 0.6 &&
            (pop.track_count() as f64) < expected * 1.4,
            "height {height}: {} tracks vs expected {expected}",
            pop.track_count()
        );
    }

    #[test]
    fn vmr_only_ever_removes(
        seed in 0u64..50,
        p_rs in 0.0f64..1.0,
    ) {
        let params = GrowthParams::new(4.0, 0.8, 0.33, LengthModel::Fixed(500.0)).unwrap();
        let growth = DirectionalGrowth::new(params);
        let region = Rect::new(0.0, 0.0, 500.0, 300.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pop = growth.grow(region, &mut rng);
        let useful_before = pop.cnts().iter().filter(|c| c.is_useful()).count();
        Vmr::new(1.0, p_rs).unwrap().apply(&mut pop, &mut rng);
        let useful_after = pop.cnts().iter().filter(|c| c.is_useful()).count();
        prop_assert!(useful_after <= useful_before);
        // With pRm = 1 no metallic survivor may remain.
        prop_assert_eq!(
            pop.cnts().iter().filter(|c| c.is_surviving_metallic()).count(),
            0
        );
    }
}
