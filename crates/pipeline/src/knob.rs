//! JSON forms and realization plumbing for the stochastic scenario knobs.
//!
//! `cnt-stats` owns the *semantics* of [`DistSpec`] and [`FieldSpec`]
//! (validation, moments, sampling); this module owns their *wire forms*
//! in the hand-rolled JSON dialect of [`crate::json`], with the same
//! discipline as `BackendSpec`:
//!
//! * a **bare number** is the scalar back-compat form and parses as
//!   [`DistSpec::Fixed`] — every pre-existing scenario file keeps its
//!   meaning (and its serialized bytes);
//! * a **`kind` object** spells the distribution out:
//!   `{"kind": "gaussian", "mean": 200, "sd": 20}`;
//! * a **nested single-key object** is the grid-schema shorthand:
//!   `{"gaussian": {"mean": 200, "sd": 20}}`;
//! * unknown kinds and unknown parameter names fail with
//!   [`crate::PipelineError::UnknownKey`] carrying the nearest valid
//!   candidate by edit distance, so typos are machine-actionable all the
//!   way up the service envelope.
//!
//! The module also centralizes how a stochastic scenario *realizes* into
//! scalars: the per-knob seed derivation (fixed knob order, one salt),
//! the per-knob domain clamps, and the relative quantization grid that
//! keeps realized values cache-friendly.

use crate::builder::unknown_key;
use crate::json::Json;
use crate::{PipelineError, Result};
use cnt_stats::{DistSpec, FieldSpec};

fn invalid(field: &'static str, msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field,
        msg: msg.into(),
    }
}

/// Parameter names of each distribution kind, aligned with
/// [`DistSpec::KINDS`].
const KIND_PARAMS: [&[&str]; 5] = [
    &["value"],
    &["mean", "sd"],
    &["mean", "sd", "lo", "hi"],
    &["lo", "hi"],
    &["mu", "sigma"],
];

/// The parameter names of one kind (panics only on a non-canonical kind,
/// which callers rule out by matching first).
fn params_of(kind: &str) -> &'static [&'static str] {
    DistSpec::KINDS
        .iter()
        .position(|k| *k == kind)
        .map(|i| KIND_PARAMS[i])
        .expect("caller matched a canonical kind")
}

/// Parse the parameter object of a known `kind`. `extra` names keys that
/// are legal beyond the kind's parameters (the `kind` tag itself in the
/// tagged form; nothing in the nested form).
fn dist_params(context: &'static str, kind: &str, v: &Json, extra: &[&str]) -> Result<DistSpec> {
    let fields = v
        .as_object()
        .ok_or_else(|| invalid(context, format!("`{kind}` parameters must be an object")))?;
    let params = params_of(kind);
    for (key, _) in fields {
        if !params.contains(&key.as_str()) && !extra.contains(&key.as_str()) {
            return Err(unknown_key(context, key, params));
        }
    }
    let num = |key: &'static str| -> Result<f64> {
        v.get(key)
            .ok_or_else(|| invalid(context, format!("`{kind}` needs a number `{key}`")))?
            .as_f64()
            .ok_or_else(|| invalid(context, format!("`{kind}.{key}` must be a number")))
    };
    let spec = match kind {
        "fixed" => DistSpec::Fixed(num("value")?),
        "gaussian" => DistSpec::Gaussian {
            mean: num("mean")?,
            sd: num("sd")?,
        },
        "truncated-gaussian" => DistSpec::TruncatedGaussian {
            mean: num("mean")?,
            sd: num("sd")?,
            lo: num("lo")?,
            hi: num("hi")?,
        },
        "uniform" => DistSpec::Uniform {
            lo: num("lo")?,
            hi: num("hi")?,
        },
        "lognormal" => DistSpec::LogNormal {
            mu: num("mu")?,
            sigma: num("sigma")?,
        },
        _ => unreachable!("caller matched a canonical kind"),
    };
    spec.validate()
        .map_err(|e| invalid(context, e.to_string()))?;
    Ok(spec)
}

/// Parse a [`DistSpec`] from any of its three wire forms (see the module
/// docs). `context` names the owning field in diagnostics.
///
/// # Errors
///
/// [`PipelineError::UnknownKey`] for unknown kinds or parameter names
/// (with nearest-candidate suggestions), [`PipelineError::InvalidSpec`]
/// for wrong shapes or out-of-domain parameters.
pub fn dist_from_json(context: &'static str, v: &Json) -> Result<DistSpec> {
    match v {
        Json::Num(n) => {
            let spec = DistSpec::Fixed(*n);
            spec.validate()
                .map_err(|e| invalid(context, e.to_string()))?;
            Ok(spec)
        }
        Json::Obj(fields) => {
            // Nested single-key form: { "gaussian": { "mean": …, "sd": … } }.
            if fields.len() == 1 && fields[0].0 != "kind" {
                let key = fields[0].0.as_str();
                if !DistSpec::KINDS.contains(&key) {
                    return Err(unknown_key(context, key, &DistSpec::KINDS));
                }
                return dist_params(context, key, &fields[0].1, &[]);
            }
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid(context, "object form needs a `kind` string"))?;
            if !DistSpec::KINDS.contains(&kind) {
                return Err(unknown_key(context, kind, &DistSpec::KINDS));
            }
            dist_params(context, kind, v, &["kind"])
        }
        _ => Err(invalid(
            context,
            "must be a number or a distribution object",
        )),
    }
}

/// Serialize a [`DistSpec`] to its normal wire form: a bare number for
/// `Fixed` (so scalar scenarios round-trip byte-identically), the tagged
/// `kind` object otherwise. `dist_from_json` inverts this exactly.
pub fn dist_to_json(d: &DistSpec) -> Json {
    let kv = |pairs: Vec<(&str, f64)>, kind: &str| {
        let mut fields = vec![("kind".to_string(), Json::Str(kind.into()))];
        fields.extend(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::Num(v))),
        );
        Json::Obj(fields)
    };
    match *d {
        DistSpec::Fixed(v) => Json::Num(v),
        DistSpec::Gaussian { mean, sd } => kv(vec![("mean", mean), ("sd", sd)], "gaussian"),
        DistSpec::TruncatedGaussian { mean, sd, lo, hi } => kv(
            vec![("mean", mean), ("sd", sd), ("lo", lo), ("hi", hi)],
            "truncated-gaussian",
        ),
        DistSpec::Uniform { lo, hi } => kv(vec![("lo", lo), ("hi", hi)], "uniform"),
        DistSpec::LogNormal { mu, sigma } => kv(vec![("mu", mu), ("sigma", sigma)], "lognormal"),
    }
}

/// The field-object keys beyond the embedded distribution.
const FIELD_KEYS: [&str; 6] = [
    "dist",
    "trend",
    "noise_sd",
    "correlation_dies",
    "clamp_lo",
    "clamp_hi",
];

/// Parse a [`FieldSpec`]. Accepts every [`dist_from_json`] form (which
/// becomes a trivial field: no trend, no correlated noise), or the full
/// field object `{"dist": …, "trend": …, "noise_sd": …,
/// "correlation_dies": …, "clamp_lo": …, "clamp_hi": …}` where every key
/// but `dist` is optional.
///
/// # Errors
///
/// As [`dist_from_json`], plus [`PipelineError::InvalidSpec`] for bad
/// field hyperparameters.
pub fn field_from_json(context: &'static str, v: &Json) -> Result<FieldSpec> {
    let is_field_obj = v
        .as_object()
        .is_some_and(|fields| fields.iter().any(|(k, _)| FIELD_KEYS.contains(&k.as_str())));
    if !is_field_obj {
        return Ok(FieldSpec::from_dist(dist_from_json(context, v)?));
    }
    let fields = v.as_object().expect("checked above");
    for (key, _) in fields {
        if !FIELD_KEYS.contains(&key.as_str()) {
            return Err(unknown_key(context, key, &FIELD_KEYS));
        }
    }
    let dist = dist_from_json(
        context,
        v.get("dist")
            .ok_or_else(|| invalid(context, "field object needs a `dist`"))?,
    )?;
    let opt = |key: &'static str| -> Result<Option<f64>> {
        match v.get(key) {
            None => Ok(None),
            Some(j) => j
                .as_f64()
                .map(Some)
                .ok_or_else(|| invalid(context, format!("`{key}` must be a number"))),
        }
    };
    let base = FieldSpec::from_dist(dist);
    let spec = FieldSpec {
        dist,
        trend: opt("trend")?.unwrap_or(base.trend),
        noise_sd: opt("noise_sd")?.unwrap_or(base.noise_sd),
        correlation_dies: opt("correlation_dies")?.unwrap_or(base.correlation_dies),
        clamp_lo: opt("clamp_lo")?.unwrap_or(base.clamp_lo),
        clamp_hi: opt("clamp_hi")?.unwrap_or(base.clamp_hi),
    };
    spec.validate()
        .map_err(|e| invalid(context, e.to_string()))?;
    Ok(spec)
}

/// Serialize a [`FieldSpec`] to its normal wire form: the bare
/// distribution when the field is trivial (no trend, no noise, no
/// clamps), the full field object otherwise. Optional hyperparameters at
/// their defaults are omitted, so `field_from_json` inverts this exactly.
pub fn field_to_json(f: &FieldSpec) -> Json {
    let base = FieldSpec::from_dist(f.dist);
    if *f == base {
        return dist_to_json(&f.dist);
    }
    let mut fields = vec![("dist".to_string(), dist_to_json(&f.dist))];
    let mut push = |key: &str, v: f64, default: f64| {
        // NaN never appears in a validated spec, so == is exact here.
        if v != default {
            fields.push((key.to_string(), Json::Num(v)));
        }
    };
    push("trend", f.trend, base.trend);
    push("noise_sd", f.noise_sd, base.noise_sd);
    push(
        "correlation_dies",
        f.correlation_dies,
        base.correlation_dies,
    );
    push("clamp_lo", f.clamp_lo, base.clamp_lo);
    push("clamp_hi", f.clamp_hi, base.clamp_hi);
    Json::Obj(fields)
}

/// The stochastic scenario knobs, in canonical order. The order is part
/// of the determinism contract: knob `i` always derives its sample
/// stream from `split_seed(split_seed(seed, KNOB_SALT), i)`, so adding a
/// distribution to one knob never shifts another knob's draws —
/// `purity` was appended as knob 3 without moving knobs 0–2.
pub const STOCHASTIC_KNOBS: [&str; 4] = ["density", "l_cnt_um", "m_min", "purity"];

/// Seed salt separating knob realization from every other derived stream.
pub const KNOB_SALT: u64 = 0x6B6E_6F62; // "knob"

/// Domain clamp applied to a realized knob value, by knob index in
/// [`STOCHASTIC_KNOBS`]. Sampling can land outside the field's physical
/// domain (a Gaussian tail, an aggressive trend); the clamp keeps every
/// realized scenario valid by construction.
pub fn knob_domain(knob: usize) -> (f64, f64) {
    match knob {
        0 => (0.05, 20.0),     // density multiplier on ρ
        1 => (0.01, 10_000.0), // L_CNT (µm)
        2 => (1e-6, 1.0),      // M_min fraction
        3 => (0.5, 1.0),       // s-CNT purity (a probability near 1)
        _ => unreachable!("no such knob"),
    }
}

/// Quantize a realized knob value onto a relative grid of `2⁻¹⁰`
/// (≈ 0.1 % spacing).
///
/// Continuous sampling makes every die's realized scenario unique, which
/// would defeat the wafer engine's per-run result memo and any cache
/// keyed on knob values. Snapping to a relative grid bounds the rounding
/// error at one part in a thousand — far below the model's fidelity —
/// while collapsing a wafer's dies onto a few hundred distinct values
/// per knob octave.
pub fn quantize(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let step = 2.0_f64.powi(v.abs().log2().floor() as i32 - 10);
    (v / step).round() * step
}

/// Clamp then quantize one realized knob value.
///
/// The `purity` knob (index 3) quantizes in *impurity* space,
/// `1 − quantize(1 − v)`: purities of interest sit within `1e-5 … 1e-12`
/// of 1.0, where a relative grid on the value itself would collapse
/// every meaningful purity onto 1.0. Quantizing the defect fraction
/// keeps ~0.1 % relative spacing on the physically meaningful quantity.
pub fn snap(knob: usize, v: f64) -> f64 {
    let (lo, hi) = knob_domain(knob);
    let v = v.clamp(lo, hi);
    if knob == 3 {
        1.0 - quantize(1.0 - v)
    } else {
        quantize(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_number_is_fixed_and_round_trips() {
        let d = dist_from_json("density", &Json::Num(1.5)).unwrap();
        assert_eq!(d, DistSpec::Fixed(1.5));
        assert_eq!(dist_to_json(&d), Json::Num(1.5));
        assert!(dist_from_json("density", &Json::Num(f64::NAN)).is_err());
    }

    #[test]
    fn tagged_and_nested_forms_agree() {
        let tagged = dist_from_json(
            "l_cnt_um",
            &Json::parse(r#"{ "kind": "gaussian", "mean": 200, "sd": 20 }"#).unwrap(),
        )
        .unwrap();
        let nested = dist_from_json(
            "l_cnt_um",
            &Json::parse(r#"{ "gaussian": { "mean": 200, "sd": 20 } }"#).unwrap(),
        )
        .unwrap();
        assert_eq!(tagged, nested);
        assert_eq!(
            tagged,
            DistSpec::Gaussian {
                mean: 200.0,
                sd: 20.0
            }
        );
        // Normal form is the tagged object; it round-trips exactly.
        let wire = dist_to_json(&tagged);
        assert_eq!(dist_from_json("l_cnt_um", &wire).unwrap(), tagged);
    }

    #[test]
    fn every_kind_round_trips() {
        let specs = [
            DistSpec::Fixed(3.25),
            DistSpec::Gaussian { mean: 1.0, sd: 0.1 },
            DistSpec::TruncatedGaussian {
                mean: 1.0,
                sd: 0.25,
                lo: 0.5,
                hi: 2.0,
            },
            DistSpec::Uniform { lo: 0.8, hi: 1.2 },
            DistSpec::LogNormal {
                mu: 0.0,
                sigma: 0.3,
            },
        ];
        for spec in specs {
            let wire = dist_to_json(&spec);
            assert_eq!(dist_from_json("density", &wire).unwrap(), spec, "{spec:?}");
        }
    }

    #[test]
    fn unknown_kinds_and_params_get_suggestions() {
        let err = dist_from_json(
            "density",
            &Json::parse(r#"{ "kind": "gausian", "mean": 1, "sd": 0.1 }"#).unwrap(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `gaussian`"),
            "message: {err}"
        );
        let err = dist_from_json(
            "density",
            &Json::parse(r#"{ "kind": "gaussian", "mean": 1, "sD": 0.1 }"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `sd`"), "{err}");
        let err = dist_from_json(
            "density",
            &Json::parse(r#"{ "uniforme": { "lo": 0, "hi": 1 } }"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `uniform`"), "{err}");
    }

    #[test]
    fn bad_parameters_fail_at_parse_time() {
        assert!(dist_from_json(
            "density",
            &Json::parse(r#"{ "kind": "gaussian", "mean": 1, "sd": 0 }"#).unwrap(),
        )
        .is_err());
        assert!(dist_from_json(
            "density",
            &Json::parse(r#"{ "kind": "uniform", "lo": 2, "hi": 1 }"#).unwrap(),
        )
        .is_err());
        assert!(
            dist_from_json(
                "density",
                &Json::parse(r#"{ "kind": "gaussian" }"#).unwrap()
            )
            .is_err(),
            "missing parameters"
        );
        assert!(dist_from_json("density", &Json::Str("gaussian".into())).is_err());
    }

    #[test]
    fn field_forms_round_trip() {
        // A bare dist parses as a trivial field and serializes back bare.
        let trivial = field_from_json("density", &Json::Num(1.0)).unwrap();
        assert_eq!(trivial, FieldSpec::from_dist(DistSpec::Fixed(1.0)));
        assert_eq!(field_to_json(&trivial), Json::Num(1.0));
        // The full object form keeps only non-default hyperparameters.
        let full = field_from_json(
            "density",
            &Json::parse(
                r#"{ "dist": { "gaussian": { "mean": 1, "sd": 0.05 } },
                     "trend": -0.1, "noise_sd": 0.05, "correlation_dies": 24,
                     "clamp_lo": 0.5, "clamp_hi": 1.5 }"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(full.trend, -0.1);
        assert_eq!(full.correlation_dies, 24.0);
        let wire = field_to_json(&full);
        assert_eq!(field_from_json("density", &wire).unwrap(), full);
        // Defaulted hyperparameters are omitted from the wire form.
        let partial = field_from_json(
            "density",
            &Json::parse(r#"{ "dist": 2.0, "trend": 0.2 }"#).unwrap(),
        )
        .unwrap();
        let wire = partial_to_keys(&field_to_json(&partial));
        assert_eq!(wire, vec!["dist", "trend"]);
    }

    fn partial_to_keys(v: &Json) -> Vec<String> {
        v.as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect()
    }

    #[test]
    fn field_rejects_unknown_keys_and_bad_hyperparameters() {
        let err = field_from_json(
            "density",
            &Json::parse(r#"{ "dist": 1.0, "noise_s": 0.1 }"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `noise_sd`"), "{err}");
        assert!(field_from_json(
            "density",
            &Json::parse(r#"{ "dist": 1.0, "noise_sd": 0.9 }"#).unwrap(),
        )
        .is_err());
        assert!(
            field_from_json("density", &Json::parse(r#"{ "trend": 0.1 }"#).unwrap()).is_err(),
            "field object without dist"
        );
    }

    #[test]
    fn quantization_is_idempotent_and_tight() {
        for v in [0.0333, 1.0, 199.7, 0.051, 9999.0] {
            let q = quantize(v);
            assert!(((q - v) / v).abs() <= 2.0_f64.powi(-10), "{v} → {q}");
            assert_eq!(quantize(q), q, "idempotent at {v}");
        }
        assert_eq!(quantize(0.0), 0.0);
        // snap applies the knob domain clamp first.
        assert_eq!(snap(0, 100.0), 20.0);
        assert_eq!(snap(2, 1.5), 1.0);
    }

    #[test]
    fn purity_snaps_in_impurity_space() {
        // A purity 3.07e-9 below 1.0 keeps ~0.1 % *impurity* resolution
        // (value-space quantization would round it to exactly 1.0).
        let v = 1.0 - 3.07e-9;
        let q = snap(3, v);
        assert!(q < 1.0, "snapped to a pure 1.0");
        let impurity = 1.0 - q;
        assert!(
            ((impurity - 3.07e-9) / 3.07e-9).abs() <= 2.0_f64.powi(-10),
            "impurity {impurity:e}"
        );
        assert_eq!(snap(3, q), q, "idempotent");
        // Perfect purity and the domain clamp both stay exact.
        assert_eq!(snap(3, 1.0), 1.0);
        assert_eq!(snap(3, 3.0), 1.0);
        assert_eq!(snap(3, 0.1), 0.5);
    }
}
