//! The sharded concurrent serving tier: N service shards behind one
//! deterministic request router.
//!
//! One [`crate::service::YieldService`] answers one caller at a time. A
//! production front end needs to sustain thousands of concurrent clients,
//! which is exactly what this module adds — without touching a byte of
//! the wire contract:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!                    │                ShardRouter                 │
//!  client lines ────▶│ shard_for(id) ──┬─▶ [queue₀] ─▶ shard 0    │
//!  (JSON requests)   │  (hash of id)   ├─▶ [queue₁] ─▶ shard 1    │──▶ per-client
//!                    │                 ├─▶ [queue₂] ─▶ shard 2    │    responses
//!                    │                 └─▶ [queue₃] ─▶ shard 3    │
//!                    │        shared warm tier (hot results)      │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * **Deterministic shard assignment** — [`shard_for`] hashes the
//!   request id with the workspace's deterministic
//!   [`cnt_stats::fasthash::FastHasher`]; the same id always lands on the
//!   same shard (so per-id request order is preserved), and because every
//!   response is a pure function of its request, the *bytes* of a
//!   transcript are identical for any shard count — only interleaving
//!   across ids changes. Sorting a transcript by response line makes it
//!   byte-comparable across `--shards` values, which CI pins.
//! * **Per-shard bounded caches** — each shard owns its own service (its
//!   own bounded LRU curve/design caches), so shards never contend on a
//!   pipeline mutex.
//! * **Shared warm tier** — a bounded LRU of finished response *bodies*
//!   for single-artifact requests (`evaluate`, `wafer`, `describe`),
//!   keyed by the canonical request body (id stripped, `workers`
//!   normalized away — neither changes bytes). A hot curve answered on
//!   shard 2 warms every shard. Purity makes this invisible: a warm hit
//!   re-wraps the cached bodies under the caller's id, byte-identical to
//!   a cold evaluation.
//! * **Admission control** — every shard queue is bounded.
//!   [`ShardRouter::submit`] blocks (backpressure for trusted loops like
//!   a stdin daemon); [`ShardRouter::try_submit`] sheds instead,
//!   answering with a machine-readable
//!   [`crate::envelope::ErrorCode::Overloaded`] rather than buffering
//!   without bound.
//! * **Cancellation** — a [`Client`] that disconnects mid-sweep makes the
//!   shard's `emit` return `false`; the service cancels the in-flight
//!   [`crate::service::SweepHandle`] and the queue slot frees
//!   immediately.
//!
//! ## Determinism, executed
//!
//! The same session through 1 shard and 3 shards: sorted transcripts are
//! byte-identical (the acceptance contract of `repro serve --shards`):
//!
//! ```
//! use cnfet_pipeline::{Client, RouterConfig, ShardRouter, YieldService};
//!
//! let session = [
//!     r#"{"schema":1,"id":"a","body":{"evaluate":{"spec":
//!         {"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"seed":7}}}"#,
//!     r#"{"schema":1,"id":"b","body":"describe"}"#,
//!     r#"{"schema":1,"id":"c","body":{"evaluate":{"spec":
//!         {"fast_design":true,"backend":"gaussian-sum","rho":"paper",
//!          "correlation":"growth"},"seed":7}}}"#,
//!     r#"{"schema":1,"id":"d","body":{"evaluate":{"spec":{"yeild_target":0.9}}}}"#,
//! ];
//! let transcript = |shards: usize| {
//!     let config = RouterConfig { shards, ..RouterConfig::default() };
//!     let router = ShardRouter::new(config, |_| YieldService::new());
//!     let (client, responses) = Client::channel();
//!     for line in session {
//!         router.submit(line, &client);
//!     }
//!     router.shutdown();
//!     drop(client);
//!     let mut lines: Vec<String> = responses
//!         .iter()
//!         .map(|r| r.to_json().to_string_compact())
//!         .collect();
//!     lines.sort();
//!     lines
//! };
//! assert_eq!(transcript(1), transcript(3));
//! ```
//!
//! ## Overload, executed
//!
//! A full queue sheds with a structured `overloaded` error instead of
//! buffering without bound — the client can branch on the code and retry:
//!
//! ```
//! use cnfet_pipeline::{Client, ErrorCode, ResponseBody, RouterConfig, ShardRouter};
//! use cnfet_pipeline::{YieldResponse, YieldService};
//!
//! let config = RouterConfig { shards: 1, queue_depth: 1, ..RouterConfig::default() };
//! let router = ShardRouter::new(config, |_| YieldService::new());
//! let (client, responses) = Client::channel();
//! // Flood far past the queue bound without draining: at least one
//! // request must be shed (the worker can only be mid-way through one).
//! for i in 0..64 {
//!     let line = format!(r#"{{"schema":1,"id":"r{i}","body":"describe"}}"#);
//!     router.try_submit(&line, &client);
//! }
//! let stats = router.shutdown();
//! drop(client);
//! let shed: Vec<YieldResponse> = responses.iter().filter(|r| r.is_error()).collect();
//! assert!(stats.shards[0].shed >= 1);
//! assert_eq!(shed.len() as u64, stats.shards[0].shed);
//! assert!(shed.iter().all(|r| matches!(&r.body,
//!     ResponseBody::Error(e) if e.code == ErrorCode::Overloaded { shard: 0 })));
//! ```

use crate::cache::BoundedCache;
use crate::envelope::{
    recover_id, ErrorCode, RequestBody, ServiceError, YieldRequest, YieldResponse, SCHEMA_VERSION,
};
use crate::json::Json;
use cnt_stats::fasthash::FastHasher;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Anything that can answer one JSON-lines request with zero or more
/// responses — the pluggable per-shard back end of [`ShardRouter`].
///
/// `emit` returns `false` once the client is gone; implementations must
/// stop streaming (and cancel in-flight work) and return `false` in that
/// case, `true` when every response was delivered. Both
/// [`crate::service::YieldService`] and the richer `cnfet-opt`
/// `OptService` implement this.
pub trait LineServer: Send + 'static {
    /// Parse and answer one request line (never fails — malformed input
    /// becomes a structured error response).
    fn serve_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse) -> bool) -> bool;
}

/// The shard a request id routes to: a pure, deterministic function of
/// the id bytes and the shard count, stable across runs and platforms.
/// Requests sharing an id therefore share a shard — per-id FIFO order is
/// preserved — and replaying a session at a different shard count changes
/// only the interleaving across ids, never a response byte.
pub fn shard_for(id: &str, shards: usize) -> usize {
    let mut hasher = FastHasher::default();
    hasher.write(id.as_bytes());
    (hasher.finish() % shards.max(1) as u64) as usize
}

/// Configuration of a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Number of service shards (≥ 1; clamped). Each shard is one worker
    /// thread over its own service with its own bounded caches.
    pub shards: usize,
    /// Bound of each shard's admission queue (≥ 1; clamped). A full
    /// queue blocks [`ShardRouter::submit`] and sheds
    /// [`ShardRouter::try_submit`] with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Entries in the shared warm tier of finished single-artifact
    /// results (LRU-bounded; ≥ 1, clamped).
    pub warm_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            queue_depth: 1024,
            warm_capacity: 128,
        }
    }
}

/// The response side of one (possibly logical) client connection.
///
/// Cloning shares the connection. Responses travel over an unbounded
/// channel — bounding lives on the *request* side (the shard queues),
/// where it exerts backpressure on producers instead of deadlocking
/// shard workers against slow consumers. Dropping the receiver, or
/// calling [`Client::disconnect`], marks the client gone: every
/// subsequent emit returns `false`, which cancels in-flight sweeps and
/// makes queued requests for this client complete instantly.
#[derive(Debug, Clone)]
pub struct Client {
    alive: Arc<AtomicBool>,
    tx: ResponseTx,
}

/// The sending half of a client's response stream.
#[derive(Debug, Clone)]
enum ResponseTx {
    Unbounded(mpsc::Sender<YieldResponse>),
    Rendezvous(mpsc::SyncSender<YieldResponse>),
}

impl ResponseTx {
    fn send(&self, response: YieldResponse) -> Result<(), ()> {
        match self {
            Self::Unbounded(tx) => tx.send(response).map_err(drop),
            Self::Rendezvous(tx) => tx.send(response).map_err(drop),
        }
    }
}

impl Client {
    /// A fresh client and the receiving end of its response stream.
    pub fn channel() -> (Self, mpsc::Receiver<YieldResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            Self {
                alive: Arc::new(AtomicBool::new(true)),
                tx: ResponseTx::Unbounded(tx),
            },
            rx,
        )
    }

    /// A client whose response stream is a rendezvous channel: every
    /// emit blocks until the consumer receives it, so a streamed sweep
    /// can never run ahead of its reader. Dropping the receiver
    /// unblocks the in-flight emit with a failure, which makes
    /// mid-stream disconnection *deterministic* — the property the
    /// cancellation tests pin. Production consumers should prefer
    /// [`Client::channel`], which never stalls a shard worker on a
    /// slow reader.
    pub fn rendezvous() -> (Self, mpsc::Receiver<YieldResponse>) {
        let (tx, rx) = mpsc::sync_channel(0);
        (
            Self {
                alive: Arc::new(AtomicBool::new(true)),
                tx: ResponseTx::Rendezvous(tx),
            },
            rx,
        )
    }

    /// Mark the client gone (idempotent). In-flight sweeps for it cancel
    /// at their next emit.
    pub fn disconnect(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// True until [`Client::disconnect`] is called or a send observes the
    /// dropped receiver.
    pub fn is_connected(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Deliver one response. Returns `false` (and latches disconnection)
    /// once the client is gone.
    pub fn emit(&self, response: YieldResponse) -> bool {
        if !self.is_connected() {
            return false;
        }
        if self.tx.send(response).is_err() {
            // Receiver dropped: latch the disconnect so queued work for
            // this client is skipped without another send attempt.
            self.disconnect();
            return false;
        }
        true
    }
}

/// One request travelling through a shard queue.
struct Job {
    line: String,
    id: String,
    client: Client,
}

/// Per-shard counters (monotone; read via [`ShardRouter::stats`]).
#[derive(Debug, Default)]
struct ShardCounters {
    served: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    high_water: AtomicUsize,
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests fully answered (including warm-tier hits).
    pub served: u64,
    /// Requests shed at admission with [`ErrorCode::Overloaded`].
    pub shed: u64,
    /// Requests dropped or aborted because their client disconnected.
    pub cancelled: u64,
    /// High-water mark of the shard's queue depth (including a submitter
    /// blocked in backpressure).
    pub queue_high_water: usize,
}

/// A point-in-time snapshot of a router's counters — the machine-readable
/// load provenance `repro serve` prints at shutdown and `loadgen` folds
/// into its report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Single-artifact requests answered from the shared warm tier.
    pub warm_hits: u64,
    /// Warm-eligible requests that had to be computed.
    pub warm_misses: u64,
}

impl RouterStats {
    /// Requests fully answered across all shards.
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Requests shed at admission across all shards.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Requests dropped/aborted for disconnected clients, all shards.
    pub fn cancelled(&self) -> u64 {
        self.shards.iter().map(|s| s.cancelled).sum()
    }

    /// The deepest any shard queue ever got.
    pub fn queue_high_water(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Serialize to the wire object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "shards".into(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("served".into(), Json::from_u64(s.served)),
                                ("shed".into(), Json::from_u64(s.shed)),
                                ("cancelled".into(), Json::from_u64(s.cancelled)),
                                (
                                    "queue_high_water".into(),
                                    Json::from_u64(s.queue_high_water as u64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("warm_hits".into(), Json::from_u64(self.warm_hits)),
            ("warm_misses".into(), Json::from_u64(self.warm_misses)),
        ])
    }

    /// Parse the wire object (the `loadgen` half of the contract).
    ///
    /// # Errors
    ///
    /// [`crate::PipelineError::InvalidSpec`] on malformed documents.
    pub fn from_json(v: &Json) -> crate::Result<Self> {
        let bad = |msg: &str| crate::PipelineError::InvalidSpec {
            field: "router_stats",
            msg: msg.into(),
        };
        let num = |obj: &Json, key: &str| -> crate::Result<u64> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("needs a u64 `{key}`")))
        };
        Ok(Self {
            shards: v
                .get("shards")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("needs a `shards` array"))?
                .iter()
                .map(|s| {
                    Ok(ShardStats {
                        served: num(s, "served")?,
                        shed: num(s, "shed")?,
                        cancelled: num(s, "cancelled")?,
                        queue_high_water: num(s, "queue_high_water")? as usize,
                    })
                })
                .collect::<crate::Result<_>>()?,
            warm_hits: num(v, "warm_hits")?,
            warm_misses: num(v, "warm_misses")?,
        })
    }
}

/// The warm tier caches finished response *bodies*; the id is re-applied
/// per caller so two clients asking the same question share one entry.
type WarmTier = Mutex<BoundedCache<String, Arc<Vec<crate::envelope::ResponseBody>>>>;

struct ShardHandle {
    tx: Option<mpsc::SyncSender<Job>>,
    depth: Arc<AtomicUsize>,
    counters: Arc<ShardCounters>,
    worker: Option<JoinHandle<()>>,
}

/// N service shards behind a deterministic request router (module docs
/// have the architecture and the executable contracts).
pub struct ShardRouter {
    shards: Vec<ShardHandle>,
    warm_hits: Arc<AtomicU64>,
    warm_misses: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The canonical warm-tier key of a request line, when the request is
/// warm-eligible: a single-artifact body (`evaluate`, `wafer`,
/// `describe`) on the supported schema. The id is stripped (responses are
/// re-addressed per caller) and `workers` is normalized away (the
/// determinism contract: workers never change bytes).
fn warm_key(line: &str) -> Option<String> {
    let request = YieldRequest::from_json(&Json::parse(line).ok()?).ok()?;
    if request.schema != SCHEMA_VERSION {
        return None;
    }
    let mut canonical = YieldRequest {
        schema: request.schema,
        id: String::new(),
        body: request.body,
    };
    match &mut canonical.body {
        RequestBody::Evaluate { .. } | RequestBody::Describe => {}
        RequestBody::Wafer { workers, .. } => *workers = None,
        // Streaming sweeps and co-opt studies stay uncached: their
        // artifacts can be arbitrarily large, and their hot path is the
        // per-shard curve cache underneath anyway.
        _ => return None,
    }
    Some(canonical.to_json().to_string_compact())
}

impl ShardRouter {
    /// Spawn `config.shards` worker threads, each owning the service that
    /// `factory(shard_index)` builds (its own bounded caches), all
    /// sharing one warm tier.
    pub fn new<S: LineServer>(config: RouterConfig, mut factory: impl FnMut(usize) -> S) -> Self {
        let warm: Arc<WarmTier> =
            Arc::new(Mutex::new(BoundedCache::new(config.warm_capacity.max(1))));
        let warm_hits = Arc::new(AtomicU64::new(0));
        let warm_misses = Arc::new(AtomicU64::new(0));
        let shards = (0..config.shards.max(1))
            .map(|index| {
                let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
                let depth = Arc::new(AtomicUsize::new(0));
                let counters = Arc::new(ShardCounters::default());
                let server = factory(index);
                let worker = {
                    let depth = Arc::clone(&depth);
                    let counters = Arc::clone(&counters);
                    let warm = Arc::clone(&warm);
                    let warm_hits = Arc::clone(&warm_hits);
                    let warm_misses = Arc::clone(&warm_misses);
                    std::thread::spawn(move || {
                        shard_loop(
                            &server,
                            &rx,
                            &depth,
                            &counters,
                            &warm,
                            &warm_hits,
                            &warm_misses,
                        )
                    })
                };
                ShardHandle {
                    tx: Some(tx),
                    depth,
                    counters,
                    worker: Some(worker),
                }
            })
            .collect();
        Self {
            shards,
            warm_hits,
            warm_misses,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Route one request line to its shard, **blocking** while the
    /// shard's queue is full — backpressure for a trusted single
    /// producer (the stdin daemon loop), where slowing the producer is
    /// better than shedding its requests.
    pub fn submit(&self, line: impl Into<String>, client: &Client) {
        self.enqueue(line.into(), client, true);
    }

    /// Route one request line to its shard, **shedding** when the
    /// shard's queue is full: the client receives a machine-readable
    /// [`ErrorCode::Overloaded`] response instead of the router buffering
    /// without bound. Returns `true` when the request was admitted.
    pub fn try_submit(&self, line: impl Into<String>, client: &Client) -> bool {
        self.enqueue(line.into(), client, false)
    }

    fn enqueue(&self, line: String, client: &Client, block: bool) -> bool {
        // Recover the id once here: it picks the shard and addresses a
        // potential shed response. Unparseable lines route to shard 0,
        // which answers them with the structured parse error.
        let id = Json::parse(&line)
            .map(|doc| recover_id(&doc))
            .unwrap_or_default();
        let index = shard_for(&id, self.shards.len());
        let shard = &self.shards[index];
        // Count the job (including one blocked in admission) before the
        // send so the high-water mark can never under-report; the worker
        // decrements as it dequeues.
        let depth = shard.depth.fetch_add(1, Ordering::AcqRel) + 1;
        shard.counters.high_water.fetch_max(depth, Ordering::AcqRel);
        let job = Job {
            line,
            id: id.clone(),
            client: client.clone(),
        };
        let tx = shard.tx.as_ref().expect("router accepts until shutdown");
        let admitted = if block {
            tx.send(job).is_ok()
        } else {
            tx.try_send(job).is_ok()
        };
        if !admitted {
            shard.depth.fetch_sub(1, Ordering::AcqRel);
            shard.counters.shed.fetch_add(1, Ordering::Relaxed);
            client.emit(YieldResponse::error(
                id,
                ServiceError {
                    code: ErrorCode::Overloaded {
                        shard: index as u64,
                    },
                    message: format!(
                        "shard {index} admission queue is full; the request was not \
                         executed — retry after a backoff"
                    ),
                },
            ));
        }
        admitted
    }

    /// A point-in-time snapshot of the router counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    served: s.counters.served.load(Ordering::Acquire),
                    shed: s.counters.shed.load(Ordering::Acquire),
                    cancelled: s.counters.cancelled.load(Ordering::Acquire),
                    queue_high_water: s.counters.high_water.load(Ordering::Acquire),
                })
                .collect(),
            warm_hits: self.warm_hits.load(Ordering::Acquire),
            warm_misses: self.warm_misses.load(Ordering::Acquire),
        }
    }

    /// Stop accepting requests, drain every queue (in-flight and queued
    /// requests finish; their responses are delivered), join the workers
    /// and return the final counters.
    pub fn shutdown(mut self) -> RouterStats {
        self.drain();
        self.stats()
    }

    fn drain(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // close the queue: workers exit after draining
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.drain();
    }
}

/// One shard's worker loop: drain the queue until the router closes it.
fn shard_loop<S: LineServer>(
    server: &S,
    rx: &mpsc::Receiver<Job>,
    depth: &AtomicUsize,
    counters: &ShardCounters,
    warm: &WarmTier,
    warm_hits: &AtomicU64,
    warm_misses: &AtomicU64,
) {
    while let Ok(job) = rx.recv() {
        depth.fetch_sub(1, Ordering::AcqRel);
        if !job.client.is_connected() {
            // The client hung up while the job sat in the queue: free the
            // slot without burning engine time.
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let key = warm_key(&job.line);
        if let Some(key) = &key {
            let hit = warm.lock().expect("warm tier lock").get(key).cloned();
            if let Some(bodies) = hit {
                warm_hits.fetch_add(1, Ordering::Relaxed);
                let delivered = bodies
                    .iter()
                    .all(|body| job.client.emit(YieldResponse::new(&job.id, body.clone())));
                let counter = if delivered {
                    &counters.served
                } else {
                    &counters.cancelled
                };
                counter.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            warm_misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut bodies = key.as_ref().map(|_| Vec::new());
        let completed = server.serve_line(&job.line, &mut |response| {
            if let Some(bodies) = bodies.as_mut() {
                bodies.push(response.body.clone());
            }
            job.client.emit(response)
        });
        if completed {
            counters.served.fetch_add(1, Ordering::Relaxed);
            if let (Some(key), Some(bodies)) = (key, bodies) {
                warm.lock()
                    .expect("warm tier lock")
                    .insert(key, Arc::new(bodies));
            }
        } else {
            // Aborted mid-stream (client vanished): a truncated response
            // list must never warm the tier.
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_and_spreads() {
        for id in ["", "a", "c17-r3", "swp"] {
            assert_eq!(shard_for(id, 4), shard_for(id, 4));
        }
        let mut seen = [false; 4];
        for i in 0..256 {
            seen[shard_for(&format!("client-{i}"), 4)] = true;
        }
        assert!(seen.iter().all(|s| *s), "4 shards must all receive load");
        assert_eq!(shard_for("anything", 1), 0);
    }

    #[test]
    fn warm_key_strips_id_and_workers_but_keeps_seed() {
        let a = warm_key(r#"{"schema":1,"id":"x","body":{"evaluate":{"spec":{},"seed":7}}}"#);
        let b = warm_key(r#"{"schema":1,"id":"y","body":{"evaluate":{"spec":{},"seed":7}}}"#);
        assert_eq!(a, b, "ids must share one warm entry");
        assert!(a.is_some());
        let c = warm_key(r#"{"schema":1,"id":"x","body":{"evaluate":{"spec":{},"seed":8}}}"#);
        assert_ne!(a, c, "seeds are part of the answer");
        let w1 = warm_key(
            r#"{"schema":1,"id":"x","body":{"wafer":{"spec":{"diameter_dies":8,"base":{}},"workers":1}}}"#,
        );
        let w8 = warm_key(
            r#"{"schema":1,"id":"y","body":{"wafer":{"spec":{"diameter_dies":8,"base":{}},"workers":8}}}"#,
        );
        assert_eq!(w1, w8, "workers never change bytes");
        assert!(
            warm_key(r#"{"schema":1,"id":"x","body":{"sweep":{"grid":{"scenarios":[{}]}}}}"#)
                .is_none(),
            "sweeps stream, they are not warm-cached"
        );
        assert!(warm_key("not json").is_none());
        assert!(
            warm_key(r#"{"schema":2,"id":"x","body":"describe"}"#).is_none(),
            "foreign schemas answer with errors, not cacheable artifacts"
        );
    }

    #[test]
    fn client_latches_disconnection() {
        let (client, rx) = Client::channel();
        assert!(client.is_connected());
        drop(rx);
        // The flag only latches at the next emit.
        assert!(!client.emit(YieldResponse::error(
            "x",
            ServiceError {
                code: ErrorCode::Internal,
                message: String::new(),
            },
        )));
        assert!(!client.is_connected());
    }
}
