//! A small bounded LRU cache — the eviction layer under every shared
//! pipeline substrate.
//!
//! The pipeline memoizes expensive pure functions (memoized `pF(W)`
//! curves, mapped-design statistics, aligned libraries). Before the
//! service redesign those maps grew without bound: a long-lived daemon
//! sweeping thousands of distinct corners would pin every curve it ever
//! built. [`BoundedCache`] caps each substrate at a configurable number of
//! entries and evicts the least-recently-used one on overflow.
//!
//! Eviction never changes answers — every cached value is a pure function
//! of its key — so the cache is free to be as small as memory demands;
//! capacity only trades recomputation for residency. Recency is tracked
//! with a monotone access stamp; eviction scans for the minimum stamp,
//! which is O(capacity) but capacities here are tens of entries, far below
//! the cost of recomputing even one curve knot.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map with least-recently-used eviction.
///
/// Not internally synchronized: the pipeline wraps each cache in its own
/// `Mutex`, matching the previous `Mutex<HashMap<..>>` layout.
#[derive(Debug)]
pub struct BoundedCache<K, V> {
    capacity: usize,
    clock: u64,
    entries: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            clock: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries (≤ capacity, always).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(value, stamp)| {
            *stamp = clock;
            &*value
        })
    }

    /// Insert (or replace) `key`, evicting the least-recently-used entry
    /// first if the cache is full. Returns the evicted `(key, value)`
    /// pair, if any, so callers can run teardown hooks on it.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Full and inserting a new key: evict the stalest entry.
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("cache is non-empty when full");
            evicted = self
                .entries
                .remove_entry(&stalest)
                .map(|(k, (v, _))| (k, v));
        }
        self.entries.insert(key, (value, self.clock));
        evicted
    }

    /// Remove every entry, keeping the capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate the resident values (arbitrary order; does not touch
    /// recency).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values().map(|(value, _)| value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_exceeds_capacity() {
        let mut cache = BoundedCache::new(3);
        for i in 0..100 {
            cache.insert(i, i * 10);
            assert!(cache.len() <= 3, "len {} after insert {i}", cache.len());
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.capacity(), 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = BoundedCache::new(2);
        assert!(cache.insert("a", 1).is_none());
        assert!(cache.insert("b", 2).is_none());
        // Touch `a`, so `b` is now the stalest.
        assert_eq!(cache.get(&"a"), Some(&1));
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn replacing_an_existing_key_does_not_evict() {
        let mut cache = BoundedCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert!(cache.insert("a", 10).is_none(), "replace is not an insert");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache = BoundedCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, "x");
        assert_eq!(cache.insert(2, "y"), Some((1, "x")));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut cache = BoundedCache::new(4);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 4);
    }
}
