//! The pipeline engine: cached substrates + scenario evaluation.

use crate::cache::BoundedCache;
use crate::design::{design_stats, DesignStats};
use crate::report::{FaultReport, McBackendReport, ScenarioReport};
use crate::spec::{BackendSpec, CornerSpec, CorrelationSpec, LibrarySpec, MminSpec, RhoSpec};
use crate::{PipelineError, Result, ScenarioSpec};
use cnfet_celllib::CellLibrary;
use cnfet_core::curve::{FailureCurve, PFailure};
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::penalty::upsizing_penalty;
use cnfet_core::rowmodel::{evaluate_table1, RowModel, Table1, UnalignedRowStudy};
use cnfet_core::stochastic::McFailure;
use cnfet_core::wmin::{solve_upsizing, UpsizingSolution, WminSolver};
use cnfet_device::GateCapModel;
use cnfet_fault::{McFallback, PurityMode};
use cnfet_layout::{align_library, AlignmentOptions, GridPolicy, LibraryAlignment};
use cnfet_sim::adaptive::McPrecision;
use cnt_stats::seed::split_seed;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key for one `(corner, backend)` failure curve.
type CurveKey = (u64, u64, u64, u8, u64);

/// Seed salt for the count model backing auxiliary (non-curve) queries.
const COUNT_MODEL_SALT: u64 = 0x636E_7463; // "cntc"

/// Seed salt deriving the Monte-Carlo evaluator stream from a scenario
/// seed, keeping it disjoint from the row-failure cross-check stream.
const MC_EVAL_SALT: u64 = 0x7046_6D63; // "pFmc"

/// Seed salt deriving the redundancy-compose Monte-Carlo fallback stream,
/// disjoint from the back-end and cross-check streams.
const FAULT_MC_SALT: u64 = 0x666C_7463; // "fltc"

/// Fixed-point iterations coupling the width solve to the width-dependent
/// metallic-short probability, plus the relative tolerance that stops
/// them early. The short probability moves slowly with `W` (it is linear
/// in the mean CNT count), so the iteration contracts fast.
const SHORT_FIXED_POINT_ITERS: u32 = 8;
const SHORT_FIXED_POINT_REL_TOL: f64 = 1e-6;

/// Outcome of the fault-aware width solve, feeding the report's `fault`
/// provenance block.
struct FaultSolve {
    /// Metallic-short probability at the solved width (0 in removal mode).
    p_short: f64,
    /// Per-cell failure budget after redundancy recovery.
    p_budget: f64,
    /// False when shorts alone exceed the budget — the returned solution
    /// is then the shorts-ignored width and the target is missed.
    feasible: bool,
}

fn fault_err(e: cnfet_fault::FaultError) -> PipelineError {
    PipelineError::InvalidSpec {
        field: "fault",
        msg: e.to_string(),
    }
}

/// The deterministic central value of a knob: the value itself for the
/// fixed form, the analytic mean otherwise.
fn knob_central(d: &cnt_stats::DistSpec) -> Result<f64> {
    d.mean().map_err(|e| PipelineError::InvalidSpec {
        field: "scenario",
        msg: e.to_string(),
    })
}

fn curve_key(corner: &CornerSpec, backend: &BackendSpec) -> Result<CurveKey> {
    let c = corner.corner()?;
    let (tag, step) = match backend {
        BackendSpec::Convolution { step } => (0u8, step.to_bits()),
        BackendSpec::GaussianSum => (1u8, 0),
        BackendSpec::MonteCarlo { .. } => {
            return Err(PipelineError::InvalidSpec {
                field: "backend",
                msg: "monte-carlo curves are seeded per scenario and are not shareable; \
                      Pipeline::evaluate builds them inline"
                    .into(),
            })
        }
    };
    Ok((
        c.pm().to_bits(),
        c.p_rs().to_bits(),
        c.p_rm().to_bits(),
        tag,
        step,
    ))
}

/// Worker threads for one Monte-Carlo evaluation. Results are worker-count
/// independent by construction, so this is purely a wall-clock knob; cap
/// it so sweep-level parallelism does not oversubscribe badly.
fn mc_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Capacity bounds for the pipeline's two unbounded-key caches. The
/// library and alignment caches need no bound — their key domains are the
/// finite `(library, grid-policy)` product (≤ 4 entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident `pF(W)` curves (distinct `(corner, backend)`
    /// pairs). Each curve holds tens-to-hundreds of knots.
    pub curve_capacity: usize,
    /// Maximum resident mapped-design statistics (distinct
    /// `(library, fast)` pairs).
    pub design_capacity: usize,
}

impl Default for CacheConfig {
    /// 32 curves / 8 designs — generous for every workload in the repo,
    /// small enough that a daemon sweeping thousands of custom corners
    /// stays flat.
    fn default() -> Self {
        Self {
            curve_capacity: 32,
            design_capacity: 8,
        }
    }
}

/// A point-in-time snapshot of cache residency — the provenance surface
/// for the memoization win (replaces the per-report `curve_evaluations`
/// counter, which made reports depend on cache warmth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident `pF(W)` curves.
    pub curves: usize,
    /// Configured curve capacity.
    pub curve_capacity: usize,
    /// Total exact knots across resident curves (the
    /// [`FailureCurve::cache_cost`] sum).
    pub curve_knots: usize,
    /// Total exact model evaluations performed by resident curves.
    pub curve_evaluations: u64,
    /// Resident mapped-design statistics.
    pub designs: usize,
    /// Configured design capacity.
    pub design_capacity: usize,
    /// Resident generated libraries.
    pub libraries: usize,
    /// Resident aligned-library transforms.
    pub alignments: usize,
}

/// The shared evaluator behind every experiment, bench, and sweep.
///
/// All getters hand out `Arc`s from interior caches, so one `Pipeline` can
/// be borrowed concurrently by the [`crate::sweep::SweepRunner`] workers:
/// the expensive substrates — memoized `pF(W)` curves, mapped-design
/// statistics, aligned libraries — are computed once per distinct key and
/// shared from then on. The curve and design caches are **bounded** (LRU,
/// see [`CacheConfig`]); eviction only re-costs a future miss, it never
/// changes an answer, because every cached value is a pure function of its
/// key.
pub struct Pipeline {
    curves: Mutex<BoundedCache<CurveKey, Arc<FailureCurve>>>,
    designs: Mutex<BoundedCache<(LibrarySpec, bool), Arc<DesignStats>>>,
    libraries: Mutex<HashMap<LibrarySpec, Arc<CellLibrary>>>,
    alignments: Mutex<HashMap<(LibrarySpec, bool), Arc<LibraryAlignment>>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::with_cache_config(CacheConfig::default())
    }
}

impl Pipeline {
    /// An empty pipeline with default cache bounds; every cache fills
    /// lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pipeline with explicit cache bounds.
    pub fn with_cache_config(config: CacheConfig) -> Self {
        Self {
            curves: Mutex::new(BoundedCache::new(config.curve_capacity)),
            designs: Mutex::new(BoundedCache::new(config.design_capacity)),
            libraries: Mutex::new(HashMap::new()),
            alignments: Mutex::new(HashMap::new()),
        }
    }

    /// A residency snapshot of every cache (volatile by nature — this is
    /// operational provenance, deliberately kept out of scenario reports).
    pub fn cache_stats(&self) -> CacheStats {
        let curves = self.curves.lock().expect("pipeline lock poisoned");
        let (mut curve_knots, mut curve_evaluations) = (0, 0);
        curves.values().for_each(|curve| {
            curve_knots += curve.cache_cost();
            curve_evaluations += curve.evaluations();
        });
        let designs = self.designs.lock().expect("pipeline lock poisoned");
        CacheStats {
            curves: curves.len(),
            curve_capacity: curves.capacity(),
            curve_knots,
            curve_evaluations,
            designs: designs.len(),
            design_capacity: designs.capacity(),
            libraries: self.libraries.lock().expect("pipeline lock poisoned").len(),
            alignments: self
                .alignments
                .lock()
                .expect("pipeline lock poisoned")
                .len(),
        }
    }

    /// Build the (uncached) failure model for a corner and back-end.
    ///
    /// # Errors
    ///
    /// Propagates corner/model validation errors.
    pub fn failure_model(
        &self,
        corner: &CornerSpec,
        backend: &BackendSpec,
    ) -> Result<FailureModel> {
        Ok(FailureModel::paper_default(corner.corner()?)?
            .with_backend(backend.count_model(COUNT_MODEL_SALT)))
    }

    /// The shared memoized `pF(W)` curve for an *analytic* corner ×
    /// back-end pair. Monte-Carlo curves are seeded per scenario and built
    /// inline by [`Pipeline::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates corner/model validation errors; rejects the Monte-Carlo
    /// back-end.
    pub fn failure_curve(
        &self,
        corner: &CornerSpec,
        backend: &BackendSpec,
    ) -> Result<Arc<FailureCurve>> {
        let key = curve_key(corner, backend)?;
        if let Some(curve) = self
            .curves
            .lock()
            .expect("pipeline lock poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(curve));
        }
        // Build outside the lock; re-check before inserting so concurrent
        // builders of the same key converge on one shared curve.
        let curve = Arc::new(FailureCurve::new(self.failure_model(corner, backend)?));
        let mut curves = self.curves.lock().expect("pipeline lock poisoned");
        if let Some(existing) = curves.get(&key) {
            return Ok(Arc::clone(existing));
        }
        // An evicted curve dies here; outstanding Arcs stay valid.
        curves.insert(key, Arc::clone(&curve));
        Ok(curve)
    }

    /// The generated cell library (cached).
    pub fn library(&self, lib: LibrarySpec) -> Arc<CellLibrary> {
        let mut libraries = self.libraries.lock().expect("pipeline lock poisoned");
        Arc::clone(
            libraries
                .entry(lib)
                .or_insert_with(|| Arc::new(lib.build())),
        )
    }

    /// Mapped-design statistics for `(library, fast)` (cached).
    ///
    /// # Errors
    ///
    /// Propagates mapping/placement errors.
    pub fn design_stats(&self, lib: LibrarySpec, fast: bool) -> Result<Arc<DesignStats>> {
        if let Some(stats) = self
            .designs
            .lock()
            .expect("pipeline lock poisoned")
            .get(&(lib, fast))
        {
            return Ok(Arc::clone(stats));
        }
        // Compute outside the lock: mapping + placement is the slow part.
        let library = self.library(lib);
        let stats = Arc::new(design_stats(&library, fast)?);
        let mut designs = self.designs.lock().expect("pipeline lock poisoned");
        if let Some(existing) = designs.get(&(lib, fast)) {
            return Ok(Arc::clone(existing));
        }
        designs.insert((lib, fast), Arc::clone(&stats));
        Ok(stats)
    }

    /// The aligned-active transform of a whole library (cached per grid
    /// policy).
    ///
    /// # Errors
    ///
    /// Propagates alignment errors.
    pub fn aligned_library(
        &self,
        lib: LibrarySpec,
        policy: GridPolicy,
    ) -> Result<Arc<LibraryAlignment>> {
        let key = (lib, policy == GridPolicy::Dual);
        if let Some(aligned) = self
            .alignments
            .lock()
            .expect("pipeline lock poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(aligned));
        }
        let library = self.library(lib);
        let aligned = Arc::new(align_library(
            &library,
            &AlignmentOptions {
                policy,
                ..AlignmentOptions::default()
            },
        )?);
        Ok(Arc::clone(
            self.alignments
                .lock()
                .expect("pipeline lock poisoned")
                .entry(key)
                .or_insert(aligned),
        ))
    }

    /// The Eq. (3.2) row model a scenario implies: density from the paper
    /// or the measured design, rescaled to the scenario node, divided by
    /// the grid policy.
    ///
    /// # Errors
    ///
    /// Propagates design-stats and row-model validation errors.
    pub fn row_model(&self, spec: &ScenarioSpec) -> Result<RowModel> {
        let base_node = spec.library.node_nm();
        let rho_base = match spec.rho {
            RhoSpec::Paper => paper::RHO_MIN_FET_PER_UM,
            RhoSpec::Measured => {
                self.design_stats(spec.library, spec.fast_design)?
                    .rho_per_um
            }
        };
        // Critical-FET density rises as cells shrink below the base node;
        // the density knob scales the resolved source on top of that. A
        // stochastic spec uses its central (mean) values here — callers
        // that want a sampled realization pass a realized spec.
        let rho = rho_base * base_node / spec.node_nm * knob_central(&spec.density)?;
        let row = RowModel::from_design(knob_central(&spec.l_cnt_um)?, rho)?;
        Ok(row.with_grid_division(spec.grid.benefit_division())?)
    }

    /// The requirement relaxation a correlation scenario buys (Sec 3.1 /
    /// Table 1): none → 1, directional growth alone → `M_Rmin` divided by
    /// the paper's 13× alignment factor, growth + aligned-active → the
    /// full `M_Rmin`.
    pub fn relaxation(spec: &ScenarioSpec, row: &RowModel) -> f64 {
        match spec.correlation {
            CorrelationSpec::None => 1.0,
            CorrelationSpec::Growth => (row.relaxation() / paper::ALIGNMENT_FACTOR).max(1.0),
            CorrelationSpec::GrowthAlignedLayout => row.relaxation().max(1.0),
        }
    }

    /// Solve the scenario's `W_min` problem on any `pF(W)` evaluator —
    /// an analytic curve or a stochastic back-end.
    fn solve_wmin<E: PFailure>(
        spec: &ScenarioSpec,
        eval: &E,
        widths: &[(f64, u64)],
        relaxation: f64,
    ) -> Result<UpsizingSolution> {
        Ok(match spec.m_min {
            MminSpec::Fraction(dist) => {
                let m_min = (knob_central(&dist)? * spec.m_transistors).max(1.0);
                let solver = WminSolver::new(eval);
                let s = solver.solve_relaxed(spec.yield_target, m_min, relaxation.max(1.0))?;
                UpsizingSolution {
                    w_min: s.w_min,
                    m_min,
                    p_req: s.p_req,
                }
            }
            MminSpec::SelfConsistent => solve_upsizing(
                eval,
                widths,
                spec.yield_target,
                spec.m_transistors,
                relaxation,
            )?,
        })
    }

    /// The fault-aware width solve: the chip-yield inversion goes through
    /// the redundancy scheme (`required_p_cell` in place of the raw
    /// `required_p_failure`), and in `short` purity mode the per-cell
    /// budget is split between the width-dependent metallic-short
    /// probability and the open-failure requirement the solver can
    /// actually buy down with width. The two couple through `W` (wider
    /// gates hold more CNTs, so more chances of a metallic short), so the
    /// solve iterates to a fixed point. When shorts alone exceed the
    /// budget the scenario is *infeasible at any width*: the solve keeps
    /// the shorts-ignored width and reports the miss via
    /// [`FaultSolve::feasible`] rather than erroring, so co-optimization
    /// sweeps can rank the shortfall instead of aborting.
    fn solve_wmin_fault<E: PFailure>(
        spec: &ScenarioSpec,
        eval: &E,
        relaxation: f64,
        model: &FailureModel,
    ) -> Result<(UpsizingSolution, FaultSolve)> {
        let MminSpec::Fraction(dist) = spec.m_min else {
            // Unreachable through validated specs (validate() rejects the
            // combination); kept as a hard error for direct callers.
            return Err(PipelineError::InvalidSpec {
                field: "m_min",
                msg: "self-consistent M_min is incompatible with active faults".into(),
            });
        };
        let m_min = (knob_central(&dist)? * spec.m_transistors).max(1.0);
        let purity = spec.purity.central();
        let p_budget = spec
            .redundancy
            .required_p_cell(spec.yield_target, m_min)
            .map_err(fault_err)?;
        let relax = relaxation.max(1.0);
        let solver = WminSolver::new(eval);
        let mut p_short = 0.0;
        let mut solution = None;
        let mut feasible = true;
        for _ in 0..SHORT_FIXED_POINT_ITERS {
            let budget_open = p_budget - p_short;
            if budget_open <= 0.0 {
                feasible = false;
                break;
            }
            let s = solver.solve_for_requirement((budget_open * relax).min(0.999_999))?;
            let next_short = if spec.purity.mode == PurityMode::Short && purity < 1.0 {
                cnfet_fault::short_probability(purity, model.mean_count(s.w_min)?)
                    .map_err(fault_err)?
            } else {
                0.0
            };
            let converged = (next_short - p_short).abs() <= SHORT_FIXED_POINT_REL_TOL * p_budget;
            p_short = next_short;
            solution = Some(s);
            if converged {
                break;
            }
        }
        let s = solution.expect("first iteration always solves (p_short starts at 0)");
        Ok((
            UpsizingSolution {
                w_min: s.w_min,
                m_min,
                p_req: s.p_req,
            },
            FaultSolve {
                p_short,
                p_budget,
                feasible,
            },
        ))
    }

    /// Evaluate one scenario. `seed` drives the Monte-Carlo back-end (if
    /// selected) and the optional conditional-MC cross-check, and is
    /// recorded in the report either way; analytic results are
    /// seed-independent, stochastic results are a pure function of
    /// `(spec, seed)` regardless of worker count. The report carries no
    /// cache provenance, so the result is a pure function of
    /// `(spec, seed)` — byte-identical however warm the caches are.
    ///
    /// Service-era callers should prefer
    /// [`crate::service::YieldService::evaluate`], which routes through
    /// the shared bounded caches and the versioned envelope layer; this
    /// method remains as the engine-level entry point behind it.
    ///
    /// # Errors
    ///
    /// Propagates validation, model, solver, and simulation errors.
    pub fn evaluate(&self, spec: &ScenarioSpec, seed: u64) -> Result<ScenarioReport> {
        spec.validate()?;
        // A stochastic spec realizes its knobs from the seed before
        // anything else; deterministic specs pass through untouched, so
        // their results are bit-stable across releases.
        let realized;
        let spec = if spec.is_stochastic() {
            realized = spec.realize(seed)?;
            &realized
        } else {
            spec
        };
        let stats = self.design_stats(spec.library, spec.fast_design)?;
        let scale = spec.node_nm / spec.library.node_nm();
        let widths: Vec<(f64, u64)> = stats
            .width_pairs
            .iter()
            .map(|&(w, n)| (w * scale, n))
            .collect();
        let row = self.row_model(spec)?;
        let relaxation = Self::relaxation(spec, &row);

        // The effective processing corner: removal-mode impurity folds
        // into the metallic fraction (the purity knob then *specifies*
        // the grown s-CNT fraction directly, keeping the corner's removal
        // selectivities), so the count-thinning rides the existing
        // open-failure machinery — including the shared curve cache,
        // which keys on the effective corner bits. Short mode and
        // fault-free scenarios keep the spec corner untouched.
        let eval_corner = if spec.fault_active() && spec.purity.mode == PurityMode::Removal {
            let c = spec.corner.corner()?;
            CornerSpec::Custom {
                pm: 1.0 - spec.purity.central(),
                p_rs: c.p_rs(),
                p_rm: c.p_rm(),
            }
        } else {
            spec.corner
        };
        // Fault scenarios need a plain model for the mean CNT count under
        // a gate (the metallic-short hook); cheap to build, so per-call.
        let fault_model = if spec.fault_active() {
            Some(FailureModel::paper_default(eval_corner.corner()?)?)
        } else {
            None
        };

        let (sol, fault_solve, p_at_w_min, mc) = match spec.backend.mc_precision() {
            Some(precision) => {
                // Stochastic back-end: a per-scenario evaluator (seeded per
                // width) behind the same memoizing curve layer the analytic
                // back-ends use. The interpolation tolerance is widened to
                // several CI half-widths so sampling noise does not read as
                // curvature and trigger runaway refinement.
                let model = FailureModel::paper_default(eval_corner.corner()?)?;
                let eval = McFailure::new(model, precision, split_seed(seed, MC_EVAL_SALT))?
                    .with_workers(mc_workers());
                let rel_tol = (4.0 * precision.rel_ci).clamp(0.05, 0.25);
                let curve = FailureCurve::new(eval).with_rel_tol(rel_tol)?;
                let (sol, fs) = match &fault_model {
                    Some(fm) => {
                        let (sol, fs) = Self::solve_wmin_fault(spec, &curve, relaxation, fm)?;
                        (sol, Some(fs))
                    }
                    None => (Self::solve_wmin(spec, &curve, &widths, relaxation)?, None),
                };
                // Record the CI at the solved width from a direct (memoized,
                // exact-width) stochastic point, not the interpolant.
                let point = curve.model().point(sol.w_min)?;
                let mc = McBackendReport {
                    trials: curve.model().total_trials(),
                    widths_evaluated: curve.model().evaluated_widths() as u64,
                    ci_lo: point.lo,
                    ci_hi: point.hi,
                    ci_level: point.level,
                    converged: curve.model().all_converged(),
                };
                (sol, fs, point.estimate, Some(mc))
            }
            None => {
                let curve = self.failure_curve(&eval_corner, &spec.backend)?;
                let (sol, fs) = match &fault_model {
                    Some(fm) => {
                        let (sol, fs) =
                            Self::solve_wmin_fault(spec, curve.as_ref(), relaxation, fm)?;
                        (sol, Some(fs))
                    }
                    None => (
                        Self::solve_wmin(spec, curve.as_ref(), &widths, relaxation)?,
                        None,
                    ),
                };
                let p_at = curve.p_failure(sol.w_min)?;
                (sol, fs, p_at, None)
            }
        };
        let penalty = upsizing_penalty(&GateCapModel::proportional(), &widths, sol.w_min)?;

        // Compose the effective chip yield through the redundancy scheme
        // at the solved operating point: the per-cell failure probability
        // is the short probability plus the correlation-credited open
        // failure. The MC fallback (schemes past the exact-term limit) is
        // seeded from the scenario seed, so any worker count reproduces
        // the same bytes.
        let fault = match fault_solve {
            None => None,
            Some(fs) => {
                let relax = relaxation.max(1.0);
                let p_cell = (fs.p_short + p_at_w_min / relax).clamp(0.0, 1.0);
                let outcome = spec
                    .redundancy
                    .compose(
                        p_cell,
                        sol.m_min,
                        &McFallback {
                            seed: split_seed(seed, FAULT_MC_SALT),
                            workers: mc_workers(),
                            precision: McPrecision::default(),
                        },
                    )
                    .map_err(fault_err)?;
                let shortfall = (spec.yield_target - outcome.circuit_yield).max(0.0);
                Some(FaultReport {
                    purity: spec.purity.central(),
                    mode: spec.purity.mode.name().to_string(),
                    p_short: fs.p_short,
                    scheme: spec.redundancy.name().to_string(),
                    area_overhead: spec.redundancy.area_overhead(sol.m_min),
                    p_budget: fs.p_budget,
                    recovered_yield: outcome.circuit_yield,
                    shortfall,
                    method: outcome.method.name().to_string(),
                    met_target: fs.feasible && shortfall <= 1e-4,
                })
            }
        };

        // Optional conditional-MC cross-check of the non-aligned row
        // failure probability at the solved width (Table-1 machinery).
        let unaligned_p_rf_mc = if spec.mc_trials > 0
            && spec.correlation != CorrelationSpec::None
            && sol.w_min < 0.95 * 560.0 * scale
        {
            let study = UnalignedRowStudy {
                band_height: 560.0 * scale,
                width: sol.w_min,
                offset_step: 45.0 * scale,
                devices: row.m_r_min().round().max(1.0) as usize,
            };
            let model = self.failure_model(&eval_corner, &spec.backend)?;
            Some(study.estimate(&model, spec.mc_trials, seed)?.probability)
        } else {
            None
        };

        Ok(ScenarioReport {
            name: spec.name.clone(),
            seed,
            library: spec.library.name().to_string(),
            node_nm: spec.node_nm,
            corner: spec.corner.label(),
            correlation: spec.correlation.name().to_string(),
            backend: spec.backend.name().to_string(),
            yield_target: spec.yield_target,
            m_transistors: spec.m_transistors,
            m_min: sol.m_min,
            m_r_min: row.m_r_min(),
            relaxation,
            p_req: sol.p_req,
            w_min_nm: sol.w_min,
            p_at_w_min,
            upsizing_penalty: penalty,
            unaligned_p_rf_mc,
            mc,
            fault,
        })
    }

    /// The paper's Table 1 anchor: find the width where the aligned
    /// `p_RF` equals 1.5e-8, then estimate all three growth/layout
    /// scenarios there (conditional MC for the non-aligned case).
    ///
    /// # Errors
    ///
    /// Propagates model inversion and simulation errors.
    pub fn table1_anchor(&self, trials: u32, seed: u64) -> Result<Table1Anchor> {
        let corner = CornerSpec::Aggressive;
        let backend = BackendSpec::Convolution { step: 0.05 };
        let model = self.failure_model(&corner, &backend)?;
        let curve = self.failure_curve(&corner, &backend)?;
        let row = RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM)?;
        let w_eval = curve.width_for_failure(paper::TABLE1_DIRECTIONAL_ALIGNED, 50.0, 300.0)?;
        let study = UnalignedRowStudy {
            band_height: 560.0, // polarity-band height of the 45-nm cell geometry
            width: w_eval,
            offset_step: 45.0, // legal-placement grid of the library
            devices: paper::M_R_MIN as usize,
        };
        let table1 = evaluate_table1(&model, &row, &study, trials, seed)?;
        Ok(Table1Anchor { w_eval, table1 })
    }
}

/// Result of [`Pipeline::table1_anchor`].
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Anchor {
    /// The evaluation width (nm) where aligned `p_RF = pF = 1.5e-8`.
    pub w_eval: f64,
    /// The three-scenario Table 1 evaluation at that width.
    pub table1: Table1,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("cache_stats", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

// Keep the compiler honest about the concurrency contract: SweepRunner
// shares `&Pipeline` across scoped threads.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Pipeline>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn fast_spec(name: &str) -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(name);
        spec.backend = BackendSpec::GaussianSum;
        spec.fast_design = true;
        spec.rho = RhoSpec::Paper;
        spec
    }

    #[test]
    fn caches_are_shared() {
        let p = Pipeline::new();
        let a = p
            .failure_curve(&CornerSpec::Aggressive, &BackendSpec::GaussianSum)
            .unwrap();
        let b = p
            .failure_curve(&CornerSpec::Aggressive, &BackendSpec::GaussianSum)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one curve");
        let c = p
            .failure_curve(&CornerSpec::IdealRemoval, &BackendSpec::GaussianSum)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&a, &c),
            "different corners get distinct curves"
        );

        let d1 = p.design_stats(LibrarySpec::Nangate45, true).unwrap();
        let d2 = p.design_stats(LibrarySpec::Nangate45, true).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));

        let stats = p.cache_stats();
        assert_eq!(stats.curves, 2);
        assert_eq!(stats.designs, 1);
        assert_eq!(stats.libraries, 1);
        assert!(stats.curve_capacity >= stats.curves);
    }

    #[test]
    fn curve_cache_is_bounded_and_eviction_preserves_answers() {
        let p = Pipeline::with_cache_config(CacheConfig {
            curve_capacity: 2,
            design_capacity: 8,
        });
        let corner = |pm: f64| CornerSpec::Custom {
            pm,
            p_rs: 0.1,
            p_rm: 1.0,
        };
        let first = p
            .failure_curve(&corner(0.10), &BackendSpec::GaussianSum)
            .unwrap();
        let baseline = first.p_failure(120.0).unwrap();
        for i in 0..20 {
            let pm = 0.10 + 0.01 * f64::from(i);
            p.failure_curve(&corner(pm), &BackendSpec::GaussianSum)
                .unwrap();
            assert!(
                p.cache_stats().curves <= 2,
                "cache exceeded its bound at corner {i}"
            );
        }
        // The first curve was evicted; rebuilding it answers identically.
        let rebuilt = p
            .failure_curve(&corner(0.10), &BackendSpec::GaussianSum)
            .unwrap();
        assert!(!Arc::ptr_eq(&first, &rebuilt), "must be a fresh curve");
        assert_eq!(rebuilt.p_failure(120.0).unwrap(), baseline);
        // The evicted Arc we still hold keeps working.
        assert_eq!(first.p_failure(120.0).unwrap(), baseline);
    }

    #[test]
    fn correlation_relaxes_wmin() {
        let p = Pipeline::new();
        let plain = p.evaluate(&fast_spec("plain"), 1).unwrap();
        let mut corr_spec = fast_spec("corr");
        corr_spec.correlation = CorrelationSpec::GrowthAlignedLayout;
        let corr = p.evaluate(&corr_spec, 1).unwrap();
        assert!(
            corr.w_min_nm < plain.w_min_nm - 30.0,
            "correlated {} vs plain {}",
            corr.w_min_nm,
            plain.w_min_nm
        );
        assert!(corr.relaxation > 300.0, "relaxation {}", corr.relaxation);
        assert_eq!(plain.relaxation, 1.0);
        assert!(corr.upsizing_penalty <= plain.upsizing_penalty);

        let mut growth_spec = fast_spec("growth");
        growth_spec.correlation = CorrelationSpec::Growth;
        let growth = p.evaluate(&growth_spec, 1).unwrap();
        assert!(
            growth.w_min_nm < plain.w_min_nm && growth.w_min_nm > corr.w_min_nm,
            "growth-only {} must sit between {} and {}",
            growth.w_min_nm,
            corr.w_min_nm,
            plain.w_min_nm
        );
    }

    #[test]
    fn grid_division_halves_the_benefit() {
        let p = Pipeline::new();
        let mut single = fast_spec("single");
        single.correlation = CorrelationSpec::GrowthAlignedLayout;
        let mut dual = single.clone();
        dual.name = "dual".into();
        dual.grid = GridPolicy::Dual;
        let rs = p.evaluate(&single, 1).unwrap();
        let rd = p.evaluate(&dual, 1).unwrap();
        assert!((rs.relaxation / rd.relaxation - 2.0).abs() < 1e-9);
        assert!(rd.w_min_nm > rs.w_min_nm);
    }

    #[test]
    fn mc_cross_check_runs_and_is_seeded() {
        let p = Pipeline::new();
        let mut spec = fast_spec("mc");
        spec.correlation = CorrelationSpec::GrowthAlignedLayout;
        spec.mc_trials = 50;
        let a = p.evaluate(&spec, 7).unwrap();
        let b = p.evaluate(&spec, 7).unwrap();
        let c = p.evaluate(&spec, 8).unwrap();
        let pa = a.unaligned_p_rf_mc.expect("mc requested");
        assert_eq!(pa, b.unaligned_p_rf_mc.unwrap(), "same seed, same estimate");
        assert_ne!(
            pa,
            c.unaligned_p_rf_mc.unwrap(),
            "different seed, different estimate"
        );
        // The non-aligned estimate sits between aligned and uncorrelated.
        assert!(pa >= a.p_at_w_min);
    }

    #[test]
    fn fault_free_spec_reports_no_fault_block() {
        let p = Pipeline::new();
        let report = p.evaluate(&fast_spec("clean"), 1).unwrap();
        assert!(report.fault.is_none(), "no fault knobs, no fault block");
    }

    #[test]
    fn redundancy_recovers_an_infeasible_purity() {
        use cnfet_fault::RedundancyScheme;
        use cnt_stats::DistSpec;

        let p = Pipeline::new();
        // At the baseline budget (~3e-9 per cell) a 1e-9 impurity shorts
        // roughly 3e-8 of the cells — shorts alone blow the budget.
        let mut bare = fast_spec("bare");
        bare.purity.dist = DistSpec::Fixed(1.0 - 1e-9);
        let r_bare = p.evaluate(&bare, 1).unwrap();
        let f_bare = r_bare.fault.as_ref().expect("fault block present");
        assert!(!f_bare.met_target, "shorts alone must miss the target");
        assert!(f_bare.shortfall > 0.0);
        assert!(f_bare.p_short > f_bare.p_budget);
        assert_eq!(f_bare.area_overhead, 1.0);

        // TMR widens the per-cell budget to ~sqrt(budget/3), which the
        // same purity meets comfortably.
        let mut tmr = bare.clone();
        tmr.name = "tmr".into();
        tmr.redundancy = RedundancyScheme::Tmr;
        let r_tmr = p.evaluate(&tmr, 1).unwrap();
        let f_tmr = r_tmr.fault.as_ref().unwrap();
        assert!(f_tmr.met_target, "TMR must recover the target");
        assert!(f_tmr.recovered_yield >= tmr.yield_target - 1e-4);
        assert_eq!(f_tmr.area_overhead, 3.0);
        assert!(
            f_tmr.p_budget > f_bare.p_budget * 100.0,
            "TMR budget {} vs bare {}",
            f_tmr.p_budget,
            f_bare.p_budget
        );
        // The relaxed budget also shrinks the solved width.
        assert!(r_tmr.w_min_nm < r_bare.w_min_nm);
    }

    #[test]
    fn feasible_shorts_consume_budget_and_widen_wmin() {
        use cnt_stats::DistSpec;

        let p = Pipeline::new();
        let plain = p.evaluate(&fast_spec("plain"), 1).unwrap();
        let mut pure = fast_spec("pure");
        pure.purity.dist = DistSpec::Fixed(1.0 - 1e-11);
        let r = p.evaluate(&pure, 1).unwrap();
        let f = r.fault.as_ref().unwrap();
        assert!(f.met_target, "1e-11 impurity fits the budget");
        assert!(f.p_short > 0.0 && f.p_short < f.p_budget);
        // Shorts eat part of the open-failure budget, so the width solve
        // has to work a little harder than the fault-free one.
        assert!(r.w_min_nm >= plain.w_min_nm);
        // Same seed, same bytes.
        let again = p.evaluate(&pure, 1).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn removal_mode_purity_overrides_the_corner_metallic_fraction() {
        use crate::spec::PuritySpec;
        use cnfet_fault::PurityMode;
        use cnt_stats::DistSpec;

        let p = Pipeline::new();
        let removal = |name: &str, purity: f64| {
            let mut spec = fast_spec(name);
            spec.purity = PuritySpec {
                dist: DistSpec::Fixed(purity),
                mode: PurityMode::Removal,
            };
            spec
        };
        let worse = p.evaluate(&removal("worse", 0.60), 1).unwrap();
        let better = p.evaluate(&removal("better", 0.90), 1).unwrap();
        // Removal mode thins the metallic count instead of shorting, so
        // there is no short term, and cleaner growth needs less upsizing.
        assert_eq!(worse.fault.as_ref().unwrap().p_short, 0.0);
        assert_eq!(better.fault.as_ref().unwrap().p_short, 0.0);
        assert!(better.w_min_nm < worse.w_min_nm);
        // Purity 0.67 reproduces the paper corner's pm = 33 % width (up
        // to the rounding of 1 − 0.67 in the effective corner).
        let plain = p.evaluate(&fast_spec("plain"), 1).unwrap();
        let mimic = p.evaluate(&removal("mimic", 0.67), 1).unwrap();
        assert!(
            ((mimic.w_min_nm - plain.w_min_nm) / plain.w_min_nm).abs() < 1e-6,
            "mimic {} vs plain {}",
            mimic.w_min_nm,
            plain.w_min_nm
        );
    }
}
