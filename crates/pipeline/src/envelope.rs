//! Versioned request/response envelopes — the service wire contract.
//!
//! Every interaction with [`crate::service::YieldService`] is an envelope:
//!
//! ```text
//! request  = { "schema": 1, "id": "<caller id>", "body": <body> }
//! body     = { "evaluate": { "spec": {…}, "seed": 7 } }
//!          | { "sweep": { "grid": {…}, "seed": 7, "workers": 4 } }
//!          | { "wafer": { "spec": {…}, "seed": 7, "workers": 4 } }
//!          | "describe"
//! response = { "schema": 1, "id": "<same id>", "body": <body> }
//! body     = { "report": {…} }                        // Evaluate result
//!          | { "sweep_report": { "index", "total", "report" } }   // streamed
//!          | { "sweep_done": { "total", "failed" } }  // stream terminator
//!          | { "wafer_report": {…} }                  // Wafer result
//!          | { "describe": {…capabilities…} }
//!          | { "error": { "code", "message", … } }
//! ```
//!
//! The `schema` field is the versioning handle: requests carrying any
//! version other than [`SCHEMA_VERSION`] are rejected with
//! [`ErrorCode::UnsupportedSchema`] instead of being misinterpreted.
//! Error bodies carry machine-readable [`ErrorCode`]s (with structured
//! payloads like the nearest-key suggestion), not just prose, so
//! co-optimization loops can branch on failure modes.
//!
//! Everything round-trips: `parse(to_json(x)) == x` for requests and
//! responses alike, which the envelope property tests pin down.
//!
//! ## The wire format, executed
//!
//! The README's JSON-lines session, as a doc-test — every request line
//! parses, dispatches, and every response serializes back through
//! [`YieldResponse::from_json`] unchanged, so the documented format
//! cannot drift from the code:
//!
//! ```
//! use cnfet_pipeline::{Json, ResponseBody, YieldRequest, YieldResponse, YieldService};
//!
//! # fn main() -> cnfet_pipeline::Result<()> {
//! let service = YieldService::new();
//! let lines = [
//!     // capability discovery
//!     r#"{"schema":1,"id":"cap","body":"describe"}"#,
//!     // one scenario (seed optional, default 20100613)
//!     r#"{"schema":1,"id":"w45","body":{"evaluate":{"spec":
//!         {"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"seed":7}}}"#,
//!     // a grid, streamed in index order then terminated
//!     r#"{"schema":1,"id":"swp","body":{"sweep":{"grid":
//!         {"defaults":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},
//!          "axes":{"correlation":["none","growth+aligned-layout"]}},"seed":9}}}"#,
//! ];
//! let mut responses = Vec::new();
//! for line in lines {
//!     let request = YieldRequest::from_json(&Json::parse(line)?)?;
//!     for response in service.handle(&request) {
//!         // Serialize → parse: the response survives the wire unchanged.
//!         let wire = response.to_json().to_string_compact();
//!         assert!(!wire.contains('\n'), "JSON-lines responses are one line");
//!         assert_eq!(YieldResponse::from_json(&Json::parse(&wire)?)?, response);
//!         responses.push(response);
//!     }
//! }
//! // describe, evaluate report, two sweep reports in order, terminator.
//! assert_eq!(responses.len(), 5);
//! assert!(matches!(&responses[0].body, ResponseBody::Describe(info)
//!     if info.backends.contains(&"monte-carlo".into())));
//! assert!(matches!(&responses[1].body, ResponseBody::Report(r) if r.seed == 7));
//! assert!(matches!(&responses[2].body, ResponseBody::SweepReport { index: 0, .. }));
//! assert!(matches!(&responses[3].body, ResponseBody::SweepReport { index: 1, .. }));
//! assert!(matches!(&responses[4].body,
//!     ResponseBody::SweepDone { total: 2, failed: 0 }));
//! # Ok(())
//! # }
//! ```
//!
//! A `wafer` body streams a whole wafer of per-die scenario realizations
//! into one aggregated artifact. The spec carries die-grid geometry, a
//! base scenario, and per-knob random fields; the response's
//! `wafer_report` is byte-identical for any `workers` value:
//!
//! ```
//! use cnfet_pipeline::{Json, ResponseBody, YieldRequest, YieldResponse, YieldService};
//!
//! # fn main() -> cnfet_pipeline::Result<()> {
//! let service = YieldService::new();
//! let line = r#"{"schema":1,"id":"wf","body":{"wafer":{
//!     "spec":{
//!         "diameter_dies": 20,
//!         "base": {"fast_design":true,"backend":"gaussian-sum","rho":"paper",
//!                  "correlation":"growth+aligned-layout"},
//!         "fields": {"density": {"dist": {"gaussian": {"mean": 1, "sd": 0.05}},
//!                                "trend": -0.1, "clamp_lo": 0.5, "clamp_hi": 2.0}}
//!     },
//!     "seed": 7, "workers": 2}}}"#;
//! let request = YieldRequest::from_json(&Json::parse(line)?)?;
//! let responses = service.handle(&request);
//! assert_eq!(responses.len(), 1);
//! let ResponseBody::Wafer(report) = &responses[0].body else { panic!("not a wafer") };
//! // 20 dies across the diameter → the inscribed circle holds ~π/4·20².
//! assert_eq!(report.dies, 316);
//! assert!(report.min_die_yield <= report.max_die_yield);
//! // The artifact survives the wire unchanged.
//! let wire = responses[0].to_json().to_string_compact();
//! assert_eq!(YieldResponse::from_json(&Json::parse(&wire)?)?, responses[0]);
//! # Ok(())
//! # }
//! ```
//!
//! Malformed input never kills the session — it becomes a structured,
//! machine-branchable error line (here with the documented nearest-key
//! suggestion):
//!
//! ```
//! use cnfet_pipeline::YieldService;
//!
//! let service = YieldService::new();
//! let mut lines = Vec::new();
//! service.handle_line(
//!     r#"{"schema":1,"id":"typo","body":{"evaluate":{"spec":{"yeild_target":0.9}}}}"#,
//!     &mut |response| lines.push(response.to_json().to_string_compact()),
//! );
//! assert_eq!(lines.len(), 1);
//! assert!(lines[0].contains(r#""id":"typo""#));
//! assert!(lines[0].contains(r#""code":"unknown_key""#));
//! assert!(lines[0].contains(r#""suggestion":"yield_target""#));
//! ```

use crate::builder::{CoOptSpec, COOPT_KEYS, SCENARIO_KEYS, SEARCHER_KINDS};
use crate::json::Json;
use crate::report::{CoOptReport, ScenarioReport};
use crate::spec::{BackendSpec, CorrelationSpec, LibrarySpec, ScenarioGrid, ScenarioSpec};
use crate::wafer::{WaferReport, WaferSpec, WAFER_KEYS};
use crate::{PipelineError, Result};
use cnfet_fault::{PurityMode, RedundancyScheme};
use cnt_stats::DistSpec;

/// The one wire-schema version this build understands.
pub const SCHEMA_VERSION: u64 = 1;

/// Default base seed when a request omits one — the repo-wide canonical
/// seed (the paper's publication date).
pub const DEFAULT_SEED: u64 = 20100613;

fn bad(msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field: "envelope",
        msg: msg.into(),
    }
}

/// What a request asks the service to do.
// Variant sizes track their spec payloads; requests are parsed once and
// moved, never stored in bulk, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Evaluate one scenario under a seed.
    Evaluate {
        /// The scenario to evaluate.
        spec: ScenarioSpec,
        /// Base seed (drives stochastic back-ends; recorded either way).
        seed: u64,
    },
    /// Evaluate a whole grid, streaming one `sweep_report` per scenario
    /// in index order, then a `sweep_done` terminator.
    Sweep {
        /// The grid to expand and evaluate.
        grid: ScenarioGrid,
        /// Base seed; scenario `i` runs under `split_seed(seed, i)`.
        seed: u64,
        /// Worker-thread override (`None` = service default). Never
        /// changes results, only wall-clock.
        workers: Option<usize>,
    },
    /// Run a process–design co-optimization study (served by the
    /// `cnfet-opt` front end; a bare [`crate::service::YieldService`]
    /// answers it with [`ErrorCode::UnsupportedBody`]).
    CoOpt {
        /// The declarative study to execute.
        spec: CoOptSpec,
        /// Base seed; candidate batches derive their seeds from it.
        seed: u64,
        /// Worker-thread override (`None` = service default). Never
        /// changes results, only wall-clock.
        workers: Option<usize>,
    },
    /// Stream a wafer-scale random-field workload into one aggregated
    /// [`WaferReport`].
    Wafer {
        /// The wafer workload to evaluate.
        spec: WaferSpec,
        /// Base seed; the spec's own `seed` (when set) takes precedence.
        seed: u64,
        /// Worker-thread override (`None` = service default). Never
        /// changes results, only wall-clock.
        workers: Option<usize>,
    },
    /// Capability/version discovery.
    Describe,
}

/// One versioned request.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldRequest {
    /// Wire-schema version; must equal [`SCHEMA_VERSION`].
    pub schema: u64,
    /// Caller-chosen correlation id, echoed on every response.
    pub id: String,
    /// The operation.
    pub body: RequestBody,
}

impl YieldRequest {
    /// A schema-1 `evaluate` request.
    pub fn evaluate(id: impl Into<String>, spec: ScenarioSpec, seed: u64) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body: RequestBody::Evaluate { spec, seed },
        }
    }

    /// A schema-1 `sweep` request.
    pub fn sweep(
        id: impl Into<String>,
        grid: ScenarioGrid,
        seed: u64,
        workers: Option<usize>,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body: RequestBody::Sweep {
                grid,
                seed,
                workers,
            },
        }
    }

    /// A schema-1 `co_opt` request.
    pub fn co_opt(
        id: impl Into<String>,
        spec: CoOptSpec,
        seed: u64,
        workers: Option<usize>,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body: RequestBody::CoOpt {
                spec,
                seed,
                workers,
            },
        }
    }

    /// A schema-1 `wafer` request.
    pub fn wafer(
        id: impl Into<String>,
        spec: WaferSpec,
        seed: u64,
        workers: Option<usize>,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body: RequestBody::Wafer {
                spec,
                seed,
                workers,
            },
        }
    }

    /// A schema-1 `describe` request.
    pub fn describe(id: impl Into<String>) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body: RequestBody::Describe,
        }
    }

    /// Serialize to the wire object.
    pub fn to_json(&self) -> Json {
        let body = match &self.body {
            RequestBody::Evaluate { spec, seed } => Json::Obj(vec![(
                "evaluate".into(),
                Json::Obj(vec![
                    ("spec".into(), spec.to_json()),
                    ("seed".into(), Json::from_u64(*seed)),
                ]),
            )]),
            RequestBody::Sweep {
                grid,
                seed,
                workers,
            } => {
                let mut fields = vec![
                    ("grid".into(), grid.to_json()),
                    ("seed".into(), Json::from_u64(*seed)),
                ];
                if let Some(w) = workers {
                    fields.push(("workers".into(), Json::Num(*w as f64)));
                }
                Json::Obj(vec![("sweep".into(), Json::Obj(fields))])
            }
            RequestBody::CoOpt {
                spec,
                seed,
                workers,
            } => {
                let mut fields = vec![
                    ("spec".into(), spec.to_json()),
                    ("seed".into(), Json::from_u64(*seed)),
                ];
                if let Some(w) = workers {
                    fields.push(("workers".into(), Json::Num(*w as f64)));
                }
                Json::Obj(vec![("co_opt".into(), Json::Obj(fields))])
            }
            RequestBody::Wafer {
                spec,
                seed,
                workers,
            } => {
                let mut fields = vec![
                    ("spec".into(), spec.to_json()),
                    ("seed".into(), Json::from_u64(*seed)),
                ];
                if let Some(w) = workers {
                    fields.push(("workers".into(), Json::Num(*w as f64)));
                }
                Json::Obj(vec![("wafer".into(), Json::Obj(fields))])
            }
            RequestBody::Describe => Json::Str("describe".into()),
        };
        Json::Obj(vec![
            ("schema".into(), Json::Num(self.schema as f64)),
            ("id".into(), Json::Str(self.id.clone())),
            ("body".into(), body),
        ])
    }

    /// Parse a request envelope.
    ///
    /// Schema validation is intentionally **not** done here — the service
    /// answers unsupported schemas with a structured
    /// [`ErrorCode::UnsupportedSchema`] response rather than a parse
    /// failure, so this accepts any integer `schema`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] / [`PipelineError::UnknownKey`] on
    /// malformed envelopes or bodies.
    pub fn from_json(v: &Json) -> Result<Self> {
        let fields = v
            .as_object()
            .ok_or_else(|| bad("request must be an object"))?;
        for (key, _) in fields {
            if !["schema", "id", "body"].contains(&key.as_str()) {
                return Err(crate::builder::unknown_key(
                    "request",
                    key,
                    &["schema", "id", "body"],
                ));
            }
        }
        // `as_u64` keeps `schema: 1.9` / `schema: -1` from being silently
        // truncated into a supported (or misreported) version; any
        // well-formed integer still reaches the service's version check.
        let schema = v
            .get("schema")
            .ok_or_else(|| bad("missing `schema` field"))?
            .as_u64()
            .ok_or_else(|| bad("`schema` must be a non-negative integer"))?;
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string `id` field"))?
            .to_string();
        let body = v.get("body").ok_or_else(|| bad("missing `body` field"))?;
        let body = Self::body_from_json(body)?;
        Ok(Self { schema, id, body })
    }

    fn body_from_json(body: &Json) -> Result<RequestBody> {
        if body.as_str() == Some("describe") {
            return Ok(RequestBody::Describe);
        }
        let fields = body
            .as_object()
            .ok_or_else(|| bad("`body` must be \"describe\" or a single-key object"))?;
        let [(kind, payload)] = fields else {
            return Err(bad("`body` must have exactly one key"));
        };
        match kind.as_str() {
            "describe" => Ok(RequestBody::Describe),
            "evaluate" => {
                reject_unknown_keys("evaluate request", payload, &["spec", "seed"])?;
                let spec = payload
                    .get("spec")
                    .ok_or_else(|| bad("`evaluate` needs a `spec` object"))?;
                Ok(RequestBody::Evaluate {
                    spec: ScenarioSpec::from_json(spec)?,
                    seed: opt_seed(payload)?,
                })
            }
            "sweep" => {
                reject_unknown_keys("sweep request", payload, &["grid", "seed", "workers"])?;
                let grid = payload
                    .get("grid")
                    .ok_or_else(|| bad("`sweep` needs a `grid` object"))?;
                Ok(RequestBody::Sweep {
                    grid: ScenarioGrid::from_json(grid)?,
                    seed: opt_seed(payload)?,
                    workers: opt_workers(payload)?,
                })
            }
            "co_opt" => {
                reject_unknown_keys("co_opt request", payload, &["spec", "seed", "workers"])?;
                let spec = payload
                    .get("spec")
                    .ok_or_else(|| bad("`co_opt` needs a `spec` object"))?;
                Ok(RequestBody::CoOpt {
                    spec: CoOptSpec::from_json(spec)?,
                    seed: opt_seed(payload)?,
                    workers: opt_workers(payload)?,
                })
            }
            "wafer" => {
                reject_unknown_keys("wafer request", payload, &["spec", "seed", "workers"])?;
                let spec = payload
                    .get("spec")
                    .ok_or_else(|| bad("`wafer` needs a `spec` object"))?;
                Ok(RequestBody::Wafer {
                    spec: WaferSpec::from_json(spec)?,
                    seed: opt_seed(payload)?,
                    workers: opt_workers(payload)?,
                })
            }
            other => Err(crate::builder::unknown_key(
                "request body",
                other,
                &["evaluate", "sweep", "co_opt", "wafer", "describe"],
            )),
        }
    }
}

/// Reject payload keys outside `allowed` — a typo'd `seed` or `workers`
/// must error with a suggestion, not silently fall back to defaults.
fn reject_unknown_keys(
    context: &'static str,
    payload: &Json,
    allowed: &[&'static str],
) -> Result<()> {
    let fields = payload
        .as_object()
        .ok_or_else(|| bad(format!("{context} payload must be an object")))?;
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(crate::builder::unknown_key(context, key, allowed));
        }
    }
    Ok(())
}

/// Optional `workers` field: a positive integer when present.
fn opt_workers(payload: &Json) -> Result<Option<usize>> {
    match payload.get("workers") {
        None => Ok(None),
        Some(w) => Ok(Some(
            w.as_u64()
                .filter(|w| *w >= 1)
                .ok_or_else(|| bad("`workers` must be a positive integer"))? as usize,
        )),
    }
}

/// Optional `seed` field, defaulting to [`DEFAULT_SEED`]. Accepts the
/// exact [`Json::from_u64`] encoding (number or decimal string).
fn opt_seed(payload: &Json) -> Result<u64> {
    match payload.get("seed") {
        None => Ok(DEFAULT_SEED),
        Some(s) => s
            .as_u64()
            .ok_or_else(|| bad("`seed` must be a non-negative integer (or decimal string)")),
    }
}

/// Best-effort extraction of the caller id from a (possibly malformed)
/// request document, so error responses can still be correlated.
pub fn recover_id(v: &Json) -> String {
    v.get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

/// The shared JSON-lines daemon plumbing: parse one request line and hand
/// it to `dispatch`. Never fails — malformed JSON or a bad envelope
/// becomes a structured error response with a best-effort id. Every wire
/// front end (`YieldService::handle_line`, the `cnfet-opt` `OptService`)
/// routes through this one implementation, so id recovery and error
/// classification cannot diverge between them.
pub fn dispatch_line(
    line: &str,
    emit: &mut dyn FnMut(YieldResponse),
    dispatch: impl FnOnce(&YieldRequest, &mut dyn FnMut(YieldResponse)),
) {
    dispatch_line_while(
        line,
        &mut |response| {
            emit(response);
            true
        },
        |request, emit| {
            dispatch(request, &mut |response| {
                emit(response);
            });
            true
        },
    );
}

/// The cancellation-aware form of [`dispatch_line`]: `emit` returns
/// `false` when the client is gone (disconnected, queue torn down), and
/// `dispatch` is expected to stop streaming — and cancel any in-flight
/// sweep — as soon as it sees that. Returns `false` when the exchange was
/// aborted that way, `true` when every response was delivered.
pub fn dispatch_line_while(
    line: &str,
    emit: &mut dyn FnMut(YieldResponse) -> bool,
    dispatch: impl FnOnce(&YieldRequest, &mut dyn FnMut(YieldResponse) -> bool) -> bool,
) -> bool {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return emit(YieldResponse::error("", ServiceError::from_pipeline(&e)));
        }
    };
    match YieldRequest::from_json(&doc) {
        Ok(request) => dispatch(&request, emit),
        Err(e) => emit(YieldResponse::error(
            recover_id(&doc),
            ServiceError::from_pipeline(&e),
        )),
    }
}

/// Machine-readable failure classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    /// The envelope itself (or its JSON) is malformed.
    BadRequest,
    /// The request's `schema` version is not supported by this build.
    UnsupportedSchema {
        /// The version the caller asked for.
        requested: u64,
    },
    /// A scenario field failed domain validation.
    BadSpec {
        /// The offending field.
        field: String,
    },
    /// An unknown key in a spec/grid/envelope, with the nearest valid key.
    UnknownKey {
        /// The key as received.
        key: String,
        /// The closest valid key by edit distance, when one is plausible.
        suggestion: Option<String>,
    },
    /// The request body is well-formed but this front end does not serve
    /// it (e.g. `co_opt` sent to a bare yield service). The `describe`
    /// response enumerates what *is* served.
    UnsupportedBody {
        /// The body kind the caller asked for.
        body: String,
    },
    /// The serving tier shed this request because the target shard's
    /// bounded admission queue was full (backpressure instead of
    /// unbounded buffering). The request was **not** executed; retrying
    /// after a backoff is safe — requests are pure.
    Overloaded {
        /// The shard whose queue was full.
        shard: u64,
    },
    /// A solver or stochastic estimate failed to converge.
    Unconverged,
    /// Any other engine-side failure.
    Internal,
}

impl ErrorCode {
    /// The stable wire tag of this code.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedSchema { .. } => "unsupported_schema",
            ErrorCode::BadSpec { .. } => "bad_spec",
            ErrorCode::UnknownKey { .. } => "unknown_key",
            ErrorCode::UnsupportedBody { .. } => "unsupported_body",
            ErrorCode::Overloaded { .. } => "overloaded",
            ErrorCode::Unconverged => "unconverged",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured error body: a code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Prose for humans; clients should branch on `code`, not this.
    pub message: String,
}

impl ServiceError {
    /// Classify an engine error into its wire form. The mapping is total:
    /// anything unrecognized degrades to [`ErrorCode::Internal`] with the
    /// full display chain as the message.
    pub fn from_pipeline(e: &PipelineError) -> Self {
        let code = match e {
            PipelineError::Parse { .. } => ErrorCode::BadRequest,
            PipelineError::InvalidSpec { field, .. } => ErrorCode::BadSpec {
                field: (*field).to_string(),
            },
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => ErrorCode::UnknownKey {
                key: key.clone(),
                suggestion: suggestion.clone(),
            },
            PipelineError::Core(cnfet_core::CoreError::NoConvergence(_)) => ErrorCode::Unconverged,
            _ => ErrorCode::Internal,
        };
        Self {
            code,
            message: e.to_string(),
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("code".into(), Json::Str(self.code.tag().into()))];
        match &self.code {
            ErrorCode::UnsupportedSchema { requested } => {
                fields.push(("requested".into(), Json::Num(*requested as f64)));
                fields.push((
                    "supported".into(),
                    Json::Arr(vec![Json::Num(SCHEMA_VERSION as f64)]),
                ));
            }
            ErrorCode::BadSpec { field } => {
                fields.push(("field".into(), Json::Str(field.clone())));
            }
            ErrorCode::UnknownKey { key, suggestion } => {
                fields.push(("key".into(), Json::Str(key.clone())));
                if let Some(s) = suggestion {
                    fields.push(("suggestion".into(), Json::Str(s.clone())));
                }
            }
            ErrorCode::UnsupportedBody { body } => {
                fields.push(("body".into(), Json::Str(body.clone())));
            }
            ErrorCode::Overloaded { shard } => {
                fields.push(("shard".into(), Json::Num(*shard as f64)));
            }
            _ => {}
        }
        fields.push(("message".into(), Json::Str(self.message.clone())));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self> {
        let tag = v
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("error body needs a string `code`"))?;
        let field = |key: &str| -> Result<String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("error code `{tag}` needs a string `{key}`")))
        };
        let code = match tag {
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_schema" => ErrorCode::UnsupportedSchema {
                requested: v
                    .get("requested")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("`unsupported_schema` needs a u64 `requested`"))?,
            },
            "bad_spec" => ErrorCode::BadSpec {
                field: field("field")?,
            },
            "unknown_key" => ErrorCode::UnknownKey {
                key: field("key")?,
                suggestion: match v.get("suggestion") {
                    None => None,
                    Some(s) => Some(
                        s.as_str()
                            .ok_or_else(|| bad("`suggestion` must be a string"))?
                            .to_string(),
                    ),
                },
            },
            "unsupported_body" => ErrorCode::UnsupportedBody {
                body: field("body")?,
            },
            "overloaded" => ErrorCode::Overloaded {
                shard: v
                    .get("shard")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("`overloaded` needs a u64 `shard`"))?,
            },
            "unconverged" => ErrorCode::Unconverged,
            "internal" => ErrorCode::Internal,
            other => return Err(bad(format!("unknown error code `{other}`"))),
        };
        Ok(Self {
            code,
            message: v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

/// Capability discovery payload — the `describe` answer.
///
/// Everything a wire client needs to build valid requests without reading
/// the README: the request bodies this front end serves, every count
/// back-end kind, every scenario field, and the co-optimization schema
/// (spec keys and searcher kinds). The lists are derived from the same
/// canonical constants the parsers validate against
/// ([`BackendSpec::KINDS`], [`SCENARIO_KEYS`], [`COOPT_KEYS`],
/// [`SEARCHER_KINDS`]), so `describe` cannot drift from what the build
/// actually accepts.
///
/// The fault-tolerance knobs are advertised the same way — the scenario
/// keys include `purity` and `redundancy`, and the scheme/mode lists come
/// from the `cnfet-fault` parser constants:
///
/// ```
/// use cnfet_pipeline::ServiceInfo;
///
/// let info = ServiceInfo::default();
/// assert!(info.scenario_keys.iter().any(|k| k == "purity"));
/// assert!(info.scenario_keys.iter().any(|k| k == "redundancy"));
/// assert_eq!(
///     info.redundancy_kinds,
///     ["none", "tmr", "spare-units", "repairable-tile"]
/// );
/// assert_eq!(info.purity_modes, ["short", "removal"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInfo {
    /// Service name.
    pub service: String,
    /// Crate version of the serving build.
    pub version: String,
    /// Wire-schema versions this build accepts.
    pub schemas: Vec<u64>,
    /// Request bodies this front end answers (a bare yield service omits
    /// `co_opt`; the `cnfet-opt` front end includes it).
    pub requests: Vec<String>,
    /// Known count back-end kinds.
    pub backends: Vec<String>,
    /// Known correlation scenarios.
    pub correlations: Vec<String>,
    /// Known cell libraries.
    pub libraries: Vec<String>,
    /// Every scenario-spec field name.
    pub scenario_keys: Vec<String>,
    /// Known distribution kinds the stochastic knobs accept.
    pub dist_kinds: Vec<String>,
    /// Known redundancy scheme kinds the `redundancy` knob accepts.
    pub redundancy_kinds: Vec<String>,
    /// Known purity modes the `purity` knob accepts.
    pub purity_modes: Vec<String>,
    /// Top-level keys of a `wafer` spec document.
    pub wafer_keys: Vec<String>,
    /// Top-level keys of a `co_opt` spec document.
    pub coopt_keys: Vec<String>,
    /// Known co-optimization search strategies.
    pub searchers: Vec<String>,
}

impl Default for ServiceInfo {
    /// The capabilities of a bare [`crate::service::YieldService`] (no
    /// `co_opt` execution; the schema lists are still advertised so
    /// clients can discover the richer front end exists).
    fn default() -> Self {
        Self {
            service: "cnfet-yield-service".into(),
            version: env!("CARGO_PKG_VERSION").into(),
            schemas: vec![SCHEMA_VERSION],
            requests: ["evaluate", "sweep", "wafer", "describe"]
                .map(String::from)
                .to_vec(),
            backends: BackendSpec::KINDS.map(String::from).to_vec(),
            correlations: CorrelationSpec::KINDS.map(String::from).to_vec(),
            libraries: LibrarySpec::KINDS.map(String::from).to_vec(),
            scenario_keys: SCENARIO_KEYS.map(String::from).to_vec(),
            dist_kinds: DistSpec::KINDS.map(String::from).to_vec(),
            redundancy_kinds: RedundancyScheme::KINDS.map(String::from).to_vec(),
            purity_modes: PurityMode::KINDS.map(String::from).to_vec(),
            wafer_keys: WAFER_KEYS.map(String::from).to_vec(),
            coopt_keys: COOPT_KEYS.map(String::from).to_vec(),
            searchers: SEARCHER_KINDS.map(String::from).to_vec(),
        }
    }
}

impl ServiceInfo {
    /// The capabilities of a co-optimization-enabled front end (the
    /// `cnfet-opt` `OptService` / `repro serve`): everything the bare
    /// service answers plus `co_opt`.
    pub fn with_co_opt() -> Self {
        Self {
            requests: ["evaluate", "sweep", "co_opt", "wafer", "describe"]
                .map(String::from)
                .to_vec(),
            ..Self::default()
        }
    }
}

impl ServiceInfo {
    /// Serialize to the wire object.
    fn to_json(&self) -> Json {
        let strings =
            |items: &[String]| Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect());
        Json::Obj(vec![
            ("service".into(), Json::Str(self.service.clone())),
            ("version".into(), Json::Str(self.version.clone())),
            (
                "schemas".into(),
                Json::Arr(self.schemas.iter().map(|s| Json::Num(*s as f64)).collect()),
            ),
            ("requests".into(), strings(&self.requests)),
            ("backends".into(), strings(&self.backends)),
            ("correlations".into(), strings(&self.correlations)),
            ("libraries".into(), strings(&self.libraries)),
            ("scenario_keys".into(), strings(&self.scenario_keys)),
            ("dist_kinds".into(), strings(&self.dist_kinds)),
            ("redundancy_kinds".into(), strings(&self.redundancy_kinds)),
            ("purity_modes".into(), strings(&self.purity_modes)),
            ("wafer_keys".into(), strings(&self.wafer_keys)),
            ("coopt_keys".into(), strings(&self.coopt_keys)),
            ("searchers".into(), strings(&self.searchers)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self> {
        let strings = |key: &str| -> Result<Vec<String>> {
            v.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| bad(format!("describe body needs an array `{key}`")))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad(format!("`{key}` entries must be strings")))
                })
                .collect()
        };
        let text = |key: &str| -> Result<String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("describe body needs a string `{key}`")))
        };
        Ok(Self {
            service: text("service")?,
            version: text("version")?,
            schemas: v
                .get("schemas")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("describe body needs an array `schemas`"))?
                .iter()
                .map(|s| {
                    s.as_u64()
                        .ok_or_else(|| bad("`schemas` entries must be non-negative integers"))
                })
                .collect::<Result<_>>()?,
            requests: strings("requests")?,
            backends: strings("backends")?,
            correlations: strings("correlations")?,
            libraries: strings("libraries")?,
            scenario_keys: strings("scenario_keys")?,
            dist_kinds: strings("dist_kinds")?,
            redundancy_kinds: strings("redundancy_kinds")?,
            purity_modes: strings("purity_modes")?,
            wafer_keys: strings("wafer_keys")?,
            coopt_keys: strings("coopt_keys")?,
            searchers: strings("searchers")?,
        })
    }
}

/// What a response carries.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The result of an `evaluate` request.
    Report(ScenarioReport),
    /// One streamed result of a `sweep` request (index order guaranteed).
    SweepReport {
        /// Scenario index within the expanded grid.
        index: u64,
        /// Total scenarios in the sweep.
        total: u64,
        /// The scenario's report.
        report: ScenarioReport,
    },
    /// Stream terminator of a `sweep` request.
    SweepDone {
        /// Total scenarios in the sweep.
        total: u64,
        /// How many scenarios failed (their errors were streamed inline).
        failed: u64,
    },
    /// The result of a `co_opt` request: the Pareto artifact of the run.
    CoOpt(CoOptReport),
    /// The result of a `wafer` request: the aggregated wafer artifact.
    Wafer(WaferReport),
    /// The capability payload of a `describe` request.
    Describe(ServiceInfo),
    /// A structured failure.
    Error(ServiceError),
}

/// One versioned response.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldResponse {
    /// Wire-schema version of this response.
    pub schema: u64,
    /// The request id this answers.
    pub id: String,
    /// The payload.
    pub body: ResponseBody,
}

impl YieldResponse {
    /// Wrap a body in a schema-1 envelope for `id`.
    pub fn new(id: impl Into<String>, body: ResponseBody) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            id: id.into(),
            body,
        }
    }

    /// A schema-1 error response.
    pub fn error(id: impl Into<String>, error: ServiceError) -> Self {
        Self::new(id, ResponseBody::Error(error))
    }

    /// True for [`ResponseBody::Error`] payloads.
    pub fn is_error(&self) -> bool {
        matches!(self.body, ResponseBody::Error(_))
    }

    /// Serialize to the wire object.
    pub fn to_json(&self) -> Json {
        let body = match &self.body {
            ResponseBody::Report(report) => Json::Obj(vec![("report".into(), report.to_json())]),
            ResponseBody::SweepReport {
                index,
                total,
                report,
            } => Json::Obj(vec![(
                "sweep_report".into(),
                Json::Obj(vec![
                    ("index".into(), Json::Num(*index as f64)),
                    ("total".into(), Json::Num(*total as f64)),
                    ("report".into(), report.to_json()),
                ]),
            )]),
            ResponseBody::SweepDone { total, failed } => Json::Obj(vec![(
                "sweep_done".into(),
                Json::Obj(vec![
                    ("total".into(), Json::Num(*total as f64)),
                    ("failed".into(), Json::Num(*failed as f64)),
                ]),
            )]),
            ResponseBody::CoOpt(report) => {
                Json::Obj(vec![("co_opt_report".into(), report.to_json())])
            }
            ResponseBody::Wafer(report) => {
                Json::Obj(vec![("wafer_report".into(), report.to_json())])
            }
            ResponseBody::Describe(info) => Json::Obj(vec![("describe".into(), info.to_json())]),
            ResponseBody::Error(e) => Json::Obj(vec![("error".into(), e.to_json())]),
        };
        Json::Obj(vec![
            ("schema".into(), Json::Num(self.schema as f64)),
            ("id".into(), Json::Str(self.id.clone())),
            ("body".into(), body),
        ])
    }

    /// Parse a response envelope (the client half of the wire contract).
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on malformed envelopes.
    pub fn from_json(v: &Json) -> Result<Self> {
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("response needs a non-negative integer `schema`"))?;
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("response needs a string `id`"))?
            .to_string();
        let body = v
            .get("body")
            .ok_or_else(|| bad("response needs a `body`"))?;
        let fields = body
            .as_object()
            .ok_or_else(|| bad("response `body` must be an object"))?;
        let [(kind, payload)] = fields else {
            return Err(bad("response `body` must have exactly one key"));
        };
        let num = |key: &str| -> Result<u64> {
            payload
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("`{kind}` needs a u64 `{key}`")))
        };
        let body = match kind.as_str() {
            "report" => ResponseBody::Report(ScenarioReport::from_json(payload)?),
            "sweep_report" => ResponseBody::SweepReport {
                index: num("index")?,
                total: num("total")?,
                report: ScenarioReport::from_json(
                    payload
                        .get("report")
                        .ok_or_else(|| bad("`sweep_report` needs a `report`"))?,
                )?,
            },
            "sweep_done" => ResponseBody::SweepDone {
                total: num("total")?,
                failed: num("failed")?,
            },
            "co_opt_report" => ResponseBody::CoOpt(CoOptReport::from_json(payload)?),
            "wafer_report" => ResponseBody::Wafer(WaferReport::from_json(payload)?),
            "describe" => ResponseBody::Describe(ServiceInfo::from_json(payload)?),
            "error" => ResponseBody::Error(ServiceError::from_json(payload)?),
            other => {
                return Err(bad(format!("unknown response body kind `{other}`")));
            }
        };
        Ok(Self { schema, id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_forms_round_trip() {
        let requests = [
            YieldRequest::evaluate("e-1", ScenarioSpec::baseline("b"), 7),
            YieldRequest::sweep(
                "s-1",
                ScenarioGrid {
                    scenarios: vec![ScenarioSpec::baseline("one")],
                },
                9,
                Some(4),
            ),
            YieldRequest::wafer(
                "w-1",
                WaferSpec::new("wafer", 16, ScenarioSpec::baseline("base")),
                11,
                Some(2),
            ),
            YieldRequest::describe("d-1"),
        ];
        for req in requests {
            let wire = req.to_json().to_string_pretty();
            let back = YieldRequest::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, req, "round trip failed for: {wire}");
        }
    }

    #[test]
    fn seed_and_workers_default_when_omitted() {
        let req = YieldRequest::from_json(
            &Json::parse(r#"{ "schema": 1, "id": "x", "body": { "evaluate": { "spec": {} } } }"#)
                .unwrap(),
        )
        .unwrap();
        match req.body {
            RequestBody::Evaluate { seed, .. } => assert_eq!(seed, DEFAULT_SEED),
            other => panic!("expected evaluate, got {other:?}"),
        }
        let req = YieldRequest::from_json(
            &Json::parse(
                r#"{ "schema": 1, "id": "x",
                     "body": { "sweep": { "grid": { "scenarios": [ {} ] } } } }"#,
            )
            .unwrap(),
        )
        .unwrap();
        match req.body {
            RequestBody::Sweep { seed, workers, .. } => {
                assert_eq!(seed, DEFAULT_SEED);
                assert_eq!(workers, None);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let cases = [
            (r#"[1]"#, "not an object"),
            (r#"{ "id": "x", "body": "describe" }"#, "missing schema"),
            (r#"{ "schema": 1, "body": "describe" }"#, "missing id"),
            (r#"{ "schema": 1, "id": "x" }"#, "missing body"),
            (
                r#"{ "schema": 1, "id": "x", "body": { "evaluate": {}, "sweep": {} } }"#,
                "two body keys",
            ),
            (
                r#"{ "schema": 1, "id": "x", "body": { "evaluate": {} } }"#,
                "evaluate without spec",
            ),
            (
                r#"{ "schema": 1, "id": "x", "body": { "sweep": { "grid": {"scenarios": [{}]}, "workers": 0 } } }"#,
                "zero workers",
            ),
        ];
        for (doc, why) in cases {
            assert!(
                YieldRequest::from_json(&Json::parse(doc).unwrap()).is_err(),
                "{why}"
            );
        }
    }

    #[test]
    fn typoed_payload_keys_error_instead_of_defaulting() {
        // `sead` must not silently fall back to the default seed.
        let err = YieldRequest::from_json(
            &Json::parse(
                r#"{ "schema": 1, "id": "x", "body": { "evaluate": { "spec": {}, "sead": 42 } } }"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        match err {
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "sead");
                assert_eq!(suggestion.as_deref(), Some("seed"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Same for a typo'd `workers` in sweep payloads.
        assert!(YieldRequest::from_json(
            &Json::parse(
                r#"{ "schema": 1, "id": "x",
                     "body": { "sweep": { "grid": { "scenarios": [ {} ] }, "wokers": 2 } } }"#,
            )
            .unwrap(),
        )
        .is_err());
    }

    #[test]
    fn non_integer_and_negative_schemas_are_malformed() {
        for schema in ["1.9", "-1", "0.5", "true", "\"one\""] {
            let doc = format!(r#"{{ "schema": {schema}, "id": "x", "body": "describe" }}"#);
            assert!(
                YieldRequest::from_json(&Json::parse(&doc).unwrap()).is_err(),
                "schema {schema} must not be truncated into an integer version"
            );
        }
        // Integral values (any magnitude) still parse, so the service can
        // answer them with a structured `unsupported_schema`.
        let req = YieldRequest::from_json(
            &Json::parse(r#"{ "schema": 99, "id": "x", "body": "describe" }"#).unwrap(),
        )
        .unwrap();
        assert_eq!(req.schema, 99);
    }

    #[test]
    fn unknown_request_keys_get_suggestions() {
        let err = YieldRequest::from_json(
            &Json::parse(r#"{ "schema": 1, "id": "x", "bodyy": "describe" }"#).unwrap(),
        )
        .unwrap_err();
        match err {
            PipelineError::UnknownKey { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("body"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        let err = YieldRequest::from_json(
            &Json::parse(r#"{ "schema": 1, "id": "x", "body": { "evaluat": {} } }"#).unwrap(),
        )
        .unwrap_err();
        match err {
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "evaluat");
                assert_eq!(suggestion.as_deref(), Some("evaluate"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn error_code_mapping_is_structured() {
        let e = ServiceError::from_pipeline(&PipelineError::UnknownKey {
            context: "scenario",
            key: "yeild_target".into(),
            suggestion: Some("yield_target".into()),
        });
        assert_eq!(e.code.tag(), "unknown_key");
        let e = ServiceError::from_pipeline(&PipelineError::Core(
            cnfet_core::CoreError::NoConvergence("wmin"),
        ));
        assert_eq!(e.code, ErrorCode::Unconverged);
        let e = ServiceError::from_pipeline(&PipelineError::Parse {
            line: 1,
            msg: "x".into(),
        });
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn recover_id_is_best_effort() {
        assert_eq!(
            recover_id(&Json::parse(r#"{ "id": "abc", "schema": true }"#).unwrap()),
            "abc"
        );
        assert_eq!(recover_id(&Json::Num(4.0)), "");
    }
}
