//! Mapped-design statistics: the `(width, count)` distribution and the
//! critical-FET row density the yield analysis consumes.
//!
//! This is the growth → device → layout leg of the old per-experiment
//! wiring, centralized so the [`crate::engine::Pipeline`] can compute it
//! once per `(library, design size)` and share it across scenarios.

use crate::Result;
use cnfet_celllib::CellLibrary;
use cnfet_layout::{place_cells, PlacementOptions};
use cnfet_netlist::mapping::MappedDesign;
use cnfet_netlist::synth::{openrisc_class, DesignSpec};

/// The case-study design mapped onto a library: its `(width, count)`
/// distribution plus the measured critical-FET row density (per µm).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Distinct transistor widths with instance counts.
    pub width_pairs: Vec<(f64, u64)>,
    /// Measured `P_min-CNFET` density (critical FETs per µm of row).
    pub rho_per_um: f64,
    /// Total transistor count of the generated design.
    pub transistors: usize,
}

/// Generate the OpenRISC-class design, map it onto `lib`, place it and
/// extract the statistics the yield analysis needs. `fast` uses the
/// reduced design.
///
/// # Errors
///
/// Propagates mapping and placement errors.
pub fn design_stats(lib: &CellLibrary, fast: bool) -> Result<DesignStats> {
    let spec = if fast {
        DesignSpec::small()
    } else {
        DesignSpec::openrisc()
    };
    let netlist = openrisc_class(&spec, 42);
    let mapped = MappedDesign::map(&netlist, lib)?;

    // Collapse widths to (width, count) pairs (0.1-nm quantization).
    let mut counts: std::collections::BTreeMap<i64, u64> = std::collections::BTreeMap::new();
    for w in mapped.transistor_widths() {
        *counts.entry((w * 10.0).round() as i64).or_insert(0) += 1;
    }
    let width_pairs: Vec<(f64, u64)> = counts
        .into_iter()
        .map(|(k, n)| (k as f64 / 10.0, n))
        .collect();

    // Place and measure the critical-FET density. The criticality
    // threshold is the uncorrelated W_min regime (anything below ~155 nm at
    // 45 nm), scaled with the library's node so the same device classes
    // count as critical in the 65 nm library.
    let placed = place_cells(mapped.cells(), PlacementOptions::default())?;
    let w_critical = cnfet_core::paper::WMIN_UNCORRELATED_NM * lib.tech().node_nm / 45.0;
    let rho_per_um = placed.min_fet_density_per_um(w_critical)?;

    Ok(DesignStats {
        width_pairs,
        rho_per_um,
        transistors: mapped.transistor_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_celllib::nangate45::nangate45_like;

    #[test]
    fn fast_design_statistics_are_sane() {
        let stats = design_stats(&nangate45_like(), true).unwrap();
        assert!(stats.transistors > 1000);
        assert!(!stats.width_pairs.is_empty());
        let total: u64 = stats.width_pairs.iter().map(|&(_, n)| n).sum();
        assert_eq!(total as usize, stats.transistors);
        assert!(
            stats.rho_per_um > 0.5 && stats.rho_per_um < 10.0,
            "rho = {}",
            stats.rho_per_um
        );
    }
}
